//! CLASH — the full reproduction stack, re-exported from one crate.
//!
//! This facade crate exists so that applications (and this repository's
//! `tests/` and `examples/`) can depend on a single crate and so the
//! workspace has one front door. The layers, bottom-up:
//!
//! | crate | role |
//! |---|---|
//! | [`keyspace`] | identifier keys, prefixes/key groups, `Shape()`, covers (paper §3–4) |
//! | [`chord`] | the simulated Chord base DHT: `Map()` routing (paper §2, §5) |
//! | [`simkernel`] | deterministic RNG substreams, distributions, metrics |
//! | [`transport`] | virtual-time message transport: latency, loss, partitions |
//! | [`workload`] | the paper's §6 workloads A–D and arrival scenarios |
//! | [`streamquery`] | continuous queries over placed streams (§6 application) |
//! | [`core`] | the protocol: `ServerTable`, split/merge, depth search, cluster harness (§4–5) |
//! | [`chaos`] | deterministic fault-injection campaigns, invariants, schedule shrinking |
//! | [`sim`] | the figure-by-figure experiment driver |
//!
//! # Quick start
//!
//! ```
//! use clash::core::cluster::ClashCluster;
//! use clash::core::config::ClashConfig;
//! use clash::keyspace::key::Key;
//!
//! let mut cluster = ClashCluster::new(ClashConfig::small_test(), 8, 7)?;
//! let key = Key::parse("10110100", 8)?;
//! let placement = cluster.attach_source(1, key, 1.0)?;
//! assert!(placement.depth >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use clash_chaos as chaos;
pub use clash_chord as chord;
pub use clash_core as core;
pub use clash_keyspace as keyspace;
pub use clash_sim as sim;
pub use clash_simkernel as simkernel;
pub use clash_streamquery as streamquery;
pub use clash_transport as transport;
pub use clash_workload as workload;
