//! Deterministic fault-injection campaigns for the CLASH stack.
//!
//! ROADMAP item 5 asks for an adversarial scenario matrix; this crate
//! is the engine behind it. A **campaign** runs many seed-derived
//! random **schedules** of fault events — crash bursts, ring-correlated
//! failures, rolling partition storms, flapping links, gray
//! latency/loss degradation, churn avalanches, flash crowds — against a
//! fresh cluster per schedule, checking an invariant suite after every
//! event and at quiescence. Any violation is delta-debugged down to a
//! 1-minimal failing schedule and emitted as a replayable
//! `chaos_repro.json` together with the flight-recorder ring tail.
//!
//! Everything is a pure function of `(options, schedule)`: the schedule
//! seed drives the cluster, the transport, the workload, and every
//! injector choice, so replays are bit-for-bit and shrinking is sound.
//!
//! The module layout mirrors the pipeline:
//!
//! | module | role |
//! |---|---|
//! | [`schedule`] | seed-derived schedule generation over [`clash_workload::FaultKind`] |
//! | [`engine`] | per-schedule injection, the invariant suite, campaign aggregation |
//! | [`shrink`] | delta debugging (`ddmin`) of failing schedules |
//! | [`repro`] | `chaos_repro.json` writer/parser and replay |
//!
//! # Quick start
//!
//! ```
//! use clash_chaos::{ChaosOptions, run_campaign};
//!
//! // A tiny all-green campaign: 2 schedules against an 8-server cell.
//! let options = ChaosOptions {
//!     servers: 8,
//!     sources: 48,
//!     ..ChaosOptions::default()
//! };
//! let report = run_campaign(&options, 7, 2);
//! assert_eq!(report.schedules_run, 2);
//! assert!(report.failures.is_empty(), "invariants hold on the stock protocol");
//! ```

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// the chaos engine carries the same contract.
#![forbid(unsafe_code)]
pub mod engine;
pub mod repro;
pub mod schedule;
pub mod shrink;

pub use engine::{
    run_campaign, run_schedule, shrink_failure, CampaignFailure, CampaignReport, ChaosOptions,
    ScheduleOutcome, Violation,
};
pub use repro::{parse_repro, render_repro, ChaosRepro, REPRO_FORMAT};
pub use schedule::ChaosSchedule;
pub use shrink::ddmin;
