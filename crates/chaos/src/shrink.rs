//! Delta debugging for failing schedules.
//!
//! The campaign engine hands a failing schedule to [`ddmin`] with a
//! predicate that replays a candidate subset from the same seed.
//! Because every replay is fully deterministic, the predicate is a pure
//! function of the subset and the classic `ddmin` algorithm (Zeller &
//! Hildebrandt 2002) applies unchanged: partition the sequence into
//! chunks, try each chunk and each complement, refine the granularity
//! whenever nothing smaller fails, and stop at a 1-minimal sequence —
//! removing any single remaining event makes the failure vanish.

/// Shrinks `events` to a 1-minimal subsequence for which `fails` still
/// returns `true`.
///
/// `fails` must be deterministic, and must return `true` for the full
/// input (callers only shrink schedules they have already seen fail).
/// Relative event order is always preserved — `ddmin` only removes
/// events, never reorders them.
///
/// Complexity is the usual worst-case O(n²) predicate evaluations; in
/// practice failing chaos schedules shrink in a few dozen replays.
pub fn ddmin<T, F>(events: &[T], mut fails: F) -> Vec<T>
where
    T: Clone,
    F: FnMut(&[T]) -> bool,
{
    let mut current: Vec<T> = events.to_vec();
    if current.len() <= 1 {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;

        // Try each complement (the sequence with one chunk removed);
        // testing complements first is what makes ddmin converge fast
        // when most of the schedule is irrelevant.
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let complement: Vec<T> = current[..start]
                .iter()
                .chain(current[end..].iter())
                .cloned()
                .collect();
            if !complement.is_empty() && fails(&complement) {
                current = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }

        // Try each chunk on its own (catches the case where one dense
        // cluster of events is the whole story).
        if granularity > 2 {
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let subset: Vec<T> = current[start..end].to_vec();
                if fails(&subset) {
                    current = subset;
                    granularity = 2;
                    reduced = true;
                    break;
                }
                start = end;
            }
            if reduced {
                continue;
            }
        }

        // Nothing smaller fails at this granularity: refine or stop.
        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_event_schedule_shrinks_to_culprit_pair() {
        // A known 12-event failing schedule whose failure needs exactly
        // two events (3 and 7) to reproduce, in order.
        let schedule: Vec<u32> = (0..12).collect();
        let mut replays = 0u32;
        let minimal = ddmin(&schedule, |subset| {
            replays += 1;
            let a = subset.iter().position(|&e| e == 3);
            let b = subset.iter().position(|&e| e == 7);
            matches!((a, b), (Some(i), Some(j)) if i < j)
        });
        assert!(
            minimal.len() <= 3,
            "12-event schedule must shrink to <= 3 events, got {minimal:?}"
        );
        assert_eq!(minimal, vec![3, 7], "ddmin finds the exact culprit pair");
        assert!(replays < 100, "shrinking stays cheap ({replays} replays)");
    }

    #[test]
    fn single_culprit_shrinks_to_one_event() {
        let schedule: Vec<u32> = (0..9).collect();
        let minimal = ddmin(&schedule, |s| s.contains(&5));
        assert_eq!(minimal, vec![5]);
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure requires three scattered events; every event in the
        // shrunk schedule must be load-bearing.
        let schedule: Vec<u32> = (0..16).collect();
        let fails = |s: &[u32]| s.contains(&1) && s.contains(&8) && s.contains(&14);
        let minimal = ddmin(&schedule, fails);
        assert!(fails(&minimal));
        for drop in 0..minimal.len() {
            let mut pruned = minimal.clone();
            pruned.remove(drop);
            assert!(
                !fails(&pruned),
                "event {} is removable — not 1-minimal",
                minimal[drop]
            );
        }
    }

    #[test]
    fn preserves_event_order() {
        let schedule: Vec<u32> = vec![9, 4, 7, 1, 8];
        let minimal = ddmin(&schedule, |s| s.contains(&4) && s.contains(&8));
        assert_eq!(minimal, vec![4, 8]);
    }
}
