//! The campaign engine: builds a cluster per schedule, injects events,
//! checks the invariant suite, and shrinks failures.
//!
//! Every run is a pure function of `(options, schedule)`: the schedule
//! seed drives the cluster under test, the transport, the workload keys,
//! and every injector choice. That is what makes delta debugging sound —
//! [`crate::shrink::ddmin`] replays candidate subsets and trusts the
//! outcome.
//!
//! # The invariant suite
//!
//! After every injected event the engine checks, in order:
//!
//! 1. **Structural consistency** — [`ClashCluster::verify_consistency`]:
//!    the global index, active tables, replica registries, and the
//!    active-cover ∪ pending-recovery partition of the key space. Its
//!    panics are caught and reported as violations.
//! 2. **Retry conservation** — every deferred-recovery retry either
//!    stays blocked, completes, or abandons:
//!    `retries == retries_blocked + Σ completed + Σ lost`.
//! 3. **Deferral ledger** — fresh deferrals minus resolutions equals the
//!    live `pending_recovery` population.
//! 4. **Recovery conservation** (per crash) — groups owned by the
//!    victims are exactly accounted:
//!    `recovered + lost + deferred == owned`.
//! 5. **Oracle agreement** (quiet network only) — `locate` and
//!    `oracle_locate` agree on a sampled key set.
//! 6. **Replica placement** (quiescence) — no group silently
//!    under-replicated outside the dirty/pending sets
//!    ([`ClashCluster::replica_placement_deficit`]).
//! 7. **Bounded convergence** — after the last fault and a heal, the
//!    cluster reaches a stable, fully-agreeing, fully-replicated state
//!    within `convergence_checks` load checks.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_keyspace::key::Key;
use clash_obs::{RingSink, TraceEvent};
use clash_simkernel::rng::DetRng;
use clash_transport::{LatencyModel, LinkPolicy, LinkTransport};
use clash_workload::{FaultKind, Workload, WorkloadKind};

use crate::schedule::ChaosSchedule;
use crate::shrink::ddmin;

type ServerId = clash_chord::id::ChordId;

/// Per-source data rate of flash-crowd sources. Hot enough that a full
/// crowd concentrated under one prefix overloads its group and splits
/// the subtree (the default cell's capacity is 100 with baseline groups
/// near 25), so crowd-then-exodus schedules genuinely exercise the
/// split → merge → re-replicate surface.
const FLASH_CROWD_RATE: f64 = 2.5;

/// Cluster cell sizing and invariant-suite knobs for one campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// Servers in the cell at schedule start.
    pub servers: usize,
    /// Streaming sources attached before the first fault.
    pub sources: usize,
    /// Successor-list replication factor.
    pub replication: usize,
    /// Keys sampled per oracle-agreement check.
    pub sample_keys: usize,
    /// Load checks the cluster gets to converge after the last fault
    /// (invariant 7's bound `K`).
    pub convergence_checks: u32,
    /// Crash/leave events never drop the cell below this population.
    pub min_servers: usize,
    /// Flight-recorder ring capacity (the repro's trace tail).
    pub ring_capacity: usize,
    /// Test-only: skip replica re-seeding after merges (the seeded bug
    /// the campaign must catch; see
    /// [`ClashCluster::set_chaos_skip_merge_reseed`]).
    pub inject_merge_reseed_bug: bool,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            servers: 16,
            sources: 96,
            replication: 2,
            sample_keys: 32,
            convergence_checks: 8,
            min_servers: 5,
            ring_capacity: 256,
            inject_merge_reseed_bug: false,
        }
    }
}

impl ChaosOptions {
    /// Options scaled relative to the default cell: `scale = 1.0` is the
    /// default 16-server/96-source cell, smaller values shrink it (never
    /// below 8 servers / 48 sources so every fault class stays
    /// injectable).
    #[must_use]
    pub fn scaled(scale: f64) -> Self {
        let d = ChaosOptions::default();
        ChaosOptions {
            servers: ((d.servers as f64 * scale).round() as usize).max(8),
            sources: ((d.sources as f64 * scale).round() as usize).max(48),
            ..d
        }
    }
}

/// One invariant violation: which invariant, what it saw, and the index
/// of the schedule event after which it fired (`None` for the
/// quiescence/convergence phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name (e.g. `verify_consistency`,
    /// `replica_placement`, `convergence`).
    pub invariant: String,
    /// Human-readable description of the observed state.
    pub detail: String,
    /// Index into `schedule.events`, or `None` at quiescence.
    pub event_index: Option<usize>,
}

/// The outcome of replaying one schedule.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Events executed, bucketed by [`FaultKind::class_index`].
    pub events_by_class: [u64; FaultKind::CLASS_LABELS.len()],
    /// Events executed for which [`FaultKind::is_fault`] holds.
    pub faults_injected: u64,
    /// Individual invariant evaluations performed.
    pub invariant_checks: u64,
    /// Load checks the cluster needed to converge after the last fault
    /// (`None` when the run failed before or during convergence).
    pub convergence_checks_used: Option<u32>,
    /// The first violation, if any (the run stops at the first).
    pub violation: Option<Violation>,
    /// The flight-recorder ring tail at the end of the run.
    pub trace_tail: Vec<TraceEvent>,
}

/// One failing schedule: the original, its delta-debugged minimal form,
/// and the violation the minimal form reproduces.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Index of the schedule within the campaign.
    pub schedule_index: u64,
    /// The schedule as generated.
    pub schedule: ChaosSchedule,
    /// The 1-minimal failing subsequence (same seed).
    pub minimal: ChaosSchedule,
    /// The violation the minimal schedule reproduces.
    pub violation: Violation,
    /// Replays spent shrinking.
    pub shrink_replays: u32,
    /// Flight-recorder tail from the minimal schedule's failing replay.
    pub trace_tail: Vec<TraceEvent>,
}

/// Aggregate results of a campaign of seed-derived schedules.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The campaign seed the schedules derive from.
    pub campaign_seed: u64,
    /// Schedules executed.
    pub schedules_run: u64,
    /// Total fault events injected (breathing steps excluded).
    pub faults_injected: u64,
    /// Events executed per class, [`FaultKind::CLASS_LABELS`] order.
    pub faults_by_class: [u64; FaultKind::CLASS_LABELS.len()],
    /// Individual invariant evaluations across all schedules.
    pub invariant_checks: u64,
    /// The slowest post-fault convergence seen (load checks).
    pub worst_convergence_checks: u32,
    /// Failing schedules, shrunk. Empty means all invariants held.
    pub failures: Vec<CampaignFailure>,
}

/// Runs a whole campaign: `n_schedules` seed-derived schedules, each
/// checked against the invariant suite; every failure is delta-debugged
/// to a minimal repro.
#[must_use]
pub fn run_campaign(
    options: &ChaosOptions,
    campaign_seed: u64,
    n_schedules: u64,
) -> CampaignReport {
    let mut report = CampaignReport {
        campaign_seed,
        schedules_run: 0,
        faults_injected: 0,
        faults_by_class: [0; FaultKind::CLASS_LABELS.len()],
        invariant_checks: 0,
        worst_convergence_checks: 0,
        failures: Vec::new(),
    };
    for index in 0..n_schedules {
        let schedule = ChaosSchedule::generate(campaign_seed, index);
        let outcome = run_schedule(options, &schedule);
        report.schedules_run += 1;
        report.faults_injected += outcome.faults_injected;
        for (total, n) in report
            .faults_by_class
            .iter_mut()
            .zip(outcome.events_by_class)
        {
            *total += n;
        }
        report.invariant_checks += outcome.invariant_checks;
        if let Some(k) = outcome.convergence_checks_used {
            report.worst_convergence_checks = report.worst_convergence_checks.max(k);
        }
        if let Some(violation) = outcome.violation {
            report
                .failures
                .push(shrink_failure(options, index, schedule, violation));
        }
    }
    report
}

/// Delta-debugs a failing schedule to a 1-minimal repro (same seed).
#[must_use]
pub fn shrink_failure(
    options: &ChaosOptions,
    schedule_index: u64,
    schedule: ChaosSchedule,
    original_violation: Violation,
) -> CampaignFailure {
    let mut replays = 0u32;
    let minimal_events = ddmin(&schedule.events, |subset| {
        replays += 1;
        let candidate = ChaosSchedule {
            seed: schedule.seed,
            events: subset.to_vec(),
        };
        run_schedule(options, &candidate).violation.is_some()
    });
    let minimal = ChaosSchedule {
        seed: schedule.seed,
        events: minimal_events,
    };
    let final_outcome = run_schedule(options, &minimal);
    CampaignFailure {
        schedule_index,
        schedule,
        violation: final_outcome.violation.unwrap_or(original_violation),
        trace_tail: final_outcome.trace_tail,
        shrink_replays: replays,
        minimal,
    }
}

/// Replays one schedule from scratch and checks every invariant.
/// Deterministic in `(options, schedule)`.
#[must_use]
pub fn run_schedule(options: &ChaosOptions, schedule: &ChaosSchedule) -> ScheduleOutcome {
    let mut run = match Run::build(options, schedule) {
        Ok(run) => run,
        Err(violation) => {
            return ScheduleOutcome {
                events_by_class: [0; FaultKind::CLASS_LABELS.len()],
                faults_injected: 0,
                invariant_checks: 0,
                convergence_checks_used: None,
                violation: Some(violation),
                trace_tail: Vec::new(),
            }
        }
    };
    let violation = run.execute(schedule).err();
    ScheduleOutcome {
        events_by_class: run.events_by_class,
        faults_injected: run.faults_injected,
        invariant_checks: run.invariant_checks,
        convergence_checks_used: run.convergence_checks_used,
        violation,
        trace_tail: run.cluster.take_trace_events(),
    }
}

/// Mutable state of one schedule replay.
struct Run<'a> {
    options: &'a ChaosOptions,
    /// The schedule seed (also the cluster's protocol seed).
    seed: u64,
    cluster: ClashCluster,
    /// Injector randomness: resolves budgets (which victims, islands,
    /// keys) deterministically from the schedule seed.
    rng: DetRng,
    workload: Workload,
    workload_rng: DetRng,
    /// Source ids this run attached and has not detached.
    attached: Vec<u64>,
    next_source: u64,
    /// Conservation ledgers (invariants 2 and 3).
    sum_completed: u64,
    sum_lost: u64,
    deferred_outstanding: u64,
    /// True while a gray degrade is in force.
    gray_active: bool,
    /// Counter of oracle-agreement sampling rounds (substream index).
    sample_rounds: u64,
    events_by_class: [u64; FaultKind::CLASS_LABELS.len()],
    faults_injected: u64,
    invariant_checks: u64,
    convergence_checks_used: Option<u32>,
}

impl<'a> Run<'a> {
    fn build(options: &'a ChaosOptions, schedule: &ChaosSchedule) -> Result<Run<'a>, Violation> {
        let config = ClashConfig::small_test().with_replication(options.replication);
        let root = DetRng::new(schedule.seed);
        let transport = LinkTransport::new(
            LinkPolicy::lan(),
            root.substream("chaos-transport").next_u64(),
        );
        let mut cluster = ClashCluster::with_transport(
            config,
            options.servers,
            schedule.seed,
            Box::new(transport),
        )
        .map_err(|e| Violation {
            invariant: "harness".to_string(),
            detail: format!("cluster construction failed: {e:?}"),
            event_index: None,
        })?;
        cluster.set_trace_sink(Box::new(RingSink::new(options.ring_capacity)));
        if options.inject_merge_reseed_bug {
            cluster.set_chaos_skip_merge_reseed(true);
        }
        let mut run = Run {
            options,
            seed: schedule.seed,
            cluster,
            rng: root.substream("chaos-inject"),
            workload: Workload::paper(WorkloadKind::B),
            workload_rng: root.substream("chaos-workload"),
            attached: Vec::new(),
            next_source: 0,
            sum_completed: 0,
            sum_lost: 0,
            deferred_outstanding: 0,
            gray_active: false,
            sample_rounds: 0,
            events_by_class: [0; FaultKind::CLASS_LABELS.len()],
            faults_injected: 0,
            invariant_checks: 0,
            convergence_checks_used: None,
        };
        // Seed the workload and let the cover settle before the first
        // fault, so schedules attack a warm cluster.
        for _ in 0..options.sources {
            let id = run.next_source;
            run.next_source += 1;
            let key = run
                .workload
                .sample_key(run.cluster.config().key_width, &mut run.workload_rng);
            run.guard("attach_source", None, |c| {
                c.attach_source(id, key, 1.0).map(|_| ())
            })?;
            run.attached.push(id);
        }
        for _ in 0..2 {
            run.load_check(None)?;
        }
        Ok(run)
    }

    fn execute(&mut self, schedule: &ChaosSchedule) -> Result<(), Violation> {
        for (index, &event) in schedule.events.iter().enumerate() {
            self.inject(index, event)?;
            self.check_invariants(Some(index))?;
        }
        self.quiesce()
    }

    /// Quiescence: heal everything, then require convergence — a stable,
    /// fully-agreeing, fully-replicated state — within the bounded
    /// number of load checks (invariant 7).
    fn quiesce(&mut self) -> Result<(), Violation> {
        if self.gray_active {
            self.guard("gray_recover", None, |c| {
                c.set_link_policy(LinkPolicy::lan());
                Ok(())
            })?;
            self.gray_active = false;
        }
        self.guard("heal", None, |c| {
            c.heal_partition();
            Ok(())
        })?;
        for k in 1..=self.options.convergence_checks {
            self.load_check(None)?;
            self.check_invariants(None)?;
            if self.converged(None)? {
                self.convergence_checks_used = Some(k);
                return Ok(());
            }
        }
        let deficit = self.cluster.replica_placement_deficit();
        Err(Violation {
            invariant: "convergence".to_string(),
            detail: format!(
                "not converged after {} load checks: {} pending recoveries, {} under-replicated groups (first: {:?})",
                self.options.convergence_checks,
                self.cluster.pending_recoveries(),
                deficit.len(),
                deficit.first(),
            ),
            event_index: None,
        })
    }

    /// The quiescence convergence test: no pending recovery, no replica
    /// placement deficit, and sampled oracle agreement.
    fn converged(&mut self, at: Option<usize>) -> Result<bool, Violation> {
        if self.cluster.pending_recoveries() > 0 {
            return Ok(false);
        }
        self.invariant_checks += 1;
        let deficit = self.cluster.replica_placement_deficit();
        if !deficit.is_empty() {
            // Unreachable in practice — `load_check` already treats a
            // post-check deficit as a violation — but convergence is
            // defined independently of how the checks are scheduled.
            return Ok(false);
        }
        self.check_sampled_agreement(at)?;
        Ok(true)
    }

    fn inject(&mut self, index: usize, event: FaultKind) -> Result<(), Violation> {
        self.events_by_class[event.class_index()] += 1;
        if event.is_fault() {
            self.faults_injected += 1;
        }
        match event {
            FaultKind::CrashBurst { victims } => {
                let chosen = self.pick_random_victims(victims as usize);
                self.crash(index, &chosen)
            }
            FaultKind::RingCorrelatedCrash { span } => {
                let chosen = self.pick_ring_victims(span as usize);
                self.crash(index, &chosen)
            }
            FaultKind::PartitionStorm { islands } => {
                let islands = self.random_islands(islands as usize);
                if islands.len() >= 2 {
                    self.guard("partition", Some(index), |c| {
                        c.partition_network(&islands);
                        Ok(())
                    })?;
                }
                Ok(())
            }
            FaultKind::LinkFlap { cycles } => {
                for _ in 0..cycles {
                    let islands = self.random_islands(2);
                    if islands.len() < 2 {
                        break;
                    }
                    self.guard("partition", Some(index), |c| {
                        c.partition_network(&islands);
                        Ok(())
                    })?;
                    // Race the retry/deferral machinery inside the cut,
                    // then heal before the next cycle.
                    self.load_check(Some(index))?;
                    self.guard("heal", Some(index), |c| {
                        c.heal_partition();
                        Ok(())
                    })?;
                }
                Ok(())
            }
            FaultKind::GrayDegrade {
                drop_permille,
                extra_latency_ms,
            } => {
                let policy = gray_policy(drop_permille, extra_latency_ms);
                self.guard("gray_degrade", Some(index), |c| {
                    c.set_link_policy(policy);
                    Ok(())
                })?;
                self.gray_active = true;
                Ok(())
            }
            FaultKind::GrayRecover => {
                self.guard("gray_recover", Some(index), |c| {
                    c.set_link_policy(LinkPolicy::lan());
                    Ok(())
                })?;
                self.gray_active = false;
                Ok(())
            }
            FaultKind::ChurnAvalanche { joins, leaves } => {
                if self.cluster.network_is_partitioned() {
                    // Membership changes cannot complete across a cut;
                    // breathe instead so the schedule keeps moving.
                    return self.load_check(Some(index));
                }
                for step in 0..(joins + leaves) {
                    if step % 2 == 0 && step / 2 < joins {
                        self.guard("join", Some(index), |c| c.join_random_server().map(|_| ()))?;
                    } else {
                        let alive = self.cluster.server_ids();
                        if alive.len() <= self.options.min_servers {
                            continue;
                        }
                        let victim = alive[self.rng.uniform_index(alive.len())];
                        self.guard("leave", Some(index), |c| c.leave_server(victim).map(|_| ()))?;
                    }
                }
                Ok(())
            }
            FaultKind::FlashCrowd {
                prefix_bits,
                prefix_depth,
                sources,
            } => {
                if self.cluster.network_is_partitioned() {
                    return self.load_check(Some(index));
                }
                let width = self.cluster.config().key_width;
                let depth = prefix_depth.clamp(1, width.get());
                let base = (prefix_bits >> (64 - depth)) << (width.get() - depth);
                for _ in 0..sources {
                    let low = if width.get() == depth {
                        0
                    } else {
                        self.rng.uniform_u64(1 << (width.get() - depth))
                    };
                    let key = Key::from_bits_truncated(base | low, width);
                    let id = self.next_source;
                    self.next_source += 1;
                    self.guard("attach_source", Some(index), |c| {
                        c.attach_source(id, key, FLASH_CROWD_RATE).map(|_| ())
                    })?;
                    self.attached.push(id);
                }
                Ok(())
            }
            FaultKind::SourceExodus { sources } => {
                if self.cluster.network_is_partitioned() {
                    return self.load_check(Some(index));
                }
                for _ in 0..sources {
                    // Last attached, first to leave: an exodus is the
                    // most recent crowd dissipating, which is what
                    // actually collapses a split subtree back into
                    // merges (a uniform exodus rarely drops any single
                    // group below the merge threshold).
                    let Some(id) = self.attached.pop() else { break };
                    // Sources die with unrecoverable groups; only detach
                    // the ones still alive.
                    if self.cluster.has_source(id) {
                        self.guard("detach_source", Some(index), |c| c.detach_source(id))?;
                    }
                }
                Ok(())
            }
            FaultKind::Heal => self.guard("heal", Some(index), |c| {
                c.heal_partition();
                Ok(())
            }),
            FaultKind::LoadChecks { count } => {
                for _ in 0..count {
                    self.load_check(Some(index))?;
                }
                Ok(())
            }
        }
    }

    /// Crashes `victims` together and checks recovery conservation
    /// (invariant 4): every group the victims owned is recovered, lost,
    /// or deferred — none vanish, none are double-counted.
    fn crash(&mut self, index: usize, victims: &[ServerId]) -> Result<(), Violation> {
        if victims.is_empty() {
            return Ok(());
        }
        let owned: usize = victims
            .iter()
            .map(|&v| {
                self.cluster
                    .server(v)
                    .map_or(0, |s| s.table().active_count())
            })
            .sum();
        let report = self.guard("fail_servers", Some(index), |c| c.fail_servers(victims))?;
        self.invariant_checks += 1;
        let accounted = report.groups_recovered + report.groups_lost + report.groups_deferred;
        if accounted != owned {
            return Err(Violation {
                invariant: "recovery_conservation".to_string(),
                detail: format!(
                    "victims owned {owned} groups but the failure report accounts for {accounted} \
                     (recovered {}, lost {}, deferred {})",
                    report.groups_recovered, report.groups_lost, report.groups_deferred
                ),
                event_index: Some(index),
            });
        }
        self.deferred_outstanding += report.groups_deferred as u64;
        Ok(())
    }

    /// `n` distinct random victims, capped so the cell keeps
    /// `min_servers` alive.
    fn pick_random_victims(&mut self, n: usize) -> Vec<ServerId> {
        let mut alive = self.cluster.server_ids();
        let spare = alive.len().saturating_sub(self.options.min_servers);
        let n = n.min(spare);
        shuffle(&mut alive, &mut self.rng);
        alive.truncate(n);
        alive
    }

    /// A random victim plus its ring successors — the correlated crash
    /// that lands on the victim's own replica set.
    fn pick_ring_victims(&mut self, span: usize) -> Vec<ServerId> {
        let alive = self.cluster.server_ids();
        let spare = alive.len().saturating_sub(self.options.min_servers);
        let span = span.min(spare);
        if span == 0 {
            return Vec::new();
        }
        let victim = alive[self.rng.uniform_index(alive.len())];
        let mut chosen = vec![victim];
        chosen.extend(self.cluster.net().alive_successors(victim, span - 1));
        chosen.truncate(span);
        chosen
    }

    /// Splits the live membership into `k` random nonempty islands
    /// (fewer when the cell is small). The result feeds
    /// [`ClashCluster::partition_network`], which replaces any existing
    /// cut — consecutive storms roll the partition around the ring.
    fn random_islands(&mut self, k: usize) -> Vec<Vec<ServerId>> {
        let mut alive = self.cluster.server_ids();
        let k = k.min(alive.len());
        if k < 2 {
            return Vec::new();
        }
        shuffle(&mut alive, &mut self.rng);
        let mut islands: Vec<Vec<ServerId>> = vec![Vec::new(); k];
        // Deal one server to each island first so all are nonempty, then
        // scatter the rest.
        for (i, id) in alive.iter().enumerate() {
            if i < k {
                islands[i].push(*id);
            } else {
                let slot = self.rng.uniform_index(k);
                islands[slot].push(*id);
            }
        }
        islands
    }

    /// One load check plus the per-check bookkeeping feeding the
    /// conservation invariants.
    fn load_check(&mut self, at: Option<usize>) -> Result<(), Violation> {
        let report = self.guard("load_check", at, |c| c.run_load_check())?;
        self.sum_completed += report.recoveries_completed;
        self.sum_lost += report.recoveries_lost;
        self.deferred_outstanding = self
            .deferred_outstanding
            .saturating_sub(report.recoveries_completed + report.recoveries_lost);
        // Invariant 6, checked at every load check: a load check both
        // syncs replica placement and performs splits/merges, so on its
        // return no group may be silently under-replicated — anything
        // legitimately in flight sits in the dirty or pending sets,
        // which the deficit excludes. This is the window where a merge
        // that skipped re-seeding is caught *before* the next
        // membership change's full sync quietly repairs it.
        self.invariant_checks += 1;
        let deficit = self.cluster.replica_placement_deficit();
        if let Some(first) = deficit.first() {
            return Err(Violation {
                invariant: "replica_placement".to_string(),
                detail: format!(
                    "{} groups under-replicated outside the dirty/pending sets after a load \
                     check; first: group {:?} has {} of {} replicas",
                    deficit.len(),
                    first.0,
                    first.1,
                    first.2
                ),
                event_index: at,
            });
        }
        Ok(())
    }

    /// Invariants 1–3 (plus 5 on a quiet network), checked after every
    /// event.
    fn check_invariants(&mut self, at: Option<usize>) -> Result<(), Violation> {
        // 1. Structural consistency. `verify_consistency` panics with a
        // descriptive message on violation; the quiet catch turns that
        // into a first-class finding.
        self.invariant_checks += 1;
        {
            let cluster = &self.cluster;
            catch_violation(|| cluster.verify_consistency()).map_err(|msg| Violation {
                invariant: "verify_consistency".to_string(),
                detail: msg,
                event_index: at,
            })?;
        }
        // 2. Retry conservation.
        self.invariant_checks += 1;
        let (retries, blocked) = self.cluster.recovery_retry_counters();
        if retries != blocked + self.sum_completed + self.sum_lost {
            return Err(Violation {
                invariant: "retry_conservation".to_string(),
                detail: format!(
                    "{retries} retries != {blocked} blocked + {} completed + {} lost",
                    self.sum_completed, self.sum_lost
                ),
                event_index: at,
            });
        }
        // 3. Deferral ledger.
        self.invariant_checks += 1;
        let pending = self.cluster.pending_recoveries() as u64;
        if pending != self.deferred_outstanding {
            return Err(Violation {
                invariant: "deferral_ledger".to_string(),
                detail: format!(
                    "{pending} pending recoveries but ledger says {}",
                    self.deferred_outstanding
                ),
                event_index: at,
            });
        }
        // 5. Oracle agreement — only when the network is quiet enough
        // that locate must succeed and every group is in the cover.
        if !self.cluster.network_is_partitioned() && pending == 0 && !self.gray_active {
            self.check_sampled_agreement(at)?;
        }
        Ok(())
    }

    /// Invariant 5: `locate` and `oracle_locate` agree on a sampled key
    /// set. Caller guarantees a connected network and empty pending set.
    fn check_sampled_agreement(&mut self, at: Option<usize>) -> Result<(), Violation> {
        self.invariant_checks += 1;
        let mut sample_rng =
            DetRng::new(self.seed).substream_indexed("chaos-sample", self.sample_rounds);
        self.sample_rounds += 1;
        let width = self.cluster.config().key_width;
        for _ in 0..self.options.sample_keys {
            let key = Key::from_bits_truncated(sample_rng.next_u64(), width);
            let oracle = self.cluster.oracle_locate(key);
            let located = self.guard("locate", at, |c| c.locate(key))?;
            let agreed =
                oracle.is_some_and(|(srv, grp)| located.server == srv && located.group == grp);
            if !agreed {
                return Err(Violation {
                    invariant: "oracle_agreement".to_string(),
                    detail: format!(
                        "locate({key:?}) -> ({:?}, {:?}) but oracle says {oracle:?}",
                        located.server, located.group
                    ),
                    event_index: at,
                });
            }
        }
        Ok(())
    }

    /// Runs one cluster operation, converting both `Err` returns and
    /// panics (debug-build consistency sweeps fire inside load checks)
    /// into violations.
    fn guard<R>(
        &mut self,
        op: &'static str,
        at: Option<usize>,
        f: impl FnOnce(&mut ClashCluster) -> Result<R, ClashError>,
    ) -> Result<R, Violation> {
        let cluster = &mut self.cluster;
        match catch_violation(AssertUnwindSafe(|| f(cluster))) {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(e)) => Err(Violation {
                invariant: "op_error".to_string(),
                detail: format!("{op} failed: {e:?}"),
                event_index: at,
            }),
            Err(msg) => Err(Violation {
                invariant: "verify_consistency".to_string(),
                detail: format!("panic during {op}: {msg}"),
                event_index: at,
            }),
        }
    }
}

/// The degraded link policy for a gray failure: the LAN baseline plus
/// added loss (capped at 30%) and constant extra latency. Retries are
/// raised so degraded links stay semantically reachable — a gray link is
/// slow and lossy, not severed.
fn gray_policy(drop_permille: u32, extra_latency_ms: u32) -> LinkPolicy {
    let extra = u64::from(extra_latency_ms) * 1000;
    LinkPolicy {
        latency: LatencyModel::Uniform {
            lo: clash_simkernel::time::SimDuration::from_micros(200 + extra),
            hi: clash_simkernel::time::SimDuration::from_micros(2_000 + extra),
        },
        drop_probability: f64::from(drop_permille.min(300)) / 1000.0,
        retry_timeout: clash_simkernel::time::SimDuration::from_micros(20_000),
        max_retries: 12,
    }
}

/// Fisher–Yates with the injector's deterministic RNG.
fn shuffle<T>(items: &mut [T], rng: &mut DetRng) {
    for i in (1..items.len()).rev() {
        let j = rng.uniform_index(i + 1);
        items.swap(i, j);
    }
}

static HOOK_INIT: Once = Once::new();
thread_local! {
    static SUPPRESS_PANIC_REPORT: Cell<bool> = const { Cell::new(false) };
}

/// Catches a panic and returns its message, without the default hook
/// spraying "thread panicked at ..." over the campaign output. The
/// replacement hook delegates to the previous one for every panic that
/// is not inside a `catch_violation` call on this thread, so unrelated
/// panics keep their normal reporting.
fn catch_violation<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    HOOK_INIT.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_REPORT.with(Cell::get) {
                previous(info);
            }
        }));
    });
    SUPPRESS_PANIC_REPORT.with(|s| s.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_REPORT.with(|s| s.set(false));
    outcome.map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}
