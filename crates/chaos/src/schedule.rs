//! Seed-derived chaos schedules.
//!
//! A [`ChaosSchedule`] is a seed plus an ordered list of
//! [`FaultKind`] events. The seed drives *both* the cluster under test
//! and the injector's random choices (which concrete victims, islands,
//! keys), so a schedule replays bit-for-bit and survives shrinking: the
//! events carry budgets, not absolute ids, and every random resolution
//! is derived from `(seed, position)` at injection time.

use clash_simkernel::rng::DetRng;
use clash_workload::FaultKind;

/// One replayable chaos scenario: a seed and the events to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosSchedule {
    /// Root seed: drives the cluster under test and every injector
    /// choice. Two schedules with the same seed and events are the same
    /// run.
    pub seed: u64,
    /// The events, injected in order. The engine appends its own
    /// quiescence epilogue (heal, gray-recover, convergence checks), so
    /// schedules do not need to end tidily.
    pub events: Vec<FaultKind>,
}

impl ChaosSchedule {
    /// Generates the `index`-th random schedule of a campaign.
    ///
    /// Deterministic in `(campaign_seed, index)`. The event mix leans
    /// on breathing steps (`load_checks`) between faults so recovery
    /// machinery actually runs mid-schedule instead of piling every
    /// fault onto a frozen cluster.
    #[must_use]
    pub fn generate(campaign_seed: u64, index: u64) -> ChaosSchedule {
        let mut rng = DetRng::new(campaign_seed).substream_indexed("schedule", index);
        let seed = rng.next_u64();
        let n_events = 8 + rng.uniform_index(5); // 8..=12
        let mut events = Vec::with_capacity(n_events * 2);
        for _ in 0..n_events {
            let event = Self::random_event(&mut rng);
            events.push(event);
            // Breathing room: most faults are followed by at least one
            // load check so deferrals retry and splits/merges happen
            // while later faults land.
            if event.is_fault() && rng.chance(0.7) {
                events.push(FaultKind::LoadChecks {
                    count: 1 + rng.uniform_index(2) as u32,
                });
            }
        }
        ChaosSchedule { seed, events }
    }

    /// One weighted random event. Weights keep crash/partition/churn
    /// pressure high while still exercising the gray-failure and
    /// flash-crowd paths every few schedules.
    fn random_event(rng: &mut DetRng) -> FaultKind {
        // (weight, class) table; total 20.
        match rng.uniform_index(20) {
            0..=2 => FaultKind::CrashBurst {
                victims: 1 + rng.uniform_index(3) as u32,
            },
            3 | 4 => FaultKind::RingCorrelatedCrash {
                span: 2 + rng.uniform_index(3) as u32,
            },
            5 | 6 => FaultKind::PartitionStorm {
                islands: 2 + rng.uniform_index(2) as u32,
            },
            7 => FaultKind::LinkFlap {
                cycles: 1 + rng.uniform_index(4) as u32,
            },
            8 | 9 => FaultKind::GrayDegrade {
                drop_permille: 50 + rng.uniform_index(251) as u32,
                extra_latency_ms: 1 + rng.uniform_index(20) as u32,
            },
            10 => FaultKind::GrayRecover,
            11 | 12 => FaultKind::ChurnAvalanche {
                joins: 1 + rng.uniform_index(3) as u32,
                leaves: 1 + rng.uniform_index(3) as u32,
            },
            13 | 14 => {
                let depth = 2 + rng.uniform_index(3) as u32;
                FaultKind::FlashCrowd {
                    // Left-aligned in 64 bits; the injector takes the
                    // top `depth` bits whatever the key width is.
                    prefix_bits: rng.next_u64() & (u64::MAX << (64 - depth)),
                    prefix_depth: depth,
                    // Big enough (at the injector's flash-crowd rate)
                    // that a concentrated crowd overloads its group and
                    // forces splits.
                    sources: 40 + rng.uniform_index(41) as u32,
                }
            }
            15 | 16 => FaultKind::SourceExodus {
                // Sized to swallow a whole preceding crowd, collapsing
                // the split subtree back into merges.
                sources: 40 + rng.uniform_index(61) as u32,
            },
            17 => FaultKind::Heal,
            _ => FaultKind::LoadChecks {
                count: 1 + rng.uniform_index(3) as u32,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ChaosSchedule::generate(42, 7);
        let b = ChaosSchedule::generate(42, 7);
        assert_eq!(a, b);
        let c = ChaosSchedule::generate(42, 8);
        assert_ne!(a, c, "different index, different schedule");
        let d = ChaosSchedule::generate(43, 7);
        assert_ne!(a, d, "different campaign seed, different schedule");
    }

    #[test]
    fn schedules_are_nonempty_and_inject_faults() {
        for i in 0..32 {
            let s = ChaosSchedule::generate(1, i);
            assert!(s.events.len() >= 8);
            assert!(
                s.events.iter().any(|e| e.is_fault()),
                "schedule {i} injects at least one fault"
            );
        }
    }

    #[test]
    fn campaign_covers_every_fault_class() {
        let mut seen = [false; FaultKind::CLASS_LABELS.len()];
        for i in 0..256 {
            for e in ChaosSchedule::generate(9, i).events {
                seen[e.class_index()] = true;
            }
        }
        for (i, label) in FaultKind::CLASS_LABELS.iter().enumerate() {
            assert!(seen[i], "class {label} never generated in 256 schedules");
        }
    }

    #[test]
    fn flash_crowd_prefix_bits_are_left_aligned() {
        for i in 0..256 {
            for e in ChaosSchedule::generate(3, i).events {
                if let FaultKind::FlashCrowd {
                    prefix_bits,
                    prefix_depth,
                    ..
                } = e
                {
                    assert_eq!(
                        prefix_bits & !(u64::MAX << (64 - prefix_depth)),
                        0,
                        "bits below the prefix depth must be zero"
                    );
                }
            }
        }
    }
}
