//! Replayable repro files (`chaos_repro.json`).
//!
//! A repro carries everything needed to re-run a shrunk failing
//! schedule — the seed, the cell options, the minimal event list — plus
//! two write-only annotations for humans: the violation that fired and
//! the flight-recorder ring tail from the failing replay. Replay needs
//! only seed + options + events; the trace tail is evidence, not input.
//!
//! The workspace deliberately has no serde (vendored crates only), so
//! the format is written by hand and read back by a minimal JSON value
//! parser. The parser accepts general JSON (it has to skip the trace
//! tail), but only the fields named here are interpreted.

use clash_obs::{ArgValue, TraceEvent};
use clash_workload::FaultKind;

use crate::engine::{CampaignFailure, ChaosOptions, ScheduleOutcome, Violation};
use crate::schedule::ChaosSchedule;

/// Format marker written into (and required from) every repro file.
pub const REPRO_FORMAT: &str = "clash-chaos-repro-v1";

/// A parsed repro: everything needed to replay the minimal schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRepro {
    /// Seed of the campaign the failure came from (provenance only).
    pub campaign_seed: u64,
    /// Index of the failing schedule within that campaign (provenance).
    pub schedule_index: u64,
    /// The cell options the failure reproduces under.
    pub options: ChaosOptions,
    /// The violation the minimal schedule reproduces.
    pub violation: Violation,
    /// The minimal failing schedule (seed + events).
    pub schedule: ChaosSchedule,
}

impl ChaosRepro {
    /// Replays the repro's minimal schedule under its recorded options.
    #[must_use]
    pub fn replay(&self) -> ScheduleOutcome {
        crate::engine::run_schedule(&self.options, &self.schedule)
    }
}

/// Renders a shrunk campaign failure as a `chaos_repro.json` document.
#[must_use]
pub fn render_repro(
    options: &ChaosOptions,
    campaign_seed: u64,
    failure: &CampaignFailure,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"format\": \"{REPRO_FORMAT}\",\n"));
    out.push_str(&format!("  \"campaign_seed\": {campaign_seed},\n"));
    out.push_str(&format!(
        "  \"schedule_index\": {},\n",
        failure.schedule_index
    ));
    out.push_str(&format!("  \"seed\": {},\n", failure.minimal.seed));
    out.push_str("  \"options\": {\n");
    out.push_str(&format!("    \"servers\": {},\n", options.servers));
    out.push_str(&format!("    \"sources\": {},\n", options.sources));
    out.push_str(&format!("    \"replication\": {},\n", options.replication));
    out.push_str(&format!("    \"sample_keys\": {},\n", options.sample_keys));
    out.push_str(&format!(
        "    \"convergence_checks\": {},\n",
        options.convergence_checks
    ));
    out.push_str(&format!("    \"min_servers\": {},\n", options.min_servers));
    out.push_str(&format!(
        "    \"ring_capacity\": {},\n",
        options.ring_capacity
    ));
    out.push_str(&format!(
        "    \"inject_merge_reseed_bug\": {}\n",
        options.inject_merge_reseed_bug
    ));
    out.push_str("  },\n");
    out.push_str("  \"violation\": {\n");
    out.push_str(&format!(
        "    \"invariant\": \"{}\",\n",
        escape(&failure.violation.invariant)
    ));
    out.push_str(&format!(
        "    \"detail\": \"{}\",\n",
        escape(&failure.violation.detail)
    ));
    match failure.violation.event_index {
        Some(i) => out.push_str(&format!("    \"event_index\": {i}\n")),
        None => out.push_str("    \"event_index\": null\n"),
    }
    out.push_str("  },\n");
    out.push_str("  \"shrunk_from_events\": ");
    out.push_str(&failure.schedule.events.len().to_string());
    out.push_str(",\n  \"events\": [\n");
    for (i, event) in failure.minimal.events.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&render_event(*event));
        out.push_str(if i + 1 < failure.minimal.events.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"trace_tail\": [\n");
    for (i, ev) in failure.trace_tail.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&render_trace_event(ev));
        out.push_str(if i + 1 < failure.trace_tail.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_event(event: FaultKind) -> String {
    let mut s = format!("{{\"kind\": \"{}\"", event.label());
    for (name, value) in event.params() {
        s.push_str(&format!(", \"{name}\": {value}"));
    }
    s.push('}');
    s
}

fn render_trace_event(ev: &TraceEvent) -> String {
    let mut s = format!(
        "{{\"at_us\": {}, \"seq\": {}, \"name\": \"{}\"",
        ev.at.as_micros(),
        ev.seq,
        ev.kind.name()
    );
    for (name, value) in ev.kind.args() {
        match value {
            ArgValue::Int(v) => s.push_str(&format!(", \"{name}\": {v}")),
            ArgValue::Bool(v) => s.push_str(&format!(", \"{name}\": {v}")),
            ArgValue::Float(v) if v.is_finite() => s.push_str(&format!(", \"{name}\": {v}")),
            ArgValue::Float(_) => s.push_str(&format!(", \"{name}\": null")),
        }
    }
    s.push('}');
    s
}

/// Parses a `chaos_repro.json` document back into a replayable repro.
///
/// # Errors
///
/// Returns a description of the first structural problem: not JSON, a
/// missing/mistyped field, an unknown event kind, or a format-marker
/// mismatch.
pub fn parse_repro(text: &str) -> Result<ChaosRepro, String> {
    let value = Json::parse(text)?;
    let root = value.as_object("repro root")?;
    let format = get(root, "format")?.as_str("format")?;
    if format != REPRO_FORMAT {
        return Err(format!(
            "unsupported repro format {format:?} (expected {REPRO_FORMAT:?})"
        ));
    }
    let options_obj = get(root, "options")?.as_object("options")?;
    let options = ChaosOptions {
        servers: get(options_obj, "servers")?.as_u64("servers")? as usize,
        sources: get(options_obj, "sources")?.as_u64("sources")? as usize,
        replication: get(options_obj, "replication")?.as_u64("replication")? as usize,
        sample_keys: get(options_obj, "sample_keys")?.as_u64("sample_keys")? as usize,
        convergence_checks: get(options_obj, "convergence_checks")?.as_u64("convergence_checks")?
            as u32,
        min_servers: get(options_obj, "min_servers")?.as_u64("min_servers")? as usize,
        ring_capacity: get(options_obj, "ring_capacity")?.as_u64("ring_capacity")? as usize,
        inject_merge_reseed_bug: get(options_obj, "inject_merge_reseed_bug")?
            .as_bool("inject_merge_reseed_bug")?,
    };
    let violation_obj = get(root, "violation")?.as_object("violation")?;
    let violation = Violation {
        invariant: get(violation_obj, "invariant")?
            .as_str("invariant")?
            .to_string(),
        detail: get(violation_obj, "detail")?.as_str("detail")?.to_string(),
        event_index: match get(violation_obj, "event_index")? {
            Json::Null => None,
            other => Some(other.as_u64("event_index")? as usize),
        },
    };
    let mut events = Vec::new();
    for (i, entry) in get(root, "events")?.as_array("events")?.iter().enumerate() {
        let obj = entry.as_object("event")?;
        let kind = get(obj, "kind")?.as_str("event kind")?;
        let params: Vec<(String, u64)> = obj
            .iter()
            .filter(|(name, _)| name != "kind")
            .map(|(name, value)| Ok((name.clone(), value.as_u64(name)?)))
            .collect::<Result<_, String>>()?;
        events.push(
            FaultKind::from_parts(kind, &params)
                .ok_or_else(|| format!("event {i}: unknown or incomplete kind {kind:?}"))?,
        );
    }
    Ok(ChaosRepro {
        campaign_seed: get(root, "campaign_seed")?.as_u64("campaign_seed")?,
        schedule_index: get(root, "schedule_index")?.as_u64("schedule_index")?,
        options,
        violation,
        schedule: ChaosSchedule {
            seed: get(root, "seed")?.as_u64("seed")?,
            events,
        },
    })
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn get<'a>(obj: &'a [(String, Json)], name: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field {name:?}"))
}

/// A minimal JSON value: just enough to read repro files back.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// All numbers are kept as f64 except unsigned integers, which stay
    /// exact — seeds are full-range u64 and must not round-trip through
    /// a double.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Object(fields) => Ok(fields),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Array(items) => Ok(items),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::U64(v) => Ok(*v),
            other => Err(format!("{what}: expected unsigned integer, got {other:?}")),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((name, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a
                    // &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_obs::TraceEventKind;
    use clash_simkernel::time::SimTime;

    fn sample_failure() -> CampaignFailure {
        CampaignFailure {
            schedule_index: 3,
            schedule: ChaosSchedule {
                seed: u64::MAX - 7,
                events: vec![
                    FaultKind::CrashBurst { victims: 2 },
                    FaultKind::LoadChecks { count: 1 },
                    FaultKind::PartitionStorm { islands: 2 },
                    FaultKind::Heal,
                ],
            },
            minimal: ChaosSchedule {
                seed: u64::MAX - 7,
                events: vec![
                    FaultKind::CrashBurst { victims: 2 },
                    FaultKind::FlashCrowd {
                        prefix_bits: 0b101 << 61,
                        prefix_depth: 3,
                        sources: 40,
                    },
                ],
            },
            violation: Violation {
                invariant: "replica_placement".to_string(),
                detail: "group \"10*\" has 0 of 2 replicas\nafter merge".to_string(),
                event_index: Some(1),
            },
            shrink_replays: 9,
            trace_tail: vec![TraceEvent {
                at: SimTime::from_micros(1234),
                seq: 9,
                kind: TraceEventKind::RecoveryDeferred {
                    failed: 42,
                    group_bits: 0b10,
                    group_depth: 2,
                },
            }],
        }
    }

    #[test]
    fn repro_round_trips() {
        let options = ChaosOptions {
            inject_merge_reseed_bug: true,
            ..ChaosOptions::default()
        };
        let failure = sample_failure();
        let text = render_repro(&options, 42, &failure);
        let repro = parse_repro(&text).expect("parses");
        assert_eq!(repro.campaign_seed, 42);
        assert_eq!(repro.schedule_index, 3);
        assert_eq!(repro.options, options);
        assert_eq!(repro.violation, failure.violation);
        assert_eq!(repro.schedule, failure.minimal);
    }

    #[test]
    fn full_range_seeds_survive_the_round_trip() {
        let options = ChaosOptions::default();
        let mut failure = sample_failure();
        failure.minimal.seed = u64::MAX;
        let text = render_repro(&options, u64::MAX - 1, &failure);
        let repro = parse_repro(&text).expect("parses");
        assert_eq!(
            repro.schedule.seed,
            u64::MAX,
            "seeds must not round through f64"
        );
        assert_eq!(repro.campaign_seed, u64::MAX - 1);
    }

    #[test]
    fn quiescence_violation_round_trips_as_null_index() {
        let options = ChaosOptions::default();
        let mut failure = sample_failure();
        failure.violation.event_index = None;
        let text = render_repro(&options, 1, &failure);
        assert!(text.contains("\"event_index\": null"));
        let repro = parse_repro(&text).expect("parses");
        assert_eq!(repro.violation.event_index, None);
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        assert!(parse_repro("").is_err());
        assert!(parse_repro("{}").unwrap_err().contains("format"));
        assert!(parse_repro("{\"format\": \"something-else\"}")
            .unwrap_err()
            .contains("unsupported repro format"));
        let options = ChaosOptions::default();
        let good = render_repro(&options, 1, &sample_failure());
        let bad = good.replace("crash_burst", "meteor_strike");
        assert!(parse_repro(&bad).unwrap_err().contains("meteor_strike"));
    }
}
