//! Campaign-level acceptance tests: a full seeded campaign is green on
//! the stock protocol, and a seeded bug is caught, shrunk, and
//! replayable from its repro file.

use clash_chaos::{
    parse_repro, render_repro, run_campaign, run_schedule, ChaosOptions, ChaosSchedule,
};
use clash_workload::FaultKind;

/// The headline robustness claim: a 64-schedule seeded campaign at the
/// default scale completes with every invariant green.
#[test]
fn default_scale_campaign_of_64_schedules_is_all_green() {
    let options = ChaosOptions::default();
    let report = run_campaign(&options, 0xC1A5_4CA0, 64);
    assert_eq!(report.schedules_run, 64);
    assert!(
        report.failures.is_empty(),
        "stock protocol must hold every invariant; first failure: {:?}",
        report.failures.first().map(|f| (&f.violation, &f.minimal))
    );
    assert!(
        report.faults_injected > 100,
        "campaign actually injects faults"
    );
    assert!(
        report.invariant_checks > 1_000,
        "invariants are checked throughout, got {}",
        report.invariant_checks
    );
    // Every fault class fires somewhere in 64 schedules.
    for (i, label) in FaultKind::CLASS_LABELS.iter().enumerate() {
        assert!(
            report.faults_by_class[i] > 0,
            "class {label} never injected across the campaign"
        );
    }
    assert!(
        report.worst_convergence_checks >= 1
            && report.worst_convergence_checks <= options.convergence_checks,
        "convergence stayed within the bound, worst {}",
        report.worst_convergence_checks
    );
}

/// Campaigns are a pure function of their inputs: same seed, same
/// report (the property delta-debugging and repro replay stand on).
#[test]
fn campaigns_are_deterministic() {
    let options = ChaosOptions::default();
    let a = run_campaign(&options, 99, 4);
    let b = run_campaign(&options, 99, 4);
    assert_eq!(a.faults_by_class, b.faults_by_class);
    assert_eq!(a.invariant_checks, b.invariant_checks);
    assert_eq!(a.worst_convergence_checks, b.worst_convergence_checks);
    assert_eq!(a.failures.len(), b.failures.len());
}

/// The end-to-end bug-hunting story: a seeded replication bug (merges
/// skip replica re-seeding) is caught by the campaign, delta-debugged
/// to a minimal schedule of at most 5 events, and the emitted repro
/// file replays to the same violation.
#[test]
fn seeded_merge_reseed_bug_is_caught_shrunk_and_replayable() {
    let options = ChaosOptions {
        inject_merge_reseed_bug: true,
        ..ChaosOptions::default()
    };
    let campaign_seed = 0xB06u64;
    let report = run_campaign(&options, campaign_seed, 16);
    assert!(
        !report.failures.is_empty(),
        "the seeded bug must be caught within 16 schedules"
    );
    let failure = &report.failures[0];
    assert!(
        failure.minimal.events.len() <= 5,
        "minimal repro must be at most 5 events, got {}: {:?}",
        failure.minimal.events.len(),
        failure.minimal.events
    );
    assert!(
        failure.minimal.events.len() < failure.schedule.events.len(),
        "shrinking removed something"
    );
    // The minimal schedule fails on its own...
    let replay = run_schedule(&options, &failure.minimal);
    let violation = replay.violation.expect("minimal schedule still fails");
    assert_eq!(violation, failure.violation);
    // ...and names the replica-placement/convergence surface the bug
    // lives on, not some unrelated invariant.
    assert!(
        violation.invariant == "convergence" || violation.invariant == "replica_placement",
        "unexpected invariant: {violation:?}"
    );
    // The repro file round-trips and replays to the same violation.
    let text = render_repro(&options, campaign_seed, failure);
    let repro = parse_repro(&text).expect("repro parses");
    let replayed = repro.replay();
    assert_eq!(replayed.violation, Some(failure.violation.clone()));
    // And the stock protocol passes the exact same schedule — the
    // violation is the bug, not the harness.
    let clean_options = ChaosOptions {
        inject_merge_reseed_bug: false,
        ..options
    };
    let clean = run_schedule(
        &clean_options,
        &ChaosSchedule {
            seed: failure.minimal.seed,
            events: failure.minimal.events.clone(),
        },
    );
    assert_eq!(
        clean.violation, None,
        "stock protocol passes the repro schedule"
    );
}
