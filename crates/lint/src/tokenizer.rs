//! A minimal Rust lexer for lint purposes.
//!
//! Produces the identifier/punctuation token stream of a source file with
//! comments, string literals, char literals and lifetimes stripped — so a
//! rule that searches for `Instant::now` can never be fooled by a doc
//! comment, a format string, or an identifier like `InstantTransport`.
//!
//! It is *not* a full lexer: numeric literals are tokenized loosely and
//! keywords are ordinary identifiers. That is enough for token-sequence
//! pattern matching, which is all the rules need.
//!
//! Line comments are additionally scanned for `clash-lint:` suppression
//! directives (see [`Directive`]). Block comments are stripped but do
//! **not** carry directives — a directive in a block comment suppresses
//! nothing, so there is no silent hole: the underlying diagnostic still
//! fires.

/// One significant token: an identifier/number, or a single punctuation
/// character. Multi-character operators (`::`, `->`, `>>`) appear as
/// consecutive single-character tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub text: String,
    pub line: u32,
}

/// A parsed `// clash-lint: allow(<rule>[, <rule>...]) -- <reason>`
/// suppression directive.
///
/// A directive suppresses matching diagnostics reported on its own line or
/// on the immediately following line (so it can trail the offending
/// expression or sit on its own line above it). The `-- <reason>` part is
/// mandatory; a directive without it is malformed, rejected, and suppresses
/// nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: Option<String>,
    /// Set when the directive text after `clash-lint:` could not be parsed;
    /// holds a human-readable description of what is wrong.
    pub malformed: Option<String>,
}

/// Lexer output: the stripped token stream plus any suppression directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub directives: Vec<Directive>,
}

/// Lexes `src`, stripping comments/strings/lifetimes and collecting
/// `clash-lint:` directives from line comments.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                let body: String = chars[start..j].iter().collect();
                if let Some(d) = parse_directive(&body, line) {
                    out.directives.push(d);
                }
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            '\'' => {
                i = skip_char_or_lifetime(&chars, i, &mut line);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let ident: String = chars[start..j].iter().collect();
                // String-literal prefixes: r"..", r#".."#, b"..", br#".."#,
                // c"..", cr#".."#, and byte chars b'x'.
                let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "c" | "cr");
                if is_str_prefix && j < n && (chars[j] == '"' || chars[j] == '#') {
                    if let Some(end) = skip_raw_or_plain_string(&chars, j, &mut line) {
                        i = end;
                        continue;
                    }
                }
                if ident == "b" && j < n && chars[j] == '\'' {
                    i = skip_char_or_lifetime(&chars, j, &mut line);
                    continue;
                }
                out.tokens.push(Token { text: ident, line });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    text: chars[start..j].iter().collect(),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Skips a plain `"..."` string starting at the opening quote; returns the
/// index just past the closing quote.
fn skip_string(chars: &[char], open: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut j = open + 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Skips a raw (`#`-guarded) or plain string whose body starts at `at`
/// (pointing at `"` or the first `#`). Returns `None` if this is not
/// actually a string start.
fn skip_raw_or_plain_string(chars: &[char], at: usize, line: &mut u32) -> Option<usize> {
    let n = chars.len();
    let mut hashes = 0usize;
    let mut j = at;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None; // e.g. `r#raw_identifier`
    }
    if hashes == 0 {
        // A `b"..."`/`c"..."` string still processes escapes; `r"..."` does
        // not, but it also cannot contain `"` at all, so escape-skipping is
        // harmless there (backslash before a quote never occurs unescaped).
        return Some(skip_string(chars, j, line));
    }
    j += 1;
    while j < n {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && chars[k] == '#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    Some(n)
}

/// Disambiguates `'a'` / `'\n'` / `b'x'` char literals from `'lifetime`
/// labels, starting at the opening quote. Char literals are skipped;
/// lifetimes are consumed without emitting a token.
fn skip_char_or_lifetime(chars: &[char], open: usize, line: &mut u32) -> usize {
    let n = chars.len();
    if open + 1 >= n {
        return n;
    }
    let next = chars[open + 1];
    if next == '\\' {
        // Escaped char literal: consume to the closing quote.
        let mut j = open + 2;
        while j < n && chars[j] != '\'' {
            if chars[j] == '\\' {
                j += 1;
            }
            j += 1;
        }
        return (j + 1).min(n);
    }
    if next.is_alphanumeric() || next == '_' {
        // `'x'` is a char literal; `'xs`, `'static` are lifetimes.
        let mut j = open + 1;
        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        if j < n && chars[j] == '\'' && j == open + 2 {
            return j + 1; // single-char literal
        }
        return j; // lifetime or label: already consumed
    }
    // Punctuation char literal like '(' or '\u' handled above; ''' invalid.
    if next == '\n' {
        *line += 1;
    }
    let mut j = open + 2;
    if j < n && chars[j] == '\'' {
        j += 1;
    }
    j
}

/// Parses a `clash-lint:` directive out of one line-comment body, if the
/// comment *is* a directive. A directive is a comment that starts with
/// `clash-lint:` (after doc-comment markers); prose that merely mentions
/// the marker mid-sentence is not one.
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let body = comment.trim_start_matches(['/', '!']).trim();
    let rest = body.strip_prefix("clash-lint:")?.trim();
    let malformed = |why: &str| {
        Some(Directive {
            line,
            rules: Vec::new(),
            reason: None,
            malformed: Some(why.to_string()),
        })
    };
    let Some(body) = rest.strip_prefix("allow") else {
        return malformed("expected `allow(<rule>, ...) -- <reason>` after `clash-lint:`");
    };
    let body = body.trim_start();
    let Some(body) = body.strip_prefix('(') else {
        return malformed("expected `(` after `allow`");
    };
    let Some(close) = body.find(')') else {
        return malformed("unclosed `(` in allow directive");
    };
    let rules: Vec<String> = body[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return malformed("allow() names no rules");
    }
    let tail = body[close + 1..].trim();
    let reason = tail
        .strip_prefix("--")
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty());
    Some(Directive {
        line,
        rules,
        reason,
        malformed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let src = r##"
            // Instant::now in a comment
            /* SystemTime in /* a nested */ block */
            let s = "Instant::now inside a string";
            let r = r#"thread_rng in a raw "string""#;
            let c = 'x';
            let b = b'\n';
            fn f<'a>(x: &'a str) {}
        "##;
        let t = texts(src);
        assert!(!t.contains(&"Instant".to_string()), "{t:?}");
        assert!(!t.contains(&"SystemTime".to_string()));
        assert!(!t.contains(&"thread_rng".to_string()));
        assert!(t.contains(&"str".to_string()));
    }

    #[test]
    fn identifiers_are_whole_tokens() {
        let t = texts("InstantTransport SimInstant Instant");
        assert_eq!(t, vec!["InstantTransport", "SimInstant", "Instant"]);
    }

    #[test]
    fn tracks_lines() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn parses_allow_directive_with_reason() {
        let lexed = lex("let x = 1; // clash-lint: allow(no-wall-clock) -- bench timing only\n");
        assert_eq!(lexed.directives.len(), 1);
        let d = &lexed.directives[0];
        assert_eq!(d.rules, vec!["no-wall-clock"]);
        assert_eq!(d.reason.as_deref(), Some("bench timing only"));
        assert!(d.malformed.is_none());
    }

    #[test]
    fn directive_without_reason_is_flagged() {
        let lexed = lex("// clash-lint: allow(no-wall-clock)\n");
        let d = &lexed.directives[0];
        assert!(d.reason.is_none());
        assert!(d.malformed.is_none());
    }

    #[test]
    fn malformed_directive_is_flagged() {
        let lexed = lex("// clash-lint: disable(no-wall-clock)\n");
        assert!(lexed.directives[0].malformed.is_some());
    }

    #[test]
    fn multi_rule_directive() {
        let lexed = lex("// clash-lint: allow(no-wall-clock, det-collections) -- fixture\n");
        assert_eq!(lexed.directives[0].rules.len(), 2);
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let t = texts("let r#match = 1;");
        assert!(t.contains(&"match".to_string()));
    }

    #[test]
    fn block_comment_directive_is_ignored() {
        let lexed = lex("/* clash-lint: allow(no-wall-clock) -- nope */\n");
        assert!(lexed.directives.is_empty());
    }
}
