//! Per-crate path policies: which rules apply where.
//!
//! Paths are workspace-relative with `/` separators (the walker and the
//! fixture tests both produce that form). The policy encodes the repo's
//! determinism contract:
//!
//! * **Protocol crates** (`core`, `chord`, `keyspace`, `transport`,
//!   `streamquery`, `workload`, `simkernel`, `chaos`) and the root facade
//!   `src/` carry the full contract — their behavior is pinned bit-for-bit
//!   by the shard-equivalence harness and the transport pins, and the
//!   chaos shrinker depends on replay determinism.
//! * **Wall-clock crates** (`sim`, `bench`, `lint`, `obs`) may measure
//!   wall-clock time — the harness crates because they time real runs,
//!   `obs` because it is where the profiling clock reader
//!   (`WallProfiler`) lives — but still may not draw ambient randomness
//!   or spawn unregistered threads.
//! * Root `tests/` and `examples/` are harness entry points: only the
//!   everywhere-rules (ambient RNG) apply.

/// Crates whose behavior is covered by the bit-for-bit determinism pins.
/// `chaos` is here because schedule shrinking is only sound if a
/// campaign is a pure function of `(options, seed)` — the engine is
/// clock-free, env-free, and thread-free with zero suppressions.
pub const PROTOCOL_CRATES: &[&str] = &[
    "core",
    "chord",
    "keyspace",
    "transport",
    "streamquery",
    "workload",
    "simkernel",
    "chaos",
];

/// Crates whose sources may read the wall clock (`Instant`,
/// `SystemTime`): the harness crates that time real runs, plus `obs`,
/// home of the only profiling clock reader (`WallProfiler`). Every
/// other crate source — protocol crates and the root facade — must use
/// virtual time.
pub const WALL_CLOCK_CRATES: &[&str] = &["sim", "bench", "lint", "obs"];

/// The only files allowed to use `std::thread` (both run worker fan-out
/// under `std::thread::scope` against frozen snapshots, merging results
/// deterministically).
pub const REGISTERED_THREAD_SITES: &[&str] = &[
    "crates/core/src/cluster.rs",
    "crates/sim/src/experiments/mod.rs",
    // PR 9 state sharding: the transport's batched send lanes and the
    // chord net's partitioned table computation both fan out under
    // `std::thread::scope` with deterministic recombination.
    "crates/transport/src/link.rs",
    "crates/chord/src/net.rs",
];

/// File basenames allowed to read process environment variables: the
/// config/report entry points, so experiment behavior stays flag-driven.
pub const ENV_ENTRY_BASENAMES: &[&str] = &["config.rs", "report.rs"];

/// Where the `MessageClass` enum lives and where its variants must be
/// charged. `exhaustive-charging` reads variants from the first, call
/// sites from under the second.
pub const MESSAGE_CLASS_DEF: &str = "crates/transport/src/lib.rs";
pub const CHARGING_ROOT: &str = "crates/core/src/";

/// True for files inside one of the protocol crates' `src/` trees, or the
/// root facade `src/`.
pub fn is_protocol(path: &str) -> bool {
    if path.starts_with("src/") {
        return true;
    }
    PROTOCOL_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// True for any workspace crate source (protocol or harness) plus the root
/// facade — i.e. everything except root `tests/` and `examples/`.
pub fn is_crate_source(path: &str) -> bool {
    path.starts_with("crates/") || path.starts_with("src/")
}

/// True if `path` belongs to a registered wall-clock crate.
pub fn may_read_wall_clock(path: &str) -> bool {
    WALL_CLOCK_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/")))
}

/// True if `path` is one of the registered `std::thread` sites.
pub fn is_registered_thread_site(path: &str) -> bool {
    REGISTERED_THREAD_SITES.contains(&path)
}

/// True if `path` may call `std::env::var`: config/report entry points and
/// binary entry points (`src/bin/...`).
pub fn is_env_entry_point(path: &str) -> bool {
    if path.contains("/bin/") {
        return true;
    }
    let base = path.rsplit('/').next().unwrap_or(path);
    ENV_ENTRY_BASENAMES.contains(&base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_classification() {
        assert!(is_protocol("crates/core/src/cluster.rs"));
        assert!(is_protocol("crates/simkernel/src/rng.rs"));
        assert!(is_protocol("crates/chaos/src/engine.rs"));
        assert!(is_protocol("src/lib.rs"));
        assert!(!is_protocol("crates/sim/src/driver.rs"));
        assert!(!is_protocol("crates/bench/src/lib.rs"));
        assert!(!is_protocol("tests/shard_equivalence.rs"));
    }

    #[test]
    fn wall_clock_classification() {
        assert!(may_read_wall_clock("crates/sim/src/driver.rs"));
        assert!(may_read_wall_clock("crates/bench/src/lib.rs"));
        assert!(may_read_wall_clock("crates/obs/src/profile.rs"));
        assert!(may_read_wall_clock("crates/lint/src/main.rs"));
        assert!(!may_read_wall_clock("crates/core/src/cluster.rs"));
        assert!(!may_read_wall_clock("crates/simkernel/src/time.rs"));
        assert!(!may_read_wall_clock("src/lib.rs"));
    }

    #[test]
    fn env_entry_points() {
        assert!(is_env_entry_point("crates/core/src/config.rs"));
        assert!(is_env_entry_point("crates/sim/src/report.rs"));
        assert!(is_env_entry_point("crates/sim/src/bin/scale.rs"));
        assert!(!is_env_entry_point("crates/core/src/cluster.rs"));
    }

    #[test]
    fn registered_sites() {
        assert!(is_registered_thread_site("crates/core/src/cluster.rs"));
        assert!(!is_registered_thread_site("crates/core/src/server.rs"));
    }
}
