//! `clash-lint` CLI: lint the workspace, print `path:line` diagnostics.
//!
//! Exit code 0 when the tree is clean, 1 when any diagnostic fires, 2 on
//! usage or I/O errors. With `--json`, the report goes to stdout and the
//! human summary to stderr, so CI can redirect the report to an artifact.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "clash-lint: determinism & concurrency static analysis for this workspace\n\
     \n\
     USAGE: cargo run -p clash-lint [-- OPTIONS]\n\
     \n\
     OPTIONS:\n\
       --json         emit a JSON report on stdout (summary on stderr)\n\
       --root <PATH>  workspace root to lint (default: this repo)\n\
       --list-rules   print the rule registry and exit\n\
       --help         this text\n\
     \n\
     Suppress a finding with `// clash-lint: allow(<rule>) -- <reason>` on\n\
     or directly above the offending line; the reason is mandatory."
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root: PathBuf = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("error: --root needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (id, summary) in clash_lint::RULES {
                    println!("{id:20} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let root = root.canonicalize().unwrap_or(root);
    let files = match clash_lint::workspace_files(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = clash_lint::run_files(&files);
    if json {
        print!(
            "{}",
            clash_lint::to_json(&root.display().to_string(), files.len(), &diags)
        );
        eprintln!(
            "clash-lint: {} diagnostic(s) in {} files",
            diags.len(),
            files.len()
        );
    } else {
        for d in &diags {
            println!("{}:{}: [{}] {}", d.path, d.line, d.rule, d.message);
        }
        println!(
            "clash-lint: {} diagnostic(s) in {} files",
            diags.len(),
            files.len()
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
