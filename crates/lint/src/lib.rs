//! `clash-lint`: determinism & concurrency static analysis for this repo.
//!
//! Every safety rail in the workspace — the shard-equivalence harness, the
//! transport pins, the `BENCH_scale.json` trajectory — rests on one
//! contract: protocol crates draw randomness only from `DetRng`
//! substreams, never read the wall clock or OS entropy, never iterate a
//! `RandomState`-hashed map, spawn threads only at the two registered
//! `std::thread::scope` sites, and read the process environment only in
//! config/report entry points. This crate makes that contract
//! machine-checked: a small comment/string-stripping Rust tokenizer, a
//! rule registry ([`rules::RULES`]), and per-crate path policies
//! ([`policy`]).
//!
//! Run it over the workspace with `cargo run -p clash-lint` (add `--json`
//! for machine-readable output). Suppress a finding with
//! `// clash-lint: allow(<rule>) -- <reason>` on or directly above the
//! offending line; the reason is mandatory.
//!
//! The checks are token-level by design (no type resolution, no new
//! dependencies): precise enough to catch every form the contract cares
//! about, simple enough to audit in one sitting. `clippy.toml`
//! `disallowed-methods`/`disallowed-types` back up the subset clippy can
//! express with a second, independent checker.

pub mod policy;
pub mod rules;
pub mod tokenizer;

pub use rules::{Diagnostic, RULES};

use std::fs;
use std::io;
use std::path::Path;

/// One source file to lint: a workspace-relative `/`-separated path plus
/// its text. Fixture tests construct these inline; the walker reads them
/// from disk.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub path: String,
    pub text: String,
}

impl SourceFile {
    pub fn new(path: &str, text: &str) -> Self {
        SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }
    }
}

/// Lints a set of in-memory files and returns sorted diagnostics.
pub fn run_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let lexed: Vec<(String, tokenizer::Lexed)> = files
        .iter()
        .map(|f| (f.path.clone(), tokenizer::lex(&f.text)))
        .collect();
    rules::run_lexed(&lexed)
}

/// The directories under the workspace root that are linted. `vendor/`
/// (third-party stand-ins) and `target/` are deliberately outside the
/// contract.
pub const LINT_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Collects every `.rs` file under the lint roots, sorted by path so runs
/// are deterministic.
pub fn workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for top in LINT_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("walked paths live under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile {
                path: rel,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}

/// Renders diagnostics as a stable JSON report (no dependencies, so the
/// serializer is hand-rolled; the shape is pinned by a unit test).
pub fn to_json(root: &str, files_scanned: usize, diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"root\": \"{}\",\n", escape(root)));
    s.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    s.push_str(&format!("  \"diagnostic_count\": {},\n", diags.len()));
    s.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(d.rule),
            escape(&d.path),
            d.line,
            escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let diags = vec![Diagnostic {
            path: "crates/core/src/x.rs".to_string(),
            line: 3,
            rule: rules::NO_WALL_CLOCK,
            message: "msg with \"quotes\"".to_string(),
        }];
        let j = to_json("/repo", 12, &diags);
        assert!(j.contains("\"files_scanned\": 12"));
        assert!(j.contains("\"diagnostic_count\": 1"));
        assert!(j.contains("\"rule\": \"no-wall-clock\""));
        assert!(j.contains("\\\"quotes\\\""));
    }

    #[test]
    fn empty_report_is_valid() {
        let j = to_json("/repo", 0, &[]);
        assert!(j.contains("\"diagnostics\": []"));
    }
}
