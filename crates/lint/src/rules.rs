//! The rule registry and the checkers themselves.
//!
//! Every rule works on the stripped token stream from [`crate::tokenizer`],
//! so comments, strings, and char literals can never trigger (or hide) a
//! finding. Diagnostics carry workspace-relative `path:line` positions and
//! can be suppressed by a `// clash-lint: allow(<rule>) -- <reason>`
//! directive on the same or the preceding line; a directive without a
//! written reason is rejected and suppresses nothing.

use crate::policy;
use crate::tokenizer::{Directive, Lexed, Token};
use std::collections::{BTreeMap, BTreeSet};

/// One finding, anchored to a workspace-relative `path:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

pub const NO_WALL_CLOCK: &str = "no-wall-clock";
pub const NO_AMBIENT_RNG: &str = "no-ambient-rng";
pub const DET_COLLECTIONS: &str = "det-collections";
pub const THREAD_CONTAINMENT: &str = "thread-containment";
pub const ENV_DISCIPLINE: &str = "env-discipline";
pub const EXHAUSTIVE_CHARGING: &str = "exhaustive-charging";
/// Meta-rule for malformed/reason-less/unused suppression directives.
pub const ALLOW_DIRECTIVE: &str = "allow-directive";

/// `(id, one-line summary)` for every rule, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        NO_WALL_CLOCK,
        "Instant/SystemTime only in registered wall-clock crates (sim, bench, lint, obs); \
         protocol time is virtual (SimTime)",
    ),
    (
        NO_AMBIENT_RNG,
        "thread_rng/from_entropy/rand::random/OsRng forbidden everywhere; draw from DetRng",
    ),
    (
        DET_COLLECTIONS,
        "default-hasher HashMap/HashSet forbidden in protocol crates; use DetBuildHasher or BTree*",
    ),
    (
        THREAD_CONTAINMENT,
        "std::thread / Mutex / RwLock / atomics only at registered sites",
    ),
    (
        ENV_DISCIPLINE,
        "std::env::var only in config.rs/report.rs entry points",
    ),
    (
        EXHAUSTIVE_CHARGING,
        "every MessageClass variant must be charged at a clash-core transport call site",
    ),
    (
        ALLOW_DIRECTIVE,
        "clash-lint allow directives must parse, carry a reason, and suppress something",
    ),
];

/// True if `id` names a suppressible rule (everything but the meta-rule).
fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id && *r != ALLOW_DIRECTIVE)
}

/// A lexed source file ready for rule checks.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub lexed: &'a Lexed,
}

fn tok_is(toks: &[Token], i: usize, text: &str) -> bool {
    toks.get(i).is_some_and(|t| t.text == text)
}

/// True if tokens starting at `i` match `pat` exactly.
fn seq(toks: &[Token], i: usize, pat: &[&str]) -> bool {
    pat.iter().enumerate().all(|(k, p)| tok_is(toks, i + k, p))
}

/// Counts top-level generic arguments of the list opened by the `<` at
/// `lt`. Returns `None` when the list does not terminate in bounds (then
/// the site is not treated as a type usage).
fn generic_args(toks: &[Token], lt: usize) -> Option<usize> {
    debug_assert!(tok_is(toks, lt, "<"));
    let mut depth = 1i32;
    let mut paren = 0i32;
    let mut brack = 0i32;
    let mut commas = 0usize;
    let limit = (lt + 512).min(toks.len());
    let mut j = lt + 1;
    while j < limit {
        let t = toks[j].text.as_str();
        let prev = toks[j - 1].text.as_str();
        match t {
            "<" => depth += 1,
            // `->` and `=>` end in `>` but close nothing.
            ">" if prev != "-" && prev != "=" => {
                depth -= 1;
                if depth == 0 {
                    return Some(commas + 1);
                }
            }
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => brack += 1,
            "]" => brack -= 1,
            "," if depth == 1 && paren == 0 && brack == 0 => commas += 1,
            // A statement boundary means this `<` was a comparison.
            ";" | "{" => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Per-file rules: appends raw (pre-suppression) diagnostics to `out`.
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let toks = &ctx.lexed.tokens;
    let path = ctx.path;
    let protocol = policy::is_protocol(path);
    let crate_src = policy::is_crate_source(path);
    let diag = |out: &mut Vec<Diagnostic>, rule: &'static str, line: u32, message: String| {
        out.push(Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i].text.as_str();
        let line = toks[i].line;
        match t {
            // ---- no-wall-clock -------------------------------------------
            // Allowlist, not protocol-list: any crate source outside the
            // registered wall-clock crates is held to virtual time, so a
            // new crate is covered the day it is added to the workspace.
            "Instant" | "SystemTime" if crate_src && !policy::may_read_wall_clock(path) => {
                diag(
                    out,
                    NO_WALL_CLOCK,
                    line,
                    format!(
                        "`{t}` reads the wall clock outside the registered wall-clock crates \
                         ({}); use virtual time (clash_simkernel::time) so same seed => \
                         identical RunResult",
                        policy::WALL_CLOCK_CRATES.join(", ")
                    ),
                );
            }
            // ---- no-ambient-rng (applies everywhere) ---------------------
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom" => {
                diag(
                    out,
                    NO_AMBIENT_RNG,
                    line,
                    format!(
                        "`{t}` draws OS entropy; all randomness must flow from DetRng substreams"
                    ),
                );
            }
            "rand" if seq(toks, i, &["rand", ":", ":", "random"]) => {
                diag(
                    out,
                    NO_AMBIENT_RNG,
                    line,
                    "`rand::random` draws from the ambient thread RNG; use DetRng".to_string(),
                );
                i += 4;
                continue;
            }
            // ---- det-collections -----------------------------------------
            "RandomState" if protocol => {
                diag(
                    out,
                    DET_COLLECTIONS,
                    line,
                    "`RandomState` seeds per-process hash order from OS entropy; \
                     use DetBuildHasher"
                        .to_string(),
                );
            }
            "HashMap" | "HashSet" if protocol => {
                let default_args = if t == "HashMap" { 2 } else { 1 };
                let hashed = t;
                let report = |out: &mut Vec<Diagnostic>| {
                    out.push(Diagnostic {
                        path: path.to_string(),
                        line,
                        rule: DET_COLLECTIONS,
                        message: format!(
                            "`{hashed}` with the default RandomState hasher iterates in \
                             per-process order; use a DetBuildHasher hasher or BTreeMap/BTreeSet"
                        ),
                    });
                };
                if tok_is(toks, i + 1, "<") {
                    if generic_args(toks, i + 1) == Some(default_args) {
                        report(out);
                    }
                } else if seq(toks, i + 1, &[":", ":"]) {
                    if tok_is(toks, i + 3, "<") {
                        if generic_args(toks, i + 3) == Some(default_args) {
                            report(out);
                        }
                    } else if tok_is(toks, i + 3, "new") || tok_is(toks, i + 3, "with_capacity") {
                        // `new`/`with_capacity` only exist for RandomState.
                        report(out);
                    }
                }
            }
            // ---- thread-containment --------------------------------------
            "std" if crate_src && seq(toks, i, &["std", ":", ":", "thread"]) => {
                if !policy::is_registered_thread_site(path) {
                    diag(
                        out,
                        THREAD_CONTAINMENT,
                        line,
                        "`std::thread` outside the registered fan-out sites \
                         (crates/core/src/cluster.rs, crates/sim/src/experiments/mod.rs)"
                            .to_string(),
                    );
                }
                i += 4;
                continue;
            }
            "thread"
                if crate_src
                    && !tok_is(toks, i.wrapping_sub(1), ":")
                    && (seq(toks, i, &["thread", ":", ":", "spawn"])
                        || seq(toks, i, &["thread", ":", ":", "scope"])) =>
            {
                if !policy::is_registered_thread_site(path) {
                    diag(
                        out,
                        THREAD_CONTAINMENT,
                        line,
                        format!(
                            "`thread::{}` outside the registered fan-out sites",
                            toks[i + 3].text
                        ),
                    );
                }
                i += 4;
                continue;
            }
            "Mutex" | "RwLock" | "Condvar" if crate_src => {
                diag(
                    out,
                    THREAD_CONTAINMENT,
                    line,
                    format!(
                        "`{t}` introduces schedule-dependent state; the sharded phases \
                         communicate only through MergeQueue"
                    ),
                );
            }
            "AtomicBool" | "AtomicU8" | "AtomicU16" | "AtomicU32" | "AtomicU64" | "AtomicUsize"
            | "AtomicI8" | "AtomicI16" | "AtomicI32" | "AtomicI64" | "AtomicIsize"
            | "AtomicPtr"
                if crate_src =>
            {
                diag(
                    out,
                    THREAD_CONTAINMENT,
                    line,
                    format!("`{t}` introduces schedule-dependent state; keep shared data frozen"),
                );
            }
            // ---- env-discipline ------------------------------------------
            "env"
                if crate_src
                    && !policy::is_env_entry_point(path)
                    && (seq(toks, i, &["env", ":", ":", "var"])
                        || seq(toks, i, &["env", ":", ":", "var_os"])
                        || seq(toks, i, &["env", ":", ":", "set_var"])
                        || seq(toks, i, &["env", ":", ":", "remove_var"])) =>
            {
                diag(
                    out,
                    ENV_DISCIPLINE,
                    line,
                    format!(
                        "`env::{}` outside a config.rs/report.rs/bin entry point; thread \
                         environment through ClashConfig so runs stay reproducible",
                        toks[i + 3].text
                    ),
                );
                i += 4;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
}

/// `exhaustive-charging`: every `MessageClass` variant must appear at a
/// charge site under `crates/core/src/`. Variants are read from the enum
/// definition in `crates/transport/src/lib.rs`; if that file is part of
/// the run but holds no such enum, that is itself a finding (the rule has
/// lost its anchor).
pub fn check_charging(files: &[(String, Lexed)], out: &mut Vec<Diagnostic>) {
    let Some((def_path, def_lexed)) = files
        .iter()
        .find(|(p, _)| p == policy::MESSAGE_CLASS_DEF)
        .map(|(p, l)| (p.as_str(), l))
    else {
        return; // fixture runs without the transport crate skip this rule
    };
    let variants = message_class_variants(&def_lexed.tokens);
    if variants.is_empty() {
        out.push(Diagnostic {
            path: def_path.to_string(),
            line: 1,
            rule: EXHAUSTIVE_CHARGING,
            message: "no `enum MessageClass` found; the exhaustive-charging rule lost its anchor"
                .to_string(),
        });
        return;
    }
    let mut charged: BTreeSet<String> = BTreeSet::new();
    for (path, lexed) in files {
        if !path.starts_with(policy::CHARGING_ROOT) {
            continue;
        }
        let toks = &lexed.tokens;
        for i in 0..toks.len() {
            if seq(toks, i, &["MessageClass", ":", ":"]) {
                if let Some(v) = toks.get(i + 3) {
                    charged.insert(v.text.clone());
                }
            }
        }
    }
    for (variant, line) in variants {
        if !charged.contains(&variant) {
            out.push(Diagnostic {
                path: def_path.to_string(),
                line,
                rule: EXHAUSTIVE_CHARGING,
                message: format!(
                    "`MessageClass::{variant}` is never charged in clash-core; new message \
                     types must go through transport_send so latency accounting stays honest"
                ),
            });
        }
    }
}

/// Extracts `(variant, line)` pairs from the first `enum MessageClass`
/// definition in the token stream. Only unit variants are expected.
fn message_class_variants(toks: &[Token]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if seq(toks, i, &["enum", "MessageClass", "{"]) {
            let mut depth = 1i32;
            let mut j = i + 3;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {
                        if depth == 1
                            && toks[j].text.chars().next().is_some_and(char::is_alphabetic)
                            && (tok_is(toks, j + 1, ",") || tok_is(toks, j + 1, "}"))
                        {
                            out.push((toks[j].text.clone(), toks[j].line));
                        }
                    }
                }
                j += 1;
            }
            break;
        }
    }
    out
}

/// Applies suppression directives to `raw` diagnostics for one file and
/// reports directive problems (malformed, missing reason, unknown rule,
/// unused) as `allow-directive` findings.
///
/// A directive suppresses a diagnostic when the diagnostic's rule is named
/// by the directive and sits on the directive's line or the line after —
/// but only if the directive carries a written reason.
pub fn apply_directives(
    path: &str,
    directives: &[Directive],
    raw: Vec<Diagnostic>,
    out: &mut Vec<Diagnostic>,
) {
    let mut used: Vec<bool> = vec![false; directives.len()];
    'diags: for d in raw {
        for (k, dir) in directives.iter().enumerate() {
            let effective = dir.malformed.is_none() && dir.reason.is_some();
            let covers_line = d.line == dir.line || d.line == dir.line + 1;
            if effective && covers_line && dir.rules.iter().any(|r| r == d.rule) {
                used[k] = true;
                continue 'diags;
            }
        }
        out.push(d);
    }
    for (k, dir) in directives.iter().enumerate() {
        let mut complaints: Vec<String> = Vec::new();
        if let Some(why) = &dir.malformed {
            complaints.push(why.clone());
        } else {
            for r in &dir.rules {
                if !is_known_rule(r) {
                    complaints.push(format!("unknown rule `{r}` in allow directive"));
                }
            }
            if dir.reason.is_none() {
                complaints.push(
                    "allow directive is missing a `-- <reason>`; suppression rejected".to_string(),
                );
            } else if !used[k] {
                complaints.push(format!(
                    "allow({}) suppresses nothing here; remove the stale directive",
                    dir.rules.join(", ")
                ));
            }
        }
        for message in complaints {
            out.push(Diagnostic {
                path: path.to_string(),
                line: dir.line,
                rule: ALLOW_DIRECTIVE,
                message,
            });
        }
    }
}

/// Runs every rule over the lexed files and returns sorted, suppressed
/// diagnostics. `files` must carry workspace-relative `/`-separated paths.
pub fn run_lexed(files: &[(String, Lexed)]) -> Vec<Diagnostic> {
    // Raw per-file diagnostics, grouped so directives apply per file.
    let mut by_file: BTreeMap<&str, Vec<Diagnostic>> = BTreeMap::new();
    for (path, lexed) in files {
        let ctx = FileCtx { path, lexed };
        let mut raw = Vec::new();
        check_file(&ctx, &mut raw);
        by_file.entry(path.as_str()).or_default().extend(raw);
    }
    let mut charging = Vec::new();
    check_charging(files, &mut charging);
    for d in charging {
        let slot = by_file
            .entry(
                files
                    .iter()
                    .find(|(p, _)| *p == d.path)
                    .map(|(p, _)| p.as_str())
                    .expect("charging diagnostics point at a lexed file"),
            )
            .or_default();
        slot.push(d);
    }
    let mut out = Vec::new();
    for (path, lexed) in files {
        let raw = by_file.remove(path.as_str()).unwrap_or_default();
        apply_directives(path, &lexed.directives, raw, &mut out);
    }
    out.sort();
    out
}
