//! Self-test: the committed workspace is clean under every rule.
//!
//! This is the enforcement backstop — `cargo test` fails the moment a
//! stray `HashMap::new()`, `Instant::now()`, ambient RNG draw, rogue
//! thread, or uncharged `MessageClass` variant lands in a protocol crate,
//! even if nobody runs the `clash-lint` binary or the CI job.

use std::path::Path;

#[test]
fn committed_workspace_is_clean() {
    let root = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    let files = clash_lint::workspace_files(root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "walker found only {} files; lint roots moved?",
        files.len()
    );
    // The rule anchors must actually be in the walked set, otherwise the
    // whole pass could be green by scanning nothing.
    for anchor in [
        "crates/transport/src/lib.rs",
        "crates/core/src/cluster.rs",
        "crates/simkernel/src/rng.rs",
    ] {
        assert!(
            files.iter().any(|f| f.path == anchor),
            "anchor file {anchor} missing from walk"
        );
    }
    let diags = clash_lint::run_files(&files);
    assert!(
        diags.is_empty(),
        "workspace has {} clash-lint diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| format!("  {}:{}: [{}] {}", d.path, d.line, d.rule, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
