//! Fixture-driven tests: inline source snippets asserting that each rule
//! fires where it must, stays quiet where it must, and that the
//! `clash-lint: allow` escape hatch suppresses only when it carries a
//! written reason.

use clash_lint::{run_files, Diagnostic, SourceFile};

/// Lints one in-memory file.
fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
    run_files(&[SourceFile::new(path, src)])
}

/// The rules that fired, in report order.
fn fired(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------- no-wall-clock

#[test]
fn wall_clock_fires_in_protocol_crate() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "fn t() { let t0 = std::time::Instant::now(); }",
    );
    assert_eq!(fired(&diags), vec!["no-wall-clock"]);
    assert_eq!(diags[0].line, 1);
}

#[test]
fn system_time_fires_in_protocol_crate() {
    let diags = lint_one(
        "crates/chord/src/net.rs",
        "use std::time::SystemTime;\nfn t() -> SystemTime { SystemTime::now() }",
    );
    assert!(diags.iter().all(|d| d.rule == "no-wall-clock"));
    assert_eq!(diags.len(), 3); // import + return type + call
    assert_eq!(diags[1].line, 2);
}

#[test]
fn wall_clock_allowed_in_sim_and_bench() {
    for path in ["crates/sim/src/driver.rs", "crates/bench/src/lib.rs"] {
        let diags = lint_one(path, "fn t() { let t0 = std::time::Instant::now(); }");
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn wall_clock_allowed_in_obs_and_lint() {
    // `obs` hosts the one profiling clock reader (WallProfiler); `lint`
    // times its own runs. Both are registered wall-clock crates.
    for path in ["crates/obs/src/profile.rs", "crates/lint/src/main.rs"] {
        let diags = lint_one(path, "fn t() { let t0 = std::time::Instant::now(); }");
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn wall_clock_fires_in_unregistered_crates_and_facade() {
    // The rule is an allowlist, not a protocol list: a future crate that
    // is neither protocol nor registered is covered from day one, and
    // the root facade stays on virtual time.
    for path in ["src/lib.rs", "crates/newthing/src/lib.rs"] {
        let diags = lint_one(path, "fn t() { let t0 = std::time::Instant::now(); }");
        assert_eq!(fired(&diags), vec!["no-wall-clock"], "{path}");
    }
}

#[test]
fn wall_clock_unchecked_in_root_tests() {
    // Root tests/ and examples/ are harness entry points, outside crate
    // sources: they may time themselves.
    let diags = lint_one(
        "tests/scale_perf.rs",
        "fn t() { let t0 = std::time::Instant::now(); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn sim_instant_ident_is_not_wall_clock() {
    let diags = lint_one(
        "crates/simkernel/src/time.rs",
        "pub struct SimInstant(u64); fn f(t: SimInstant) {}",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_in_comment_or_string_is_ignored() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// Instant::now would be wrong here\nfn f() { let s = \"SystemTime\"; }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_allow_with_reason_suppresses() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: allow(no-wall-clock) -- fixture exercising the escape hatch\n\
         fn t() { let t0 = std::time::Instant::now(); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_trailing_allow_suppresses() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "fn t() { let t0 = std::time::Instant::now(); } \
         // clash-lint: allow(no-wall-clock) -- same-line form",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn wall_clock_allow_without_reason_is_rejected() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: allow(no-wall-clock)\n\
         fn t() { let t0 = std::time::Instant::now(); }",
    );
    // The finding still fires AND the reason-less directive is reported.
    let rules = fired(&diags);
    assert!(rules.contains(&"no-wall-clock"), "{diags:?}");
    assert!(rules.contains(&"allow-directive"), "{diags:?}");
}

// -------------------------------------------------------------- no-ambient-rng

#[test]
fn ambient_rng_fires_everywhere() {
    for path in [
        "crates/core/src/cluster.rs",
        "crates/sim/src/driver.rs",
        "tests/shard_equivalence.rs",
        "examples/quickstart.rs",
    ] {
        let diags = lint_one(path, "fn f() { let mut r = rand::thread_rng(); }");
        assert_eq!(fired(&diags), vec!["no-ambient-rng"], "{path}");
    }
}

#[test]
fn from_entropy_and_rand_random_fire() {
    let diags = lint_one(
        "crates/workload/src/skew.rs",
        "fn f() { let r = SmallRng::from_entropy(); let x: u8 = rand::random(); }",
    );
    assert_eq!(fired(&diags), vec!["no-ambient-rng", "no-ambient-rng"]);
}

#[test]
fn det_rng_does_not_fire() {
    let diags = lint_one(
        "crates/workload/src/skew.rs",
        "fn f() { let mut r = DetRng::new(7); let x = r.uniform_f64(); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn ambient_rng_allow_with_reason_suppresses() {
    let diags = lint_one(
        "crates/sim/src/driver.rs",
        "fn f() { let r = rand::thread_rng(); } // clash-lint: allow(no-ambient-rng) -- fixture",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------- det-collections

#[test]
fn default_hasher_map_type_fires() {
    let diags = lint_one(
        "crates/core/src/table.rs",
        "struct S { m: std::collections::HashMap<u64, String> }",
    );
    assert_eq!(fired(&diags), vec!["det-collections"]);
}

#[test]
fn default_hasher_constructors_fire() {
    let diags = lint_one(
        "crates/keyspace/src/prefix.rs",
        "fn f() { let m = HashMap::new(); let s = HashSet::with_capacity(4); }",
    );
    assert_eq!(fired(&diags), vec!["det-collections", "det-collections"]);
}

#[test]
fn det_build_hasher_map_is_clean() {
    let diags = lint_one(
        "crates/transport/src/link.rs",
        "struct S { links: HashMap<(u64, u64), LinkState, DetBuildHasher> }\n\
         fn f() -> HashSet<u64, DetBuildHasher> { HashSet::default() }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn btree_collections_are_clean() {
    let diags = lint_one(
        "crates/core/src/table.rs",
        "use std::collections::{BTreeMap, BTreeSet};\nstruct S { m: BTreeMap<u64, u64> }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hash_collections_fine_outside_protocol_crates() {
    let diags = lint_one(
        "crates/sim/src/report.rs",
        "fn f() { let m: std::collections::HashMap<u64, u64> = HashMap::new(); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn random_state_fires() {
    let diags = lint_one(
        "crates/core/src/table.rs",
        "use std::collections::hash_map::RandomState;",
    );
    assert_eq!(fired(&diags), vec!["det-collections"]);
}

#[test]
fn turbofish_default_hasher_fires() {
    let diags = lint_one(
        "crates/core/src/table.rs",
        "fn f() { let m = HashMap::<u64, u64>::default(); }",
    );
    assert_eq!(fired(&diags), vec!["det-collections"]);
}

#[test]
fn det_collections_allow_with_reason_suppresses() {
    let diags = lint_one(
        "crates/core/src/table.rs",
        "// clash-lint: allow(det-collections) -- fixture\nfn f() { let m = HashMap::new(); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------- thread-containment

#[test]
fn thread_fires_outside_registered_sites() {
    let diags = lint_one(
        "crates/core/src/server.rs",
        "fn f() { std::thread::spawn(|| {}); }",
    );
    assert_eq!(fired(&diags), vec!["thread-containment"]);
}

#[test]
fn thread_scope_ok_at_registered_sites() {
    for path in [
        "crates/core/src/cluster.rs",
        "crates/sim/src/experiments/mod.rs",
    ] {
        let diags = lint_one(path, "fn f() { std::thread::scope(|s| {}); }");
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn locks_and_atomics_fire_even_at_registered_sites() {
    let diags = lint_one(
        "crates/core/src/cluster.rs",
        "use std::sync::Mutex;\nstatic N: std::sync::atomic::AtomicU64 = AtomicU64::new(0);",
    );
    let rules = fired(&diags);
    assert!(
        rules.iter().all(|r| *r == "thread-containment"),
        "{diags:?}"
    );
    assert_eq!(rules.len(), 3); // Mutex + 2× AtomicU64
}

#[test]
fn rwlock_fires_in_harness_crates_too() {
    let diags = lint_one(
        "crates/sim/src/driver.rs",
        "struct S { inner: std::sync::RwLock<u64> }",
    );
    assert_eq!(fired(&diags), vec!["thread-containment"]);
}

#[test]
fn threads_unchecked_in_root_tests() {
    let diags = lint_one(
        "tests/shard_equivalence.rs",
        "fn f() { std::thread::scope(|s| {}); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn thread_allow_with_reason_suppresses() {
    let diags = lint_one(
        "crates/core/src/server.rs",
        "// clash-lint: allow(thread-containment) -- fixture\nfn f() { std::thread::spawn(|| {}); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// -------------------------------------------------------------- env-discipline

#[test]
fn env_var_fires_outside_entry_points() {
    let diags = lint_one(
        "crates/core/src/cluster.rs",
        "fn f() { let v = std::env::var(\"CLASH_X\"); }",
    );
    assert_eq!(fired(&diags), vec!["env-discipline"]);
}

#[test]
fn env_var_ok_in_entry_points() {
    for path in [
        "crates/core/src/config.rs",
        "crates/sim/src/report.rs",
        "crates/sim/src/bin/scale.rs",
    ] {
        let diags = lint_one(path, "fn f() { let v = std::env::var(\"CLASH_X\"); }");
        assert!(diags.is_empty(), "{path}: {diags:?}");
    }
}

#[test]
fn env_var_fires_in_obs() {
    // `obs` may read the wall clock, but it gets no env-var privileges:
    // telemetry must stay flag-driven like everything else.
    let diags = lint_one(
        "crates/obs/src/telemetry.rs",
        "fn f() { let v = std::env::var(\"CLASH_TRACE\"); }",
    );
    assert_eq!(fired(&diags), vec!["env-discipline"]);
}

#[test]
fn env_args_is_not_env_var() {
    let diags = lint_one(
        "crates/sim/src/driver.rs",
        "fn f() { let a: Vec<String> = std::env::args().collect(); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn env_set_var_fires_in_library_code() {
    let diags = lint_one(
        "crates/workload/src/churn.rs",
        "fn f() { std::env::set_var(\"CLASH_X\", \"1\"); }",
    );
    assert_eq!(fired(&diags), vec!["env-discipline"]);
}

#[test]
fn env_allow_with_reason_suppresses() {
    let diags = lint_one(
        "crates/core/src/cluster.rs",
        "fn f() { let v = std::env::var(\"X\"); } // clash-lint: allow(env-discipline) -- fixture",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// --------------------------------------------------------- exhaustive-charging

/// A minimal transport lib defining two variants.
const MINI_TRANSPORT: &str = "pub enum MessageClass {\n    Probe,\n    Handoff,\n}\n";

#[test]
fn uncharged_variant_fires_at_its_definition_line() {
    let diags = run_files(&[
        SourceFile::new("crates/transport/src/lib.rs", MINI_TRANSPORT),
        SourceFile::new(
            "crates/core/src/cluster.rs",
            "fn f(t: &mut T) { t.send(1, 2, MessageClass::Probe); }",
        ),
    ]);
    assert_eq!(fired(&diags), vec!["exhaustive-charging"]);
    assert_eq!(diags[0].path, "crates/transport/src/lib.rs");
    assert_eq!(diags[0].line, 3); // Handoff's line
    assert!(diags[0].message.contains("Handoff"), "{diags:?}");
}

#[test]
fn fully_charged_enum_is_clean() {
    let diags = run_files(&[
        SourceFile::new("crates/transport/src/lib.rs", MINI_TRANSPORT),
        SourceFile::new(
            "crates/core/src/cluster.rs",
            "fn f(t: &mut T) {\n\
             t.send(1, 2, MessageClass::Probe);\n\
             t.send(1, 2, MessageClass::Handoff);\n}",
        ),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn charging_in_transport_itself_does_not_count() {
    // Mentions inside the defining crate (index tables, unit tests) must
    // not satisfy the rule — only clash-core charge sites do.
    let diags = run_files(&[SourceFile::new(
        "crates/transport/src/lib.rs",
        "pub enum MessageClass { Probe }\nfn f() { let c = MessageClass::Probe; }",
    )]);
    assert_eq!(fired(&diags), vec!["exhaustive-charging"]);
}

#[test]
fn missing_enum_in_transport_is_itself_a_finding() {
    let diags = run_files(&[SourceFile::new(
        "crates/transport/src/lib.rs",
        "pub struct NotAnEnum;",
    )]);
    assert_eq!(fired(&diags), vec!["exhaustive-charging"]);
    assert!(diags[0].message.contains("anchor"), "{diags:?}");
}

#[test]
fn charging_rule_skipped_without_transport_file() {
    let diags = lint_one("crates/core/src/cluster.rs", "fn f() {}");
    assert!(diags.is_empty(), "{diags:?}");
}

// ------------------------------------------------------------- allow-directive

#[test]
fn unknown_rule_in_allow_is_reported() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: allow(no-such-rule) -- oops\nfn f() {}",
    );
    assert_eq!(fired(&diags), vec!["allow-directive", "allow-directive"]);
    assert!(diags.iter().any(|d| d.message.contains("unknown rule")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("suppresses nothing")));
}

#[test]
fn unused_allow_is_reported() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: allow(no-wall-clock) -- stale\nfn f() {}",
    );
    assert_eq!(fired(&diags), vec!["allow-directive"]);
    assert!(diags[0].message.contains("suppresses nothing"));
}

#[test]
fn malformed_directive_is_reported() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: disable(no-wall-clock) -- wrong verb\nfn f() {}",
    );
    assert_eq!(fired(&diags), vec!["allow-directive"]);
}

#[test]
fn multi_rule_allow_suppresses_both() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: allow(no-wall-clock, det-collections) -- fixture\n\
         fn f() { let t = std::time::Instant::now(); let m = HashMap::new(); }",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allow_does_not_reach_past_next_line() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: allow(no-wall-clock) -- only covers the next line\n\
         fn a() { let t = std::time::Instant::now(); }\n\
         fn b() { let t = std::time::Instant::now(); }",
    );
    assert_eq!(fired(&diags), vec!["no-wall-clock"]);
    assert_eq!(diags[0].line, 3);
}

#[test]
fn allow_for_wrong_rule_does_not_suppress() {
    let diags = lint_one(
        "crates/core/src/load.rs",
        "// clash-lint: allow(det-collections) -- wrong rule named\n\
         fn f() { let t = std::time::Instant::now(); }",
    );
    let rules = fired(&diags);
    assert!(rules.contains(&"no-wall-clock"), "{diags:?}");
    assert!(rules.contains(&"allow-directive"), "{diags:?}"); // unused
}
