//! The fault-event vocabulary for adversarial scenarios.
//!
//! ROADMAP item 5 asks for an adversarial scenario matrix — cascading
//! correlated failures, partition storms, flash crowds against one
//! prefix. This module names the fault shapes; the `clash-chaos` crate
//! composes them into seed-derived schedules, injects them through the
//! cluster harness, and shrinks failing schedules to minimal repros.
//!
//! Events carry raw numbers only (victim counts, permille rates, prefix
//! bits) — no cluster references — so a schedule is trivially
//! serializable and replayable: [`FaultKind::params`] /
//! [`FaultKind::from_parts`] give a lossless name + numeric-field
//! round trip that the chaos repro files are built on.

/// One fault (or breathing step) of a chaos schedule.
///
/// The numeric fields are *budgets*, not absolute ids: "crash 3
/// servers" rather than "crash servers {4, 9, 11}". Which concrete
/// victims, islands, or keys an event resolves to is derived
/// deterministically from the schedule seed at injection time, so the
/// same schedule replays identically and a shrunk schedule stays
/// meaningful after earlier events are removed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash `victims` servers picked independently at random — the
    /// uncorrelated burst the availability experiment already sweeps.
    CrashBurst {
        /// Servers to crash.
        victims: u32,
    },
    /// Crash one random victim *and* its `span - 1` ring successors —
    /// the correlated failure that lands squarely on the victim's
    /// successor-list replica set (the hardest case for recovery).
    RingCorrelatedCrash {
        /// Total servers crashed (victim + successors).
        span: u32,
    },
    /// Sever the network into `islands` random islands. Stacks with
    /// later partitions (each re-severs from the current membership):
    /// a sequence of these is a rolling partition storm.
    PartitionStorm {
        /// Island count (≥ 2 to actually cut anything).
        islands: u32,
    },
    /// `cycles` rapid sever/heal cycles ending healed — link flapping.
    /// Each cycle cuts a fresh random bisection and heals it
    /// immediately, racing the retry/deferral machinery.
    LinkFlap {
        /// Sever/heal cycles.
        cycles: u32,
    },
    /// Gray failure: degrade every link's policy in place — add
    /// `drop_permille`/1000 transmission loss and `extra_latency_ms`
    /// of constant extra delay on top of the baseline policy. The
    /// links stay up; everything just gets slow and lossy.
    GrayDegrade {
        /// Added per-transmission drop probability, in permille (capped
        /// below 1000 by the injector).
        drop_permille: u32,
        /// Added constant per-message latency, in milliseconds.
        extra_latency_ms: u32,
    },
    /// Restore the baseline link policy (ends a gray failure).
    GrayRecover,
    /// A churn avalanche: `joins` joins and `leaves` graceful leaves,
    /// interleaved.
    ChurnAvalanche {
        /// Servers joining.
        joins: u32,
        /// Servers draining and leaving.
        leaves: u32,
    },
    /// A flash crowd: `sources` new sources attach under the single
    /// key prefix `(prefix_bits, prefix_depth)` — concentrated load
    /// against one subtree.
    FlashCrowd {
        /// Left-aligned prefix bit pattern (raw, width-agnostic).
        prefix_bits: u64,
        /// Prefix depth the bits are meaningful to.
        prefix_depth: u32,
        /// Sources attached under the prefix.
        sources: u32,
    },
    /// A source exodus: `sources` random attached sources detach — the
    /// flash crowd dissipating. Load drops, which is what drives merges
    /// (the fault surface split/merge re-replication bugs live on).
    SourceExodus {
        /// Sources detached.
        sources: u32,
    },
    /// Heal any active partition.
    Heal,
    /// Run `count` load checks — the breathing room between faults,
    /// and the convergence window after the last one.
    LoadChecks {
        /// Load checks to run.
        count: u32,
    },
}

impl FaultKind {
    /// Stable class label, used in campaign report tables and as the
    /// event name in serialized schedules.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::CrashBurst { .. } => "crash_burst",
            FaultKind::RingCorrelatedCrash { .. } => "ring_correlated_crash",
            FaultKind::PartitionStorm { .. } => "partition_storm",
            FaultKind::LinkFlap { .. } => "link_flap",
            FaultKind::GrayDegrade { .. } => "gray_degrade",
            FaultKind::GrayRecover => "gray_recover",
            FaultKind::ChurnAvalanche { .. } => "churn_avalanche",
            FaultKind::FlashCrowd { .. } => "flash_crowd",
            FaultKind::SourceExodus { .. } => "source_exodus",
            FaultKind::Heal => "heal",
            FaultKind::LoadChecks { .. } => "load_checks",
        }
    }

    /// All class labels, in [`FaultKind::class_index`] order — the
    /// campaign report's per-class fault accounting rows.
    pub const CLASS_LABELS: [&'static str; 11] = [
        "crash_burst",
        "ring_correlated_crash",
        "partition_storm",
        "link_flap",
        "gray_degrade",
        "gray_recover",
        "churn_avalanche",
        "flash_crowd",
        "source_exodus",
        "heal",
        "load_checks",
    ];

    /// Stable index into per-class accounting arrays.
    #[must_use]
    pub fn class_index(self) -> usize {
        match self {
            FaultKind::CrashBurst { .. } => 0,
            FaultKind::RingCorrelatedCrash { .. } => 1,
            FaultKind::PartitionStorm { .. } => 2,
            FaultKind::LinkFlap { .. } => 3,
            FaultKind::GrayDegrade { .. } => 4,
            FaultKind::GrayRecover => 5,
            FaultKind::ChurnAvalanche { .. } => 6,
            FaultKind::FlashCrowd { .. } => 7,
            FaultKind::SourceExodus { .. } => 8,
            FaultKind::Heal => 9,
            FaultKind::LoadChecks { .. } => 10,
        }
    }

    /// True for the events that inject an actual fault (the campaign
    /// report's "faults injected" count excludes breathing steps).
    #[must_use]
    pub fn is_fault(self) -> bool {
        !matches!(
            self,
            FaultKind::GrayRecover | FaultKind::Heal | FaultKind::LoadChecks { .. }
        )
    }

    /// The event's numeric payload as stable `(name, value)` pairs —
    /// with [`FaultKind::label`], a lossless wire form.
    #[must_use]
    pub fn params(self) -> Vec<(&'static str, u64)> {
        match self {
            FaultKind::CrashBurst { victims } => vec![("victims", u64::from(victims))],
            FaultKind::RingCorrelatedCrash { span } => vec![("span", u64::from(span))],
            FaultKind::PartitionStorm { islands } => vec![("islands", u64::from(islands))],
            FaultKind::LinkFlap { cycles } => vec![("cycles", u64::from(cycles))],
            FaultKind::GrayDegrade {
                drop_permille,
                extra_latency_ms,
            } => vec![
                ("drop_permille", u64::from(drop_permille)),
                ("extra_latency_ms", u64::from(extra_latency_ms)),
            ],
            FaultKind::GrayRecover | FaultKind::Heal => vec![],
            FaultKind::ChurnAvalanche { joins, leaves } => {
                vec![("joins", u64::from(joins)), ("leaves", u64::from(leaves))]
            }
            FaultKind::FlashCrowd {
                prefix_bits,
                prefix_depth,
                sources,
            } => vec![
                ("prefix_bits", prefix_bits),
                ("prefix_depth", u64::from(prefix_depth)),
                ("sources", u64::from(sources)),
            ],
            FaultKind::SourceExodus { sources } => vec![("sources", u64::from(sources))],
            FaultKind::LoadChecks { count } => vec![("count", u64::from(count))],
        }
    }

    /// Rebuilds an event from its [`FaultKind::label`] and
    /// [`FaultKind::params`] pairs (order-insensitive). `None` for an
    /// unknown label or missing field — the schedule parser surfaces
    /// that as a malformed-repro error.
    #[must_use]
    pub fn from_parts(label: &str, params: &[(String, u64)]) -> Option<FaultKind> {
        let get = |name: &str| params.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
        let get32 = |name: &str| get(name).map(|v| v as u32);
        Some(match label {
            "crash_burst" => FaultKind::CrashBurst {
                victims: get32("victims")?,
            },
            "ring_correlated_crash" => FaultKind::RingCorrelatedCrash {
                span: get32("span")?,
            },
            "partition_storm" => FaultKind::PartitionStorm {
                islands: get32("islands")?,
            },
            "link_flap" => FaultKind::LinkFlap {
                cycles: get32("cycles")?,
            },
            "gray_degrade" => FaultKind::GrayDegrade {
                drop_permille: get32("drop_permille")?,
                extra_latency_ms: get32("extra_latency_ms")?,
            },
            "gray_recover" => FaultKind::GrayRecover,
            "churn_avalanche" => FaultKind::ChurnAvalanche {
                joins: get32("joins")?,
                leaves: get32("leaves")?,
            },
            "flash_crowd" => FaultKind::FlashCrowd {
                prefix_bits: get("prefix_bits")?,
                prefix_depth: get32("prefix_depth")?,
                sources: get32("sources")?,
            },
            "source_exodus" => FaultKind::SourceExodus {
                sources: get32("sources")?,
            },
            "heal" => FaultKind::Heal,
            "load_checks" => FaultKind::LoadChecks {
                count: get32("count")?,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_kind() -> Vec<FaultKind> {
        vec![
            FaultKind::CrashBurst { victims: 3 },
            FaultKind::RingCorrelatedCrash { span: 4 },
            FaultKind::PartitionStorm { islands: 3 },
            FaultKind::LinkFlap { cycles: 5 },
            FaultKind::GrayDegrade {
                drop_permille: 250,
                extra_latency_ms: 40,
            },
            FaultKind::GrayRecover,
            FaultKind::ChurnAvalanche {
                joins: 2,
                leaves: 3,
            },
            FaultKind::FlashCrowd {
                prefix_bits: 0b1011 << 60,
                prefix_depth: 4,
                sources: 500,
            },
            FaultKind::SourceExodus { sources: 200 },
            FaultKind::Heal,
            FaultKind::LoadChecks { count: 2 },
        ]
    }

    #[test]
    fn labels_are_distinct_and_indexed() {
        let kinds = every_kind();
        assert_eq!(kinds.len(), FaultKind::CLASS_LABELS.len());
        let mut seen = [false; FaultKind::CLASS_LABELS.len()];
        for k in kinds {
            let i = k.class_index();
            assert!(!seen[i], "duplicate class index for {}", k.label());
            seen[i] = true;
            assert_eq!(FaultKind::CLASS_LABELS[i], k.label());
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn params_round_trip_losslessly() {
        for kind in every_kind() {
            let owned: Vec<(String, u64)> = kind
                .params()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect();
            assert_eq!(
                FaultKind::from_parts(kind.label(), &owned),
                Some(kind),
                "{} must round-trip",
                kind.label()
            );
        }
        assert_eq!(FaultKind::from_parts("no_such_fault", &[]), None);
        assert_eq!(
            FaultKind::from_parts("crash_burst", &[]),
            None,
            "missing field is malformed, not defaulted"
        );
    }

    #[test]
    fn breathing_steps_are_not_faults() {
        for kind in every_kind() {
            let breathing = matches!(
                kind,
                FaultKind::GrayRecover | FaultKind::Heal | FaultKind::LoadChecks { .. }
            );
            assert_eq!(kind.is_fault(), !breathing, "{}", kind.label());
        }
    }
}
