//! End-to-end scenario descriptions for the figure experiments.

use clash_simkernel::time::SimDuration;

use crate::churn::ChurnSpec;
use crate::skew::WorkloadKind;

/// One phase of a scenario: a workload played for a duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// The workload in force.
    pub workload: WorkloadKind,
    /// How long it runs.
    pub duration: SimDuration,
}

/// A complete experiment scenario (§6.1 of the paper).
///
/// # Example
///
/// ```
/// use clash_workload::scenario::ScenarioSpec;
///
/// let paper = ScenarioSpec::paper();
/// assert_eq!(paper.servers, 1000);
/// assert_eq!(paper.sources, 100_000);
/// assert_eq!(paper.phases.len(), 3);
///
/// // Tests run a scaled-down copy with the same shape.
/// let small = paper.scaled(0.01);
/// assert_eq!(small.servers, 10);
/// assert_eq!(small.sources, 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Number of servers in the ring (paper: 1000).
    pub servers: usize,
    /// Number of streaming sources (paper: 100,000 client nodes).
    pub sources: usize,
    /// Number of query clients (paper: 0 in case A of Figure 5, 50,000 in
    /// case B).
    pub query_clients: usize,
    /// The workload phases in order (paper: A, B, C × 2 hours each).
    pub phases: Vec<Phase>,
    /// Mean virtual-stream length in packets (`Ld`, paper: 1000).
    pub mean_stream_packets: f64,
    /// Mean query-client lifetime (`Lq`, paper: 30 min).
    pub mean_query_lifetime: SimDuration,
    /// Load check period (paper: 5 min).
    pub load_check_period: SimDuration,
    /// Metric sampling period for the Figure 4 time series.
    pub sample_period: SimDuration,
    /// Root random seed.
    pub seed: u64,
    /// Optional membership churn layered over the run (paper: none —
    /// membership is fixed during the evaluation).
    pub churn: Option<ChurnSpec>,
}

impl ScenarioSpec {
    /// The paper's full-scale 6-hour scenario (§6.1).
    pub fn paper() -> Self {
        let two_hours = SimDuration::from_hours(2);
        ScenarioSpec {
            servers: 1000,
            sources: 100_000,
            query_clients: 0,
            phases: vec![
                Phase {
                    workload: WorkloadKind::A,
                    duration: two_hours,
                },
                Phase {
                    workload: WorkloadKind::B,
                    duration: two_hours,
                },
                Phase {
                    workload: WorkloadKind::C,
                    duration: two_hours,
                },
            ],
            mean_stream_packets: 1000.0,
            mean_query_lifetime: SimDuration::from_mins(30),
            load_check_period: SimDuration::from_mins(5),
            sample_period: SimDuration::from_mins(5),
            seed: 0xC1A5_2004,
            churn: None,
        }
    }

    /// A copy with client and server populations scaled by `factor`
    /// (phases and time constants unchanged). Populations are kept at
    /// least 1.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0,1], got {factor}"
        );
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        ScenarioSpec {
            servers: scale(self.servers),
            sources: scale(self.sources),
            query_clients: if self.query_clients == 0 {
                0
            } else {
                scale(self.query_clients)
            },
            ..self.clone()
        }
    }

    /// A copy with every phase shortened to `duration` (for fast tests).
    pub fn with_phase_duration(&self, duration: SimDuration) -> Self {
        ScenarioSpec {
            phases: self
                .phases
                .iter()
                .map(|p| Phase {
                    workload: p.workload,
                    duration,
                })
                .collect(),
            ..self.clone()
        }
    }

    /// A copy with `n` query clients (Figure 5 case B uses 50,000).
    pub fn with_query_clients(&self, n: usize) -> Self {
        ScenarioSpec {
            query_clients: n,
            ..self.clone()
        }
    }

    /// A copy with a different mean virtual-stream length (Figure 5
    /// sweeps `Ld ∈ {50, 1000}`).
    pub fn with_stream_packets(&self, packets: f64) -> Self {
        ScenarioSpec {
            mean_stream_packets: packets,
            ..self.clone()
        }
    }

    /// A copy with a membership-churn schedule layered over the run.
    pub fn with_churn(&self, churn: ChurnSpec) -> Self {
        ScenarioSpec {
            churn: Some(churn),
            ..self.clone()
        }
    }

    /// Total scenario duration.
    pub fn total_duration(&self) -> SimDuration {
        self.phases
            .iter()
            .fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// The workload in force at `elapsed` time into the scenario (the
    /// last phase persists past the nominal end).
    pub fn workload_at(&self, elapsed: SimDuration) -> WorkloadKind {
        let mut t = SimDuration::ZERO;
        for phase in &self.phases {
            t += phase.duration;
            if elapsed < t {
                return phase.workload;
            }
        }
        self.phases
            .last()
            .map(|p| p.workload)
            .unwrap_or(WorkloadKind::A)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shape() {
        let s = ScenarioSpec::paper();
        assert_eq!(s.total_duration(), SimDuration::from_hours(6));
        assert_eq!(s.workload_at(SimDuration::from_mins(30)), WorkloadKind::A);
        assert_eq!(s.workload_at(SimDuration::from_hours(3)), WorkloadKind::B);
        assert_eq!(s.workload_at(SimDuration::from_hours(5)), WorkloadKind::C);
        // Past the end: last phase persists.
        assert_eq!(s.workload_at(SimDuration::from_hours(9)), WorkloadKind::C);
    }

    #[test]
    fn scaling_preserves_shape() {
        let s = ScenarioSpec::paper().with_query_clients(50_000).scaled(0.1);
        assert_eq!(s.servers, 100);
        assert_eq!(s.sources, 10_000);
        assert_eq!(s.query_clients, 5_000);
        assert_eq!(s.phases.len(), 3);
        assert_eq!(s.mean_stream_packets, 1000.0);
    }

    #[test]
    fn zero_query_clients_stay_zero_under_scaling() {
        let s = ScenarioSpec::paper().scaled(0.001);
        assert_eq!(s.query_clients, 0);
        assert_eq!(s.servers, 1);
    }

    #[test]
    fn phase_duration_override() {
        let s = ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(10));
        assert_eq!(s.total_duration(), SimDuration::from_mins(30));
    }

    #[test]
    fn stream_packets_override() {
        let s = ScenarioSpec::paper().with_stream_packets(50.0);
        assert_eq!(s.mean_stream_packets, 50.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn bad_scale_rejected() {
        ScenarioSpec::paper().scaled(0.0);
    }

    #[test]
    fn churn_rides_through_scaling() {
        let churn = ChurnSpec::sustained(
            SimDuration::from_mins(10),
            SimDuration::from_mins(12),
            4,
            64,
        );
        let s = ScenarioSpec::paper().with_churn(churn).scaled(0.1);
        assert_eq!(s.churn, Some(churn));
        assert_eq!(ScenarioSpec::paper().churn, None);
    }
}
