//! The Figure 3 key-frequency distributions.
//!
//! Keys are composed of an `X`-bit base portion drawn from a skewed
//! distribution over `2^X` values plus a uniform remainder (§6.1,
//! X = 8). The three workloads differ only in the base distribution:
//! A ≈ uniform, B = two moderate Gaussian bumps, C = one narrow dominant
//! spike over a small floor.

use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;
use clash_simkernel::dist::DiscreteDist;
use clash_simkernel::rng::DetRng;

/// Which of the paper's three workloads (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Almost uniform; 1 pkt/s per source.
    A,
    /// Moderately skewed; 2 pkt/s per source.
    B,
    /// Highly skewed; 2 pkt/s per source.
    C,
}

impl WorkloadKind {
    /// All three workloads in the order the 6-hour scenario plays them.
    pub const ALL: [WorkloadKind; 3] = [WorkloadKind::A, WorkloadKind::B, WorkloadKind::C];

    /// Per-source data rate in packets/sec (§6.1).
    pub fn source_rate(self) -> f64 {
        match self {
            WorkloadKind::A => 1.0,
            WorkloadKind::B | WorkloadKind::C => 2.0,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::A => "A",
            WorkloadKind::B => "B",
            WorkloadKind::C => "C",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A key-generating workload: skewed base bits plus uniform remainder.
///
/// # Example
///
/// ```
/// use clash_keyspace::key::KeyWidth;
/// use clash_simkernel::rng::DetRng;
/// use clash_workload::skew::{Workload, WorkloadKind};
///
/// let w = Workload::paper(WorkloadKind::C);
/// let mut rng = DetRng::new(1);
/// let key = w.sample_key(KeyWidth::PAPER, &mut rng);
/// assert_eq!(key.width(), KeyWidth::PAPER);
/// // Workload C concentrates most of its mass near the spike.
/// assert!(w.mass_of_base(w.spike_center()) > 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    kind: WorkloadKind,
    base_bits: u32,
    weights: Vec<f64>,
    dist: DiscreteDist,
    spike_center: usize,
}

impl Workload {
    /// The paper's calibration of each workload over an 8-bit base.
    pub fn paper(kind: WorkloadKind) -> Self {
        Workload::with_base_bits(kind, 8)
    }

    /// A workload over a `base_bits`-bit base portion (tests use smaller
    /// bases).
    ///
    /// # Panics
    ///
    /// Panics if `base_bits` is 0 or above 16.
    pub fn with_base_bits(kind: WorkloadKind, base_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&base_bits),
            "base bits must be in 1..=16, got {base_bits}"
        );
        let n = 1usize << base_bits;
        let center = n / 2;
        let scale = n as f64 / 256.0; // keep shapes comparable across bases
        let gaussian = |v: usize, c: f64, sigma: f64, amp: f64| -> f64 {
            let d = v as f64 - c;
            amp * (-d * d / (2.0 * sigma * sigma)).exp()
        };
        let weights: Vec<f64> = (0..n)
            .map(|v| match kind {
                // A: uniform with a light deterministic ripple (the paper's
                // Figure 3 shows A as noisy-flat).
                WorkloadKind::A => 1.0 + 0.1 * ((v as f64) * 0.7).sin(),
                // B: two moderate bumps at 5/16 and 11/16 of the range.
                WorkloadKind::B => {
                    1.0 + gaussian(v, n as f64 * 5.0 / 16.0, 12.0 * scale, 6.0)
                        + gaussian(v, n as f64 * 11.0 / 16.0, 10.0 * scale, 4.0)
                }
                // C: one narrow dominant spike over a small floor,
                // calibrated so the hottest DHT(6) bucket holds ≈ 30% of
                // the total mass (→ the paper's ~25× capacity peak).
                WorkloadKind::C => 0.5 + gaussian(v, center as f64, 1.5 * scale, 55.0),
            })
            .collect();
        let dist = DiscreteDist::new(&weights);
        Workload {
            kind,
            base_bits,
            weights,
            dist,
            spike_center: center,
        }
    }

    /// Which workload this is.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Number of base bits (X).
    pub fn base_bits(&self) -> u32 {
        self.base_bits
    }

    /// The index of workload C's spike center (meaningful for C; the
    /// midpoint otherwise).
    pub fn spike_center(&self) -> usize {
        self.spike_center
    }

    /// The raw per-base-value weights (the Figure 3 series, up to
    /// normalization).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Probability mass of base value `v`.
    pub fn mass_of_base(&self, v: usize) -> f64 {
        self.dist.mass(v)
    }

    /// Samples a full key: skewed base bits in the most significant
    /// positions, uniform remainder below.
    ///
    /// # Panics
    ///
    /// Panics if the key width is smaller than the base width.
    pub fn sample_key(&self, width: KeyWidth, rng: &mut DetRng) -> Key {
        assert!(
            width.get() >= self.base_bits,
            "key width {width} below base bits {}",
            self.base_bits
        );
        let base = self.dist.sample(rng) as u64;
        let rest_bits = width.get() - self.base_bits;
        let rest = if rest_bits == 0 {
            0
        } else {
            rng.next_u64() & ((1u64 << rest_bits) - 1)
        };
        Key::from_bits_truncated((base << rest_bits) | rest, width)
    }

    /// Expected fraction of the total data rate landing in a key group —
    /// the analytic ground truth for calibration tests.
    pub fn mass_of_prefix(&self, prefix: Prefix) -> f64 {
        let width = prefix.width().get();
        let rest_bits = width - self.base_bits;
        if prefix.depth() <= self.base_bits {
            // The group spans whole base values.
            let span = 1usize << (self.base_bits - prefix.depth());
            let start = (prefix.pattern() as usize) << (self.base_bits - prefix.depth());
            (start..start + span).map(|v| self.dist.mass(v)).sum()
        } else {
            // The group is a fraction of one base value; the remainder is
            // uniform.
            let base = (prefix.pattern() >> (prefix.depth() - self.base_bits)) as usize;
            let extra = prefix.depth() - self.base_bits;
            debug_assert!(extra <= rest_bits);
            self.dist.mass(base) / (1u64 << extra) as f64
        }
    }

    /// The Figure 3 table: `(base value, expected packets/sec)` given a
    /// source population and per-source rate.
    pub fn figure3_series(&self, sources: usize, rate: f64) -> Vec<(usize, f64)> {
        let total = sources as f64 * rate;
        (0..self.weights.len())
            .map(|v| (v, total * self.dist.mass(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xF163)
    }

    #[test]
    fn masses_sum_to_one() {
        for kind in WorkloadKind::ALL {
            let w = Workload::paper(kind);
            let total: f64 = (0..256).map(|v| w.mass_of_base(v)).sum();
            assert!((total - 1.0).abs() < 1e-9, "workload {kind}: {total}");
        }
    }

    #[test]
    fn skew_ordering_a_less_than_b_less_than_c() {
        // Max base-value mass strictly increases with skew.
        let max_mass = |kind| {
            let w = Workload::paper(kind);
            (0..256).map(|v| w.mass_of_base(v)).fold(0.0, f64::max)
        };
        let (a, b, c) = (
            max_mass(WorkloadKind::A),
            max_mass(WorkloadKind::B),
            max_mass(WorkloadKind::C),
        );
        assert!(a < b && b < c, "a={a} b={b} c={c}");
        // A is near uniform.
        assert!(a < 1.5 / 256.0);
    }

    #[test]
    fn workload_c_spike_calibration() {
        // The hottest depth-6 group (4 adjacent base values) must hold
        // roughly 30% of the mass — the DHT(6) ≈ 25× capacity target.
        let w = Workload::paper(WorkloadKind::C);
        let hottest: f64 = (0..64)
            .map(|g| {
                let p = Prefix::new(g, 6, KeyWidth::PAPER).unwrap();
                w.mass_of_prefix(p)
            })
            .fold(0.0, f64::max);
        assert!(
            (0.2..0.45).contains(&hottest),
            "hottest depth-6 group mass {hottest}"
        );
    }

    #[test]
    fn source_rates_match_paper() {
        assert_eq!(WorkloadKind::A.source_rate(), 1.0);
        assert_eq!(WorkloadKind::B.source_rate(), 2.0);
        assert_eq!(WorkloadKind::C.source_rate(), 2.0);
    }

    #[test]
    fn sampling_matches_masses() {
        let w = Workload::paper(WorkloadKind::C);
        let mut r = rng();
        let n = 200_000;
        let mut spike_hits = 0;
        let spike = w.spike_center();
        for _ in 0..n {
            let key = w.sample_key(KeyWidth::PAPER, &mut r);
            let base = (key.bits() >> 16) as usize;
            if (base as i64 - spike as i64).abs() <= 3 {
                spike_hits += 1;
            }
        }
        let expected: f64 = ((spike - 3)..=(spike + 3)).map(|v| w.mass_of_base(v)).sum();
        let got = spike_hits as f64 / n as f64;
        assert!(
            (got - expected).abs() < 0.01,
            "spike mass: got {got}, expected {expected}"
        );
    }

    #[test]
    fn mass_of_prefix_consistency() {
        // Sum over any uniform partition equals 1, at depths above and
        // below the base width.
        let w = Workload::paper(WorkloadKind::B);
        for depth in [2u32, 6, 8, 10] {
            let total: f64 = (0..(1u64 << depth))
                .map(|g| {
                    let p = Prefix::new(g, depth, KeyWidth::PAPER).unwrap();
                    w.mass_of_prefix(p)
                })
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "depth {depth}: {total}");
        }
    }

    #[test]
    fn mass_of_prefix_splits_evenly_below_base() {
        let w = Workload::paper(WorkloadKind::A);
        let parent = Prefix::new(128, 8, KeyWidth::PAPER).unwrap();
        let (l, r) = parent.split().unwrap();
        assert!((w.mass_of_prefix(l) - w.mass_of_prefix(parent) / 2.0).abs() < 1e-12);
        assert!((w.mass_of_prefix(l) - w.mass_of_prefix(r)).abs() < 1e-12);
    }

    #[test]
    fn figure3_series_scales_with_population() {
        let w = Workload::paper(WorkloadKind::A);
        let series = w.figure3_series(100_000, 1.0);
        assert_eq!(series.len(), 256);
        let total: f64 = series.iter().map(|&(_, pkts)| pkts).sum();
        assert!((total - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn small_base_workloads_for_tests() {
        let w = Workload::with_base_bits(WorkloadKind::C, 4);
        let total: f64 = (0..16).map(|v| w.mass_of_base(v)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mut r = rng();
        let key = w.sample_key(KeyWidth::new(8).unwrap(), &mut r);
        assert_eq!(key.width().get(), 8);
    }

    #[test]
    #[should_panic(expected = "base bits")]
    fn zero_base_bits_rejected() {
        Workload::with_base_bits(WorkloadKind::A, 0);
    }
}
