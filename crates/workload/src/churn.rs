//! Membership-churn schedules for the live-membership experiments.
//!
//! The paper fixes server membership for its evaluation (§6.1); the
//! churn experiment layers continuous arrivals and departures — the
//! "utility" elasticity story — on top of a [`crate::scenario::ScenarioSpec`].
//! A schedule combines sustained Poisson join/leave/crash processes with
//! an optional *flash crowd*: a burst of joins ramping capacity up over a
//! short window.

use clash_simkernel::time::SimDuration;

/// A burst of server joins ramping capacity up over a window (the
/// flash-crowd case: a provider reacts to a demand spike by adding
/// machines back-to-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCrowd {
    /// When the ramp starts, relative to scenario start.
    pub at: SimDuration,
    /// How many servers join during the ramp.
    pub joins: usize,
    /// Spacing between consecutive ramp joins.
    pub spacing: SimDuration,
}

/// A membership-churn schedule layered over a scenario.
///
/// Intervals are means of exponential inter-event times, drawn from a
/// dedicated RNG substream so enabling churn never perturbs the
/// workload's own draws.
///
/// # Example
///
/// ```
/// use clash_simkernel::time::SimDuration;
/// use clash_workload::churn::ChurnSpec;
///
/// let churn = ChurnSpec::sustained(
///     SimDuration::from_mins(10),
///     SimDuration::from_mins(12),
///     8,
///     64,
/// );
/// assert!(churn.mean_join_interval.is_some());
/// assert!(churn.flash_crowd.is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Mean interval between server joins; `None` disables joins.
    pub mean_join_interval: Option<SimDuration>,
    /// Mean interval between graceful leaves; `None` disables leaves.
    pub mean_leave_interval: Option<SimDuration>,
    /// Mean interval between crash failures; `None` disables crashes.
    pub mean_crash_interval: Option<SimDuration>,
    /// Mean interval between *correlated crash bursts* — a random server
    /// and its ring successors fail simultaneously (the rack-failure
    /// case successor-list replication is measured against); `None`
    /// disables bursts.
    pub mean_burst_interval: Option<SimDuration>,
    /// Servers taken out by each burst (the victim plus `burst_size - 1`
    /// of its ring successors). Ignored without a burst interval.
    pub burst_size: usize,
    /// Optional flash-crowd ramp on top of the sustained schedule.
    pub flash_crowd: Option<FlashCrowd>,
    /// Leaves and crashes never shrink the cluster below this.
    pub min_servers: usize,
    /// Joins never grow the cluster beyond this.
    pub max_servers: usize,
}

impl ChurnSpec {
    /// Sustained join/leave churn (no crashes, no flash crowd) bounded to
    /// `[min_servers, max_servers]`.
    pub fn sustained(
        mean_join_interval: SimDuration,
        mean_leave_interval: SimDuration,
        min_servers: usize,
        max_servers: usize,
    ) -> Self {
        ChurnSpec {
            mean_join_interval: Some(mean_join_interval),
            mean_leave_interval: Some(mean_leave_interval),
            mean_crash_interval: None,
            mean_burst_interval: None,
            burst_size: 2,
            flash_crowd: None,
            min_servers,
            max_servers,
        }
    }

    /// A pure flash-crowd ramp: no sustained churn, `joins` servers added
    /// every `spacing` starting at `at`.
    pub fn flash_crowd(at: SimDuration, joins: usize, spacing: SimDuration) -> Self {
        ChurnSpec {
            mean_join_interval: None,
            mean_leave_interval: None,
            mean_crash_interval: None,
            mean_burst_interval: None,
            burst_size: 2,
            flash_crowd: Some(FlashCrowd { at, joins, spacing }),
            min_servers: 1,
            max_servers: usize::MAX,
        }
    }

    /// Adds a mean crash interval to the schedule.
    pub fn with_crashes(self, mean_crash_interval: SimDuration) -> Self {
        ChurnSpec {
            mean_crash_interval: Some(mean_crash_interval),
            ..self
        }
    }

    /// Adds correlated crash bursts: every ~`mean_burst_interval`, a
    /// random server and `burst_size - 1` of its ring successors fail
    /// *simultaneously*.
    ///
    /// # Panics
    ///
    /// Panics if `burst_size` is zero.
    pub fn with_crash_bursts(self, mean_burst_interval: SimDuration, burst_size: usize) -> Self {
        assert!(burst_size > 0, "a crash burst needs at least one victim");
        ChurnSpec {
            mean_burst_interval: Some(mean_burst_interval),
            burst_size,
            ..self
        }
    }

    /// True if the schedule can ever fire a membership event.
    pub fn is_active(&self) -> bool {
        self.mean_join_interval.is_some()
            || self.mean_leave_interval.is_some()
            || self.mean_crash_interval.is_some()
            || self.mean_burst_interval.is_some()
            || self.flash_crowd.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_schedule_shape() {
        let c = ChurnSpec::sustained(
            SimDuration::from_mins(10),
            SimDuration::from_mins(12),
            4,
            32,
        );
        assert!(c.is_active());
        assert_eq!(c.mean_join_interval, Some(SimDuration::from_mins(10)));
        assert_eq!(c.mean_crash_interval, None);
        assert_eq!((c.min_servers, c.max_servers), (4, 32));
        let with_crashes = c.with_crashes(SimDuration::from_mins(45));
        assert_eq!(
            with_crashes.mean_crash_interval,
            Some(SimDuration::from_mins(45))
        );
    }

    #[test]
    fn flash_crowd_schedule_shape() {
        let c = ChurnSpec::flash_crowd(SimDuration::from_mins(20), 10, SimDuration::from_secs(30));
        assert!(c.is_active());
        let f = c.flash_crowd.unwrap();
        assert_eq!(f.joins, 10);
        assert_eq!(f.at, SimDuration::from_mins(20));
        assert!(c.mean_join_interval.is_none());
    }

    #[test]
    fn empty_schedule_is_inactive() {
        let c = ChurnSpec {
            mean_join_interval: None,
            mean_leave_interval: None,
            mean_crash_interval: None,
            mean_burst_interval: None,
            burst_size: 2,
            flash_crowd: None,
            min_servers: 1,
            max_servers: 1,
        };
        assert!(!c.is_active());
    }

    #[test]
    fn crash_bursts_activate_the_schedule() {
        let base = ChurnSpec {
            mean_join_interval: None,
            mean_leave_interval: None,
            mean_crash_interval: None,
            mean_burst_interval: None,
            burst_size: 2,
            flash_crowd: None,
            min_servers: 4,
            max_servers: 32,
        };
        let c = base.with_crash_bursts(SimDuration::from_mins(30), 3);
        assert!(c.is_active());
        assert_eq!(c.burst_size, 3);
        assert_eq!(c.mean_burst_interval, Some(SimDuration::from_mins(30)));
    }
}
