//! Stochastic client models: streaming data sources and query clients.

use clash_simkernel::dist::Exponential;
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::SimDuration;

/// The data-source model of §6: constant-rate packet streams whose key
/// changes every `Ld` packets ("virtual streams"), with `Ld` exponential.
///
/// # Example
///
/// ```
/// use clash_simkernel::rng::DetRng;
/// use clash_workload::source::SourceModel;
///
/// let model = SourceModel::new(2.0, 1000.0); // 2 pkt/s, mean Ld = 1000
/// let mut rng = DetRng::new(3);
/// let d = model.sample_stream_duration(&mut rng);
/// assert!(d.as_secs_f64() > 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SourceModel {
    rate: f64,
    stream_len: Exponential,
}

impl SourceModel {
    /// Creates a model with the given packet rate and mean virtual-stream
    /// length in packets.
    ///
    /// # Panics
    ///
    /// Panics if `rate` or `mean_stream_packets` is not positive.
    pub fn new(rate: f64, mean_stream_packets: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        SourceModel {
            rate,
            stream_len: Exponential::with_mean(mean_stream_packets),
        }
    }

    /// Packets per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean virtual-stream length in packets.
    pub fn mean_stream_packets(&self) -> f64 {
        self.stream_len.mean()
    }

    /// Draws the duration of the next virtual stream: `Ld / rate`
    /// seconds, with `Ld ~ Exp(mean)`. At least one packet's worth of
    /// time, so the event loop always advances.
    pub fn sample_stream_duration(&self, rng: &mut DetRng) -> SimDuration {
        let packets = self.stream_len.sample(rng).max(1.0);
        SimDuration::from_secs_f64(packets / self.rate)
    }
}

/// The query-client model of §6.1: clients register a continuous query
/// and expire after an exponential lifetime (`Lq`, mean 30 min).
#[derive(Debug, Clone, Copy)]
pub struct QueryClientModel {
    lifetime: Exponential,
}

impl QueryClientModel {
    /// Creates a model with the given mean lifetime.
    pub fn new(mean_lifetime: SimDuration) -> Self {
        QueryClientModel {
            lifetime: Exponential::with_mean(mean_lifetime.as_secs_f64()),
        }
    }

    /// The paper's calibration: mean 30 minutes.
    pub fn paper() -> Self {
        QueryClientModel::new(SimDuration::from_mins(30))
    }

    /// Mean lifetime.
    pub fn mean_lifetime(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.lifetime.mean())
    }

    /// Draws one client lifetime (at least one second).
    pub fn sample_lifetime(&self, rng: &mut DetRng) -> SimDuration {
        SimDuration::from_secs_f64(self.lifetime.sample(rng).max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_duration_mean_is_ld_over_rate() {
        let model = SourceModel::new(2.0, 1000.0);
        let mut rng = DetRng::new(1);
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| model.sample_stream_duration(&mut rng).as_secs_f64())
            .sum();
        let mean = sum / n as f64;
        // 1000 packets at 2/s = 500 s.
        assert!((mean - 500.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn stream_duration_is_positive() {
        let model = SourceModel::new(1.0, 50.0);
        let mut rng = DetRng::new(2);
        assert!((0..1000).all(|_| !model.sample_stream_duration(&mut rng).is_zero()));
    }

    #[test]
    fn lifetime_mean_matches() {
        let model = QueryClientModel::paper();
        assert_eq!(model.mean_lifetime(), SimDuration::from_mins(30));
        let mut rng = DetRng::new(3);
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| model.sample_lifetime(&mut rng).as_secs_f64())
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 1800.0).abs() < 50.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        SourceModel::new(0.0, 10.0);
    }
}
