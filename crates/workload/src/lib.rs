//! Workload generation for the CLASH experiments.
//!
//! The paper's evaluation (§6.1) drives the system with synthetic
//! workloads over an N = 24-bit key split into an 8-bit *base* portion —
//! drawn from one of three skewed distributions (Figure 3) — and a
//! uniform 16-bit remainder:
//!
//! * **Workload A** — almost uniform, sources stream at 1 pkt/s;
//! * **Workload B** — moderately skewed, 2 pkt/s;
//! * **Workload C** — highly skewed (one dominant spike), 2 pkt/s.
//!
//! Sources change keys every `Ld` packets (exponential, mean 1000) —
//! the "virtual stream" model — and query clients live for an
//! exponential `Lq` (mean 30 min).
//!
//! This crate provides the distributions ([`skew`]), the per-client
//! stochastic models ([`source`]), and the end-to-end scenario
//! descriptions ([`scenario`]) consumed by the `clash-sim` experiment
//! drivers. The absolute calibration constants (spike masses, bump
//! widths) are documented in `DESIGN.md` §5; they are chosen so the
//! non-adaptive `DHT(6)` baseline peaks near the paper's ~25× capacity
//! under workload C.
//!
//! # Quick start
//!
//! ```
//! use clash_keyspace::key::KeyWidth;
//! use clash_simkernel::rng::DetRng;
//! use clash_workload::{Workload, WorkloadKind};
//!
//! // Workload C: one dominant spike. Draws are deterministic per seed.
//! let workload = Workload::paper(WorkloadKind::C);
//! let mut rng = DetRng::new(42);
//! let key = workload.sample_key(KeyWidth::PAPER, &mut rng);
//! assert_eq!(key.width(), KeyWidth::PAPER);
//!
//! // The skewed base distribution concentrates mass near its spike.
//! let spike = workload.spike_center();
//! assert!(workload.mass_of_base(spike) > 0.1);
//! ```

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// lock that in — determinism reasoning assumes no aliasing backdoors.
#![forbid(unsafe_code)]
pub mod churn;
pub mod fault;
pub mod scenario;
pub mod skew;
pub mod source;

pub use churn::{ChurnSpec, FlashCrowd};
pub use fault::FaultKind;
pub use scenario::{Phase, ScenarioSpec};
pub use skew::{Workload, WorkloadKind};
pub use source::{QueryClientModel, SourceModel};
