//! Property tests for the workload generators.

use clash_keyspace::key::KeyWidth;
use clash_keyspace::prefix::Prefix;
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::SimDuration;
use clash_workload::scenario::ScenarioSpec;
use clash_workload::skew::{Workload, WorkloadKind};
use proptest::prelude::*;

fn kind_from(i: u8) -> WorkloadKind {
    WorkloadKind::ALL[(i % 3) as usize]
}

proptest! {
    /// mass_of_prefix is additive under splitting at every depth.
    #[test]
    fn prefix_mass_is_additive(kind in 0u8..3, depth in 0u32..12, pattern_seed in any::<u64>()) {
        let w = Workload::paper(kind_from(kind));
        let width = KeyWidth::PAPER;
        let pattern = if depth == 0 { 0 } else { pattern_seed & ((1u64 << depth) - 1) };
        let prefix = Prefix::new(pattern, depth, width).unwrap();
        let (l, r) = prefix.split().unwrap();
        let whole = w.mass_of_prefix(prefix);
        let parts = w.mass_of_prefix(l) + w.mass_of_prefix(r);
        prop_assert!((whole - parts).abs() < 1e-12, "whole {whole} vs parts {parts}");
    }

    /// Sampled keys always land in prefixes proportionally to their mass
    /// (coarse statistical check on a random depth-4 group).
    #[test]
    fn sampling_respects_prefix_mass(kind in 0u8..3, pattern in 0u64..16, seed in 0u64..100) {
        let w = Workload::paper(kind_from(kind));
        let width = KeyWidth::PAPER;
        let prefix = Prefix::new(pattern, 4, width).unwrap();
        let expected = w.mass_of_prefix(prefix);
        let mut rng = DetRng::new(seed);
        let n = 30_000;
        let hits = (0..n)
            .filter(|_| prefix.contains(w.sample_key(width, &mut rng)))
            .count();
        let got = hits as f64 / n as f64;
        // Tolerance: 4 sigma of a binomial at the observed mass.
        let sigma = (expected * (1.0 - expected) / n as f64).sqrt();
        prop_assert!(
            (got - expected).abs() < 4.0 * sigma + 0.003,
            "prefix {prefix}: got {got}, expected {expected}"
        );
    }

    /// Scenario scaling is monotone and preserves totals proportionally.
    #[test]
    fn scenario_scaling_is_monotone(f1 in 0.01f64..1.0, f2 in 0.01f64..1.0) {
        let base = ScenarioSpec::paper().with_query_clients(50_000);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let a = base.scaled(lo);
        let b = base.scaled(hi);
        prop_assert!(a.servers <= b.servers);
        prop_assert!(a.sources <= b.sources);
        prop_assert!(a.query_clients <= b.query_clients);
        prop_assert_eq!(a.total_duration(), b.total_duration());
    }

    /// workload_at covers the whole timeline without gaps.
    #[test]
    fn workload_at_total_coverage(minutes in 0u64..500) {
        let spec = ScenarioSpec::paper();
        let t = SimDuration::from_mins(minutes);
        let kind = spec.workload_at(t);
        // Within the nominal 6 hours the phase boundaries are exact.
        if minutes < 120 {
            prop_assert_eq!(kind, WorkloadKind::A);
        } else if minutes < 240 {
            prop_assert_eq!(kind, WorkloadKind::B);
        } else {
            prop_assert_eq!(kind, WorkloadKind::C);
        }
    }
}
