//! ASCII-table and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders a boxed ASCII table.
///
/// # Example
///
/// ```
/// use clash_sim::report::ascii_table;
///
/// let t = ascii_table(
///     &["workload", "max load %"],
///     &[vec!["A".into(), "71.2".into()], vec!["C".into(), "88.9".into()]],
/// );
/// assert!(t.contains("workload"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn ascii_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let mut out = String::new();
    let render_row = |cells: &[String], out: &mut String| {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            let _ = write!(out, " {cell:>w$} |", w = w);
        }
        out.push('\n');
    };
    out.push_str(&sep);
    out.push('\n');
    render_row(
        &headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>(),
        &mut out,
    );
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        render_row(row, &mut out);
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Writes a CSV file (simple quoting: fields containing commas or quotes
/// are double-quoted).
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    fn field(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, out)
}

/// Renders multiple time series as a coarse ASCII line chart (one symbol
/// per series; log-ish vertical packing is left to the caller's choice of
/// `height`).
///
/// # Example
///
/// ```
/// use clash_sim::report::ascii_chart;
///
/// let chart = ascii_chart(
///     &[("A", &[1.0, 2.0, 3.0][..]), ("B", &[3.0, 2.0, 1.0][..])],
///     8,
/// );
/// assert!(chart.contains("* = A"));
/// assert!(chart.contains("# = B"));
/// ```
pub fn ascii_chart(series: &[(&str, &[f64])], height: usize) -> String {
    let width = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    if width == 0 || height == 0 {
        return String::new();
    }
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let symbols = ['*', '#', '+', 'o', 'x', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        let sym = symbols[si % symbols.len()];
        for (x, &v) in values.iter().enumerate() {
            let level = ((v / max) * (height - 1) as f64).round() as usize;
            let y = height - 1 - level.min(height - 1);
            grid[y][x] = sym;
        }
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max:>9.0} |")
        } else if i == height - 1 {
            format!("{:>9.0} |", 0.0)
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} = {name}", symbols[i % symbols.len()]))
        .collect();
    out.push_str(&format!("{:>11}{}\n", "", legend.join("   ")));
    out
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Parses `--key value` style flags from `std::env::args`-like input.
/// Returns the value following the flag, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Reads `--scale` (default 1.0), validating the range `(0, 1]`.
pub fn scale_arg(args: &[String]) -> f64 {
    let scale = flag_value(args, "--scale")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0);
    assert!(
        scale > 0.0 && scale <= 1.0,
        "--scale must be in (0, 1], got {scale}"
    );
    scale
}

/// Reads `--out` (default `results/`).
pub fn out_dir_arg(args: &[String]) -> String {
    flag_value(args, "--out").unwrap_or_else(|| "results".to_owned())
}

/// Reads `--trace <path>`: when present, the experiment runs with the
/// flight recorder in full-export mode and writes a Perfetto-loadable
/// Chrome trace to the path afterwards.
pub fn trace_arg(args: &[String]) -> Option<String> {
    flag_value(args, "--trace")
}

/// The [`clash_obs::TraceMode`] a `--trace` flag implies: full export
/// when the flag is present, off otherwise.
#[must_use]
pub fn trace_mode(trace_path: Option<&String>) -> clash_obs::TraceMode {
    if trace_path.is_some() {
        clash_obs::TraceMode::Full
    } else {
        clash_obs::TraceMode::Off
    }
}

/// Writes `events` to `path` as a Chrome trace and reports where it
/// went on stderr (experiment bins keep stdout for the tables).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace(path: &str, events: &[clash_obs::TraceEvent]) -> io::Result<()> {
    clash_obs::write_chrome_trace(path, events)?;
    eprintln!("wrote {} trace events to {path}", events.len());
    Ok(())
}

/// Reads `--seed` as a root random seed (decimal or `0x`-prefixed hex).
/// `None` means the experiment keeps its hard-coded default seed, so runs
/// without the flag reproduce historical outputs exactly.
///
/// # Panics
///
/// Panics if the flag is present but unparsable (silently falling back to
/// the default would corrupt a seed sweep).
pub fn seed_arg(args: &[String]) -> Option<u64> {
    flag_value(args, "--seed").map(|s| {
        let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        parsed.unwrap_or_else(|_| panic!("--seed must be a u64 (decimal or 0x hex), got {s:?}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = ascii_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 6);
        // All lines are equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(t.contains("long-name"));
    }

    #[test]
    fn table_handles_short_rows() {
        let t = ascii_table(&["a", "b"], &[vec!["x".into()]]);
        assert!(t.contains('x'));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let dir = std::env::temp_dir().join("clash_csv_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["k", "v"],
            &[vec!["a,b".into(), "say \"hi\"".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"a,b\""));
        assert!(content.contains("\"say \"\"hi\"\"\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--scale", "0.5", "--out", "x"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(scale_arg(&args), 0.5);
        assert_eq!(out_dir_arg(&args), "x");
        assert_eq!(scale_arg(&[]), 1.0);
        assert_eq!(out_dir_arg(&[]), "results");
    }

    #[test]
    fn seed_parsing() {
        let args: Vec<String> = ["--seed", "42"].iter().map(|s| (*s).to_owned()).collect();
        assert_eq!(seed_arg(&args), Some(42));
        let hex: Vec<String> = ["--seed", "0xC1A5"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        assert_eq!(seed_arg(&hex), Some(0xC1A5));
        assert_eq!(seed_arg(&[]), None);
    }

    #[test]
    #[should_panic(expected = "--seed must be a u64")]
    fn bad_seed_panics() {
        let args: Vec<String> = ["--seed", "banana"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        seed_arg(&args);
    }

    #[test]
    #[should_panic(expected = "--scale must be in")]
    fn bad_scale_panics() {
        let args: Vec<String> = ["--scale", "2.0"].iter().map(|s| (*s).to_owned()).collect();
        scale_arg(&args);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.255), "1.25"); // bankers-ish rounding is fine
    }

    #[test]
    fn chart_renders_extremes() {
        let chart = ascii_chart(&[("up", &[0.0, 50.0, 100.0][..])], 5);
        let lines: Vec<&str> = chart.lines().collect();
        // Max label on top row, zero at the bottom, legend last.
        assert!(lines[0].starts_with("      100 |"));
        assert!(
            lines[0].ends_with('*'),
            "peak in the top row: {:?}",
            lines[0]
        );
        assert!(lines[4].contains('*'), "zero in the bottom row");
        assert!(chart.contains("* = up"));
    }

    #[test]
    fn chart_handles_empty_input() {
        assert_eq!(ascii_chart(&[], 5), "");
        assert_eq!(ascii_chart(&[("x", &[][..])], 5), "");
    }
}
