//! Full-system CLASH simulator and figure-regeneration harness.
//!
//! This crate wires everything together — the CLASH protocol
//! ([`clash_core`]), the Chord substrate ([`clash_chord`]), the workload
//! generators ([`clash_workload`]) and the discrete-event kernel
//! ([`clash_simkernel`]) — into the experiment drivers that regenerate
//! every figure of the paper's evaluation (§6):
//!
//! | figure | binary | module |
//! |---|---|---|
//! | Fig. 1 (splitting tree example) | `fig1_tree_demo` | [`experiments::demos`] |
//! | Fig. 2 (server work table) | `fig2_server_table` | [`experiments::demos`] |
//! | Fig. 3 (workload skews) | `fig3_workloads` | [`experiments::fig3`] |
//! | Fig. 4 (load, utilization, depth, servers) | `fig4_load` | [`experiments::fig4`] |
//! | Fig. 5 (communication overhead) | `fig5_overhead` | [`experiments::fig5`] |
//! | §5 claim (depth search < log₂ N) | `depth_convergence` | [`experiments::depth_conv`] |
//! | §7 claim (~80% fewer servers) | `servers_saved` | [`experiments::servers_saved`] |
//! | design-choice ablations | `ablation` | [`experiments::ablation`] |
//! | live membership under churn | `churn` | [`experiments::churn`] |
//! | latency / loss / partitions | `netfault` | [`experiments::netfault`] |
//! | crash recovery vs replication factor | `availability` | [`experiments::availability`] |
//! | mechanical cost to 10× the paper's ring | `scale` | [`experiments::scale`] |
//!
//! The central type is [`driver::SimDriver`]: it plays a
//! [`clash_workload::scenario::ScenarioSpec`] against a
//! [`clash_core::cluster::ClashCluster`] under simulated time, recording
//! the Figure 4 time series and the Figure 5 message rates.
//!
//! # Example
//!
//! ```
//! use clash_core::config::ClashConfig;
//! use clash_sim::driver::SimDriver;
//! use clash_simkernel::time::SimDuration;
//! use clash_workload::scenario::ScenarioSpec;
//!
//! // A 1%-scale copy of the paper's scenario with 3-minute phases.
//! let spec = ScenarioSpec::paper()
//!     .scaled(0.01)
//!     .with_phase_duration(SimDuration::from_mins(3));
//! let result = SimDriver::new(ClashConfig::paper(), spec)?.run()?;
//! assert!(!result.samples.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod driver;
pub mod experiments;
pub mod report;

pub use driver::{RecoveryTotals, RunResult, SampleRow, SimDriver};
