//! The event-driven scenario runner.
//!
//! Per `DESIGN.md` §2, per-packet work is aggregated analytically: a
//! source contributes its rate to its current key group between key
//! changes, which is exact for the paper's constant-rate sources. The
//! discrete events are therefore only:
//!
//! * **key changes** (end of a virtual stream, mean every `Ld` packets),
//! * **query client deaths** (with immediate renewal, keeping the
//!   population constant),
//! * **load checks** (every 5 minutes, §6.1) and metric samples.
//!
//! This reduces a 6-hour, 100k-client, 200k-pkt/s run from billions of
//! packet events to a few million — while producing the identical load
//! series a per-packet simulation would sample.

use clash_core::cluster::{ClashCluster, FailureReport, MessageStats};
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_core::ServerId;
use clash_obs::{PhaseProfile, Telemetry, WallProfiler};
use clash_simkernel::dist::Exponential;
use clash_simkernel::event::EventQueue;
use clash_simkernel::metrics::Histogram;
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::{SimDuration, SimTime};
use clash_transport::Transport;
use clash_workload::churn::ChurnSpec;
use clash_workload::scenario::ScenarioSpec;
use clash_workload::skew::{Workload, WorkloadKind};
use clash_workload::source::{QueryClientModel, SourceModel};

/// One metric sample (a row of the Figure 4 panels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRow {
    /// Sample time in hours (the paper's x-axis).
    pub time_hours: f64,
    /// Workload in force.
    pub workload: WorkloadKind,
    /// Maximum server load, % of capacity.
    pub max_load_pct: f64,
    /// Mean load over *active* servers, % of capacity.
    pub avg_active_load_pct: f64,
    /// Servers with load ≥ 1% of capacity.
    pub active_servers: usize,
    /// Minimum active-group depth.
    pub depth_min: u32,
    /// Mean active-group depth.
    pub depth_avg: f64,
    /// Maximum active-group depth.
    pub depth_max: u32,
    /// Control messages/sec/server in the last window (Figure 5 case A),
    /// charging full DHT routing cost per probe.
    pub ctrl_msgs_per_sec_per_server: f64,
    /// Protocol-only control messages/sec/server (DHT routing treated as
    /// substrate cost — the paper's most plausible accounting).
    pub proto_msgs_per_sec_per_server: f64,
    /// All messages/sec/server including state transfer (case B).
    pub total_msgs_per_sec_per_server: f64,
    /// Servers in the ring at sample time (varies only under churn).
    pub server_count: usize,
    /// Membership handoff messages/sec/server in the last window (0
    /// without churn).
    pub handoff_msgs_per_sec_per_server: f64,
    /// Median end-to-end locate latency in the last window, virtual ms
    /// (0 with the instant transport or when the window had no locates).
    pub locate_p50_ms: f64,
    /// 95th-percentile locate latency in the last window, virtual ms.
    pub locate_p95_ms: f64,
    /// 99th-percentile locate latency in the last window, virtual ms.
    pub locate_p99_ms: f64,
}

/// Per-phase aggregates (the paper reports per-workload numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSummary {
    /// The workload.
    pub workload: WorkloadKind,
    /// Peak of the max-load series in this phase, % of capacity.
    pub peak_load_pct: f64,
    /// Mean of the max-load series in this phase.
    pub mean_max_load_pct: f64,
    /// Mean of the avg-active-load series.
    pub mean_avg_load_pct: f64,
    /// Mean active servers.
    pub mean_active_servers: f64,
    /// Mean control messages/sec/server.
    pub mean_ctrl_msgs: f64,
    /// Mean protocol-only control messages/sec/server.
    pub mean_proto_msgs: f64,
    /// Mean total messages/sec/server.
    pub mean_total_msgs: f64,
    /// Maximum group depth observed in the phase.
    pub max_depth: u32,
}

/// Crash-recovery aggregates over a run, accumulated from every
/// [`FailureReport`] the membership events produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryTotals {
    /// Single-server crash events.
    pub single_crashes: u64,
    /// Correlated crash-burst events (each kills several servers at once).
    pub burst_crashes: u64,
    /// Groups recovered with full ledger state (replica promotion, or the
    /// oracle crutch when the replication factor is 0).
    pub groups_recovered: u64,
    /// Groups genuinely lost (owner and all replicas died) and re-rooted
    /// empty.
    pub groups_lost: u64,
    /// Recoveries deferred behind a partition at crash time.
    pub groups_deferred: u64,
    /// Groups lost by *single* crashes specifically — with `r ≥ 1` this
    /// must be 0 (the availability experiment's acceptance gate).
    pub single_crash_groups_lost: u64,
    /// Stream sources lost with unrecoverable groups.
    pub sources_lost: u64,
    /// Continuous queries lost with unrecoverable groups.
    pub queries_lost: u64,
}

impl RecoveryTotals {
    fn absorb(&mut self, report: &FailureReport, burst: bool) {
        if burst {
            self.burst_crashes += 1;
        } else {
            self.single_crashes += 1;
            self.single_crash_groups_lost += report.groups_lost as u64;
        }
        self.groups_recovered += report.groups_recovered as u64;
        self.groups_lost += report.groups_lost as u64;
        self.groups_deferred += report.groups_deferred as u64;
        self.sources_lost += report.sources_lost as u64;
        self.queries_lost += report.queries_lost as u64;
    }

    /// Fraction of crash-affected groups fully recovered (1.0 when no
    /// crash touched any group).
    pub fn recovery_success_rate(&self) -> f64 {
        let total = self.groups_recovered + self.groups_lost;
        if total == 0 {
            1.0
        } else {
            self.groups_recovered as f64 / total as f64
        }
    }
}

/// The outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Human-readable configuration label (e.g. `CLASH`, `DHT(12)`).
    pub label: String,
    /// The sampled time series.
    pub samples: Vec<SampleRow>,
    /// Per-phase aggregates, in phase order.
    pub phases: Vec<PhaseSummary>,
    /// Cumulative message statistics over the whole run.
    pub final_messages: MessageStats,
    /// Total discrete events processed.
    pub events: u64,
    /// Splits performed over the run.
    pub splits: u64,
    /// Merges performed over the run.
    pub merges: u64,
    /// Servers that joined during the run (churn scenarios only).
    pub joins: u64,
    /// Servers that gracefully left during the run.
    pub leaves: u64,
    /// Servers that crashed during the run (burst victims included).
    pub crashes: u64,
    /// Crash-recovery aggregates (what was recovered, deferred, lost).
    pub recovery: RecoveryTotals,
    /// Load-check periods that elapsed during the run.
    pub load_checks: u64,
    /// Real (wall-clock) milliseconds spent inside
    /// [`ClashCluster::run_load_check`] over the whole run, measured
    /// after the batch flush so deferred locate work is never billed to
    /// the checks. Wall time is inherently non-deterministic; it is
    /// excluded from [`RunResult::deterministic_fingerprint`].
    pub check_wall_ms: f64,
    /// Worst single load check over the run, wall-clock milliseconds
    /// (tail latency to `check_wall_ms`'s total). Non-deterministic;
    /// excluded from the fingerprint.
    pub max_check_ms: f64,
    /// Where the check time went: per-[`clash_obs::CheckPhase`]
    /// wall-clock milliseconds accumulated by the cluster's
    /// [`WallProfiler`]. Non-deterministic; excluded from the
    /// fingerprint.
    pub phase_profile: PhaseProfile,
}

impl RunResult {
    /// The phase summary for a workload, if that phase ran.
    pub fn phase(&self, workload: WorkloadKind) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.workload == workload)
    }

    /// A digest of every deterministic field of the result — everything
    /// except `check_wall_ms` (wall time). Two runs of the same scenario
    /// must produce equal fingerprints whatever the shard count or
    /// machine; the shard-equivalence suite compares these directly so a
    /// divergence prints both complete states.
    pub fn deterministic_fingerprint(&self) -> String {
        format!(
            "{}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{}|{}|{:?}|{}",
            self.label,
            self.samples,
            self.phases,
            self.final_messages,
            self.events,
            self.splits,
            self.merges,
            self.joins,
            self.leaves,
            self.crashes,
            self.recovery,
            self.load_checks,
        )
    }

    /// The run's metrics as one unified [`Telemetry`] registry: the
    /// cluster's protocol counters/latencies under `cluster.*`, driver
    /// aggregates (events, checks, recovery totals) under `driver.*`,
    /// and the wall-clock phase profile under `driver.check_phase.*`.
    #[must_use]
    pub fn telemetry(&self, cluster: &ClashCluster) -> Telemetry {
        let mut t = Telemetry::new();
        t.counter("driver.events", self.events);
        t.counter("driver.load_checks", self.load_checks);
        t.counter("driver.splits", self.splits);
        t.counter("driver.merges", self.merges);
        t.counter("driver.joins", self.joins);
        t.counter("driver.leaves", self.leaves);
        t.counter("driver.crashes", self.crashes);
        t.counter(
            "driver.recovery.groups_recovered",
            self.recovery.groups_recovered,
        );
        t.counter("driver.recovery.groups_lost", self.recovery.groups_lost);
        t.counter(
            "driver.recovery.groups_deferred",
            self.recovery.groups_deferred,
        );
        t.counter("driver.recovery.sources_lost", self.recovery.sources_lost);
        t.counter("driver.recovery.queries_lost", self.recovery.queries_lost);
        t.gauge("driver.check_wall_ms", self.check_wall_ms);
        t.gauge("driver.max_check_ms", self.max_check_ms);
        for phase in clash_obs::CheckPhase::ALL {
            t.gauge(
                &format!("driver.check_phase.{}_ms", phase.name()),
                self.phase_profile.get(phase),
            );
        }
        t.absorb("cluster", &cluster.telemetry());
        t
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    KeyChange {
        source: u64,
    },
    QueryDeath {
        query: u64,
    },
    LoadCheck,
    Sample,
    /// A server joins. `sustained` joins re-arm the Poisson process;
    /// flash-crowd ramp joins fire once.
    Join {
        sustained: bool,
    },
    /// A server drains gracefully.
    Leave,
    /// A server crashes.
    Crash,
    /// A correlated burst: a server and its ring successors crash at
    /// once.
    CrashBurst,
}

/// Drives a [`ClashCluster`] through a [`ScenarioSpec`] under simulated
/// time. See the module docs for the event model.
pub struct SimDriver {
    config: ClashConfig,
    spec: ScenarioSpec,
    cluster: ClashCluster,
    queue: EventQueue<Ev>,
    rng: DetRng,
    /// Dedicated substream for membership churn, so enabling churn never
    /// perturbs the workload's own draws.
    churn_rng: DetRng,
    workloads: [Workload; 3],
    next_query_id: u64,
    crashes: u64,
    recovery: RecoveryTotals,
    load_checks: u64,
    check_wall_ms: f64,
    max_check_ms: f64,
    label: String,
}

impl SimDriver {
    /// Builds the cluster and initial population for a scenario.
    ///
    /// # Errors
    ///
    /// Propagates configuration and placement errors.
    pub fn new(config: ClashConfig, spec: ScenarioSpec) -> Result<Self, ClashError> {
        let label = if config.splitting_enabled {
            "CLASH".to_owned()
        } else {
            format!("DHT({})", config.initial_depth)
        };
        Self::with_label(config, spec, label)
    }

    /// [`SimDriver::new`] with an explicit label (for ablation variants).
    ///
    /// # Errors
    ///
    /// Propagates configuration and placement errors.
    pub fn with_label(
        config: ClashConfig,
        spec: ScenarioSpec,
        label: String,
    ) -> Result<Self, ClashError> {
        let cluster = ClashCluster::new(config, spec.servers, spec.seed)?;
        Self::from_cluster(config, spec, label, cluster)
    }

    /// [`SimDriver::with_label`] over an explicit message transport: the
    /// cluster charges every protocol message latency (and loss/partition
    /// behavior) through it, and the driver samples windowed locate
    /// latency percentiles into the [`SampleRow`]s.
    ///
    /// # Errors
    ///
    /// Propagates configuration and placement errors.
    pub fn with_transport(
        config: ClashConfig,
        spec: ScenarioSpec,
        label: String,
        transport: Box<dyn Transport>,
    ) -> Result<Self, ClashError> {
        let cluster = ClashCluster::with_transport(config, spec.servers, spec.seed, transport)?;
        Self::from_cluster(config, spec, label, cluster)
    }

    fn from_cluster(
        config: ClashConfig,
        spec: ScenarioSpec,
        label: String,
        mut cluster: ClashCluster,
    ) -> Result<Self, ClashError> {
        // Always profile: the phase timers live outside the protocol's
        // deterministic state, so they are free to stay on. (Tracing, by
        // contrast, is opt-in via `cluster_mut().set_trace_sink`.)
        cluster.set_profiler(Box::new(WallProfiler::default()));
        let rng = DetRng::new(spec.seed).substream("driver");
        let churn_rng = DetRng::new(spec.seed).substream("churn");
        let workloads = [
            Workload::paper(WorkloadKind::A),
            Workload::paper(WorkloadKind::B),
            Workload::paper(WorkloadKind::C),
        ];
        Ok(SimDriver {
            config,
            spec,
            cluster,
            queue: EventQueue::new(),
            rng,
            churn_rng,
            workloads,
            next_query_id: 0,
            crashes: 0,
            recovery: RecoveryTotals::default(),
            load_checks: 0,
            check_wall_ms: 0.0,
            max_check_ms: 0.0,
            label,
        })
    }

    fn workload_index(kind: WorkloadKind) -> usize {
        match kind {
            WorkloadKind::A => 0,
            WorkloadKind::B => 1,
            WorkloadKind::C => 2,
        }
    }

    fn current_workload(&self) -> WorkloadKind {
        self.spec
            .workload_at(self.queue.now().saturating_duration_since(SimTime::ZERO))
    }

    fn source_model(&self, kind: WorkloadKind) -> SourceModel {
        SourceModel::new(kind.source_rate(), self.spec.mean_stream_packets)
    }

    /// Runs the scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates protocol errors (which indicate bugs, not runtime
    /// conditions — the experiments treat any error as fatal).
    pub fn run(self) -> Result<RunResult, ClashError> {
        self.run_with_cluster().map(|(result, _)| result)
    }

    /// [`SimDriver::run`], also returning the final cluster for post-run
    /// inspection (oracle sweeps, consistency checks).
    ///
    /// # Errors
    ///
    /// See [`SimDriver::run`].
    pub fn run_with_cluster(mut self) -> Result<(RunResult, ClashCluster), ClashError> {
        let end = SimTime::ZERO + self.spec.total_duration();
        self.populate()?;
        // Periodic machinery.
        self.queue
            .schedule(SimTime::ZERO + self.spec.load_check_period, Ev::LoadCheck);
        self.queue
            .schedule(SimTime::ZERO + self.spec.sample_period, Ev::Sample);
        let churn = self.spec.churn;
        if let Some(churn) = &churn {
            if let Some(mean) = churn.mean_join_interval {
                let at = SimTime::ZERO + self.churn_interval(mean);
                self.queue.schedule(at, Ev::Join { sustained: true });
            }
            if let Some(mean) = churn.mean_leave_interval {
                let at = SimTime::ZERO + self.churn_interval(mean);
                self.queue.schedule(at, Ev::Leave);
            }
            if let Some(mean) = churn.mean_crash_interval {
                let at = SimTime::ZERO + self.churn_interval(mean);
                self.queue.schedule(at, Ev::Crash);
            }
            if let Some(mean) = churn.mean_burst_interval {
                let at = SimTime::ZERO + self.churn_interval(mean);
                self.queue.schedule(at, Ev::CrashBurst);
            }
            if let Some(flash) = churn.flash_crowd {
                for i in 0..flash.joins {
                    let offset = SimDuration::from_micros(flash.spacing.as_micros() * i as u64);
                    self.queue.schedule(
                        SimTime::ZERO + flash.at + offset,
                        Ev::Join { sustained: false },
                    );
                }
            }
        }

        // Close the populate batch window before baselining the message
        // counters for the first sample diff.
        self.cluster.flush_batch()?;
        let mut samples: Vec<SampleRow> = Vec::new();
        let mut last_msgs = self.cluster.message_stats();
        let mut last_sample_time = SimTime::ZERO;
        let mut last_servers = self.cluster.server_count();
        let mut last_locate = self.cluster.latency_metrics().locate.clone();

        while let Some((at, ev)) = self.queue.pop_before(end) {
            // Keep the cluster's trace clock on the event being
            // dispatched, so every emitted TraceEvent carries the
            // virtual time of the event that caused it.
            self.cluster.set_now(at);
            match ev {
                Ev::KeyChange { source } => {
                    if !self.cluster.has_source(source) {
                        // The source's group was lost in an unrecoverable
                        // crash: its client is gone and its stream ends.
                        continue;
                    }
                    let kind = self.current_workload();
                    let key = self.workloads[Self::workload_index(kind)]
                        .sample_key(self.config.key_width, &mut self.rng);
                    let model = self.source_model(kind);
                    self.cluster
                        .move_source_with_rate(source, key, Some(model.rate()))?;
                    let next = model.sample_stream_duration(&mut self.rng);
                    self.queue.schedule(at + next, Ev::KeyChange { source });
                }
                Ev::QueryDeath { query } => {
                    if self.cluster.has_query(query) {
                        self.cluster.detach_query(query)?;
                    }
                    // Renewal keeps the population constant even when the
                    // query itself died with a lost group.
                    self.spawn_query(at)?;
                }
                Ev::LoadCheck => {
                    // Flush *before* starting the timer: the batch holds
                    // deferred locate work from the whole period, which
                    // must not be billed as load-check time.
                    self.cluster.flush_batch()?;
                    let check_started = std::time::Instant::now();
                    let check = self.cluster.run_load_check()?;
                    let check_ms = check_started.elapsed().as_secs_f64() * 1e3;
                    self.check_wall_ms += check_ms;
                    self.max_check_ms = self.max_check_ms.max(check_ms);
                    self.load_checks += 1;
                    // A partition-deferred recovery resolves at some later
                    // load check; fold its outcome into the totals so the
                    // success rate (and the single-crash loss gate) counts
                    // every crash-affected group and client.
                    self.recovery.groups_recovered += check.recoveries_completed;
                    self.recovery.groups_lost += check.recoveries_lost;
                    self.recovery.single_crash_groups_lost += check.recoveries_lost_single;
                    self.recovery.sources_lost += check.recovery_sources_lost;
                    self.recovery.queries_lost += check.recovery_queries_lost;
                    self.queue
                        .schedule(at + self.spec.load_check_period, Ev::LoadCheck);
                }
                Ev::Sample => {
                    // Samples read message/latency/load state: barrier.
                    self.cluster.flush_batch()?;
                    let window = at.duration_since(last_sample_time);
                    samples.push(self.sample(
                        at,
                        window,
                        &mut last_msgs,
                        &mut last_servers,
                        &mut last_locate,
                    ));
                    last_sample_time = at;
                    self.queue
                        .schedule(at + self.spec.sample_period, Ev::Sample);
                }
                Ev::Join { sustained } => {
                    let churn = churn.as_ref().expect("join events require churn");
                    self.membership_join(churn)?;
                    // Only the sustained Poisson process re-arms; ramp
                    // joins are one-shot, so layering a flash crowd on a
                    // sustained schedule never multiplies the join rate.
                    if sustained {
                        if let Some(mean) = churn.mean_join_interval {
                            let next = self.churn_interval(mean);
                            self.queue.schedule(at + next, Ev::Join { sustained: true });
                        }
                    }
                }
                Ev::Leave => {
                    let churn = churn.as_ref().expect("leave events require churn");
                    self.membership_leave(churn)?;
                    if let Some(mean) = churn.mean_leave_interval {
                        let next = self.churn_interval(mean);
                        self.queue.schedule(at + next, Ev::Leave);
                    }
                }
                Ev::Crash => {
                    let churn = churn.as_ref().expect("crash events require churn");
                    self.membership_crash(churn)?;
                    if let Some(mean) = churn.mean_crash_interval {
                        let next = self.churn_interval(mean);
                        self.queue.schedule(at + next, Ev::Crash);
                    }
                }
                Ev::CrashBurst => {
                    let churn = churn.as_ref().expect("burst events require churn");
                    self.membership_crash_burst(churn)?;
                    if let Some(mean) = churn.mean_burst_interval {
                        let next = self.churn_interval(mean);
                        self.queue.schedule(at + next, Ev::CrashBurst);
                    }
                }
            }
        }
        // Final sample at the end boundary.
        self.cluster.flush_batch()?;
        let window = end.saturating_duration_since(last_sample_time);
        if !window.is_zero() {
            samples.push(self.sample(
                end,
                window,
                &mut last_msgs,
                &mut last_servers,
                &mut last_locate,
            ));
        }

        let phases = self.summarize(&samples);
        let stats = self.cluster.message_stats();
        let result = RunResult {
            label: self.label,
            samples,
            phases,
            final_messages: stats,
            events: self.queue.scheduled_total(),
            splits: stats.splits,
            merges: stats.merges,
            joins: stats.joins,
            leaves: stats.leaves,
            crashes: self.crashes,
            recovery: self.recovery,
            load_checks: self.load_checks,
            check_wall_ms: self.check_wall_ms,
            max_check_ms: self.max_check_ms,
            phase_profile: self.cluster.phase_profile(),
        };
        Ok((result, self.cluster))
    }

    /// Draws the next exponential inter-event time for a churn process.
    fn churn_interval(&mut self, mean: SimDuration) -> SimDuration {
        let secs = Exponential::with_mean(mean.as_secs_f64()).sample(&mut self.churn_rng);
        SimDuration::from_secs_f64(secs.max(1.0))
    }

    /// Joins a fresh server (sustained churn or flash-crowd ramp), unless
    /// the cluster is already at the schedule's ceiling.
    fn membership_join(&mut self, churn: &ChurnSpec) -> Result<(), ClashError> {
        if self.cluster.server_count() >= churn.max_servers {
            return Ok(());
        }
        loop {
            let id = ServerId::new(self.churn_rng.next_u64(), self.config.hash_space);
            if self.cluster.net().node(id).is_none() {
                self.cluster.join_server(id)?;
                return Ok(());
            }
        }
    }

    /// Gracefully drains a random server, respecting the schedule floor.
    fn membership_leave(&mut self, churn: &ChurnSpec) -> Result<(), ClashError> {
        if self.cluster.server_count() <= churn.min_servers.max(1) {
            return Ok(());
        }
        let ids = self.cluster.server_ids();
        let victim = ids[self.churn_rng.uniform_index(ids.len())];
        self.cluster.leave_server(victim)?;
        Ok(())
    }

    /// Crashes a random server, respecting the schedule floor.
    fn membership_crash(&mut self, churn: &ChurnSpec) -> Result<(), ClashError> {
        if self.cluster.server_count() <= churn.min_servers.max(1) {
            return Ok(());
        }
        let ids = self.cluster.server_ids();
        let victim = ids[self.churn_rng.uniform_index(ids.len())];
        let report = self.cluster.fail_server(victim)?;
        self.crashes += 1;
        self.recovery.absorb(&report, false);
        Ok(())
    }

    /// Crashes a random server *and* its ring successors simultaneously —
    /// the correlated rack-failure case replication is measured against.
    /// Skipped when the burst would breach the schedule floor.
    fn membership_crash_burst(&mut self, churn: &ChurnSpec) -> Result<(), ClashError> {
        let size = churn.burst_size.max(1);
        let floor = churn.min_servers.max(1);
        if self.cluster.server_count() < floor + size {
            return Ok(());
        }
        let ids = self.cluster.server_ids();
        let start = ids[self.churn_rng.uniform_index(ids.len())];
        let mut victims = vec![start];
        victims.extend(self.cluster.net().alive_successors(start, size - 1));
        let report = self.cluster.fail_servers(&victims)?;
        self.crashes += victims.len() as u64;
        self.recovery.absorb(&report, true);
        Ok(())
    }

    /// Attaches the initial source and query populations at t = 0.
    fn populate(&mut self) -> Result<(), ClashError> {
        let kind = self.spec.workload_at(SimDuration::ZERO);
        let model = self.source_model(kind);
        for source in 0..self.spec.sources as u64 {
            let key = self.workloads[Self::workload_index(kind)]
                .sample_key(self.config.key_width, &mut self.rng);
            self.cluster.attach_source(source, key, model.rate())?;
            let next = model.sample_stream_duration(&mut self.rng);
            self.queue
                .schedule(SimTime::ZERO + next, Ev::KeyChange { source });
        }
        for _ in 0..self.spec.query_clients {
            self.spawn_query(SimTime::ZERO)?;
        }
        Ok(())
    }

    fn spawn_query(&mut self, at: SimTime) -> Result<(), ClashError> {
        let kind = self.current_workload();
        let id = self.next_query_id;
        self.next_query_id += 1;
        let key = self.workloads[Self::workload_index(kind)]
            .sample_key(self.config.key_width, &mut self.rng);
        self.cluster.attach_query(id, key)?;
        let lifetime =
            QueryClientModel::new(self.spec.mean_query_lifetime).sample_lifetime(&mut self.rng);
        self.queue
            .schedule(at + lifetime, Ev::QueryDeath { query: id });
        Ok(())
    }

    fn sample(
        &self,
        at: SimTime,
        window: SimDuration,
        last_msgs: &mut MessageStats,
        last_servers: &mut usize,
        last_locate: &mut Histogram,
    ) -> SampleRow {
        let capacity = self.config.capacity;
        let active_eps = capacity * 0.01;
        let mut max_load = 0.0f64;
        let mut active = 0usize;
        let mut active_sum = 0.0f64;
        for (_, load) in self.cluster.server_loads() {
            max_load = max_load.max(load);
            if load >= active_eps {
                active += 1;
                active_sum += load;
            }
        }
        let (depth_min, depth_avg, depth_max) = self.cluster.depth_stats().unwrap_or((0, 0.0, 0));
        let msgs = self.cluster.message_stats();
        let secs = window.as_secs_f64().max(1e-9);
        let server_count = self.cluster.server_count();
        // Under churn the fleet size varies mid-window; normalizing
        // per-server rates by the window-average count keeps them honest
        // across a ramp (exact when membership is fixed).
        let servers = (server_count + *last_servers) as f64 / 2.0;
        *last_servers = server_count;
        let ctrl = (msgs.control_messages() - last_msgs.control_messages()) as f64;
        let proto =
            (msgs.protocol_control_messages() - last_msgs.protocol_control_messages()) as f64;
        let total = (msgs.total_messages() - last_msgs.total_messages()) as f64;
        let handoff = (msgs.handoff_messages - last_msgs.handoff_messages) as f64;
        *last_msgs = msgs;
        // Windowed locate latency percentiles: quantiles over only the
        // locates completed since the previous sample (one bucket diff
        // for all three). The instant transport's observations are all
        // exactly zero, so skip the histogram clone/diff entirely there.
        let (locate_p50_ms, locate_p95_ms, locate_p99_ms) = if self.cluster.transport_is_instant() {
            (0.0, 0.0, 0.0)
        } else {
            let locate_hist = &self.cluster.latency_metrics().locate;
            let quantiles = locate_hist.quantiles_since(last_locate, &[0.50, 0.95, 0.99]);
            let (p50, p95, p99) = (
                quantiles[0].unwrap_or(0.0),
                quantiles[1].unwrap_or(0.0),
                quantiles[2].unwrap_or(0.0),
            );
            *last_locate = locate_hist.clone();
            (p50, p95, p99)
        };
        SampleRow {
            time_hours: at.as_hours_f64(),
            workload: self
                .spec
                .workload_at(at.saturating_duration_since(SimTime::ZERO)),
            max_load_pct: 100.0 * max_load / capacity,
            avg_active_load_pct: if active > 0 {
                100.0 * active_sum / active as f64 / capacity
            } else {
                0.0
            },
            active_servers: active,
            depth_min,
            depth_avg,
            depth_max,
            ctrl_msgs_per_sec_per_server: ctrl / secs / servers,
            proto_msgs_per_sec_per_server: proto / secs / servers,
            total_msgs_per_sec_per_server: total / secs / servers,
            server_count,
            handoff_msgs_per_sec_per_server: handoff / secs / servers,
            locate_p50_ms,
            locate_p95_ms,
            locate_p99_ms,
        }
    }

    fn summarize(&self, samples: &[SampleRow]) -> Vec<PhaseSummary> {
        let mut out = Vec::new();
        for phase in &self.spec.phases {
            let rows: Vec<&SampleRow> = samples
                .iter()
                .filter(|r| r.workload == phase.workload)
                .collect();
            if rows.is_empty() {
                continue;
            }
            if out
                .iter()
                .any(|p: &PhaseSummary| p.workload == phase.workload)
            {
                continue; // phases with repeated workloads fold together
            }
            let n = rows.len() as f64;
            out.push(PhaseSummary {
                workload: phase.workload,
                peak_load_pct: rows.iter().map(|r| r.max_load_pct).fold(0.0, f64::max),
                mean_max_load_pct: rows.iter().map(|r| r.max_load_pct).sum::<f64>() / n,
                mean_avg_load_pct: rows.iter().map(|r| r.avg_active_load_pct).sum::<f64>() / n,
                mean_active_servers: rows.iter().map(|r| r.active_servers as f64).sum::<f64>() / n,
                mean_ctrl_msgs: rows
                    .iter()
                    .map(|r| r.ctrl_msgs_per_sec_per_server)
                    .sum::<f64>()
                    / n,
                mean_proto_msgs: rows
                    .iter()
                    .map(|r| r.proto_msgs_per_sec_per_server)
                    .sum::<f64>()
                    / n,
                mean_total_msgs: rows
                    .iter()
                    .map(|r| r.total_msgs_per_sec_per_server)
                    .sum::<f64>()
                    / n,
                max_depth: rows.iter().map(|r| r.depth_max).max().unwrap_or(0),
            });
        }
        out
    }

    /// Read access to the cluster (post-run inspection in tests).
    pub fn cluster(&self) -> &ClashCluster {
        &self.cluster
    }

    /// Mutable access to the cluster *before* the run starts — used by
    /// the equivalence suites to flip test-only knobs (e.g.
    /// [`ClashCluster::set_full_scan_load_checks`]) on an otherwise
    /// identical scenario.
    pub fn cluster_mut(&mut self) -> &mut ClashCluster {
        &mut self.cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            servers: 16,
            sources: 300,
            query_clients: 0,
            load_check_period: SimDuration::from_secs(60),
            sample_period: SimDuration::from_secs(60),
            ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(5))
        }
    }

    fn tiny_config() -> ClashConfig {
        // Capacity scaled so 300 sources over ~12 active servers bite:
        // 300–600 pkt/s total → capacity 60 means splits will happen.
        ClashConfig {
            capacity: 60.0,
            ..ClashConfig::paper()
        }
    }

    #[test]
    fn clash_run_produces_samples_and_bounds_load() {
        let result = SimDriver::new(tiny_config(), tiny_spec())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.label, "CLASH");
        // 15 minutes, sampled each minute (+ final boundary sample).
        assert!(
            result.samples.len() >= 14,
            "{} samples",
            result.samples.len()
        );
        assert!(result.splits > 0, "skewed workloads must split");
        // After the transient, CLASH caps load near the overload threshold.
        let late_max = result
            .samples
            .iter()
            .skip(3)
            .map(|r| r.max_load_pct)
            .fold(0.0, f64::max);
        assert!(late_max < 250.0, "late max load {late_max}%");
        assert_eq!(result.phases.len(), 3);
    }

    #[test]
    fn dht_baseline_run_never_splits() {
        let config = ClashConfig {
            capacity: 60.0,
            ..ClashConfig::dht_baseline(6)
        };
        let result = SimDriver::new(config, tiny_spec()).unwrap().run().unwrap();
        assert_eq!(result.label, "DHT(6)");
        assert_eq!(result.splits, 0);
        assert_eq!(result.merges, 0);
        // Depth is pinned at 6.
        assert!(result
            .samples
            .iter()
            .all(|r| r.depth_min == 6 && r.depth_max == 6));
    }

    #[test]
    fn depth_grows_with_skew_phases() {
        let result = SimDriver::new(tiny_config(), tiny_spec())
            .unwrap()
            .run()
            .unwrap();
        let a = result.phase(WorkloadKind::A).unwrap();
        let c = result.phase(WorkloadKind::C).unwrap();
        assert!(
            c.max_depth >= a.max_depth,
            "skew C should deepen the tree: {} vs {}",
            c.max_depth,
            a.max_depth
        );
    }

    #[test]
    fn query_population_stays_constant() {
        let spec = ScenarioSpec {
            query_clients: 50,
            mean_query_lifetime: SimDuration::from_secs(90),
            ..tiny_spec()
        };
        let driver = SimDriver::new(tiny_config(), spec).unwrap();
        // run() consumes; rebuild to inspect after.
        let result_cluster = driver.run().unwrap();
        assert!(result_cluster.final_messages.state_transfer_messages < u64::MAX);
        // Renewal means deaths occurred and were replaced: total query
        // locates strictly exceed the initial population.
        assert!(result_cluster.final_messages.locates > 50);
    }

    #[test]
    fn runs_are_deterministic() {
        let r1 = SimDriver::new(tiny_config(), tiny_spec())
            .unwrap()
            .run()
            .unwrap();
        let r2 = SimDriver::new(tiny_config(), tiny_spec())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(r1.samples.len(), r2.samples.len());
        for (a, b) in r1.samples.iter().zip(&r2.samples) {
            assert_eq!(a, b);
        }
        assert_eq!(r1.final_messages, r2.final_messages);
    }

    #[test]
    fn membership_churn_runs_end_to_end() {
        let churn =
            ChurnSpec::sustained(SimDuration::from_mins(2), SimDuration::from_mins(3), 8, 64)
                .with_crashes(SimDuration::from_mins(6));
        let spec = ScenarioSpec {
            churn: Some(churn),
            ..tiny_spec()
        };
        let (result, cluster) = SimDriver::new(tiny_config(), spec)
            .unwrap()
            .run_with_cluster()
            .unwrap();
        assert!(result.joins > 0, "sustained churn must join servers");
        assert!(result.leaves > 0, "sustained churn must drain servers");
        assert!(result.final_messages.handoff_messages > 0);
        assert!(
            result.samples.iter().any(|r| r.server_count != 16),
            "membership changes must show in the samples"
        );
        cluster.verify_consistency();
        assert!(cluster.global_cover().is_partition());
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let churn =
            ChurnSpec::sustained(SimDuration::from_mins(2), SimDuration::from_mins(3), 8, 64);
        let spec = ScenarioSpec {
            churn: Some(churn),
            ..tiny_spec()
        };
        let r1 = SimDriver::new(tiny_config(), spec.clone())
            .unwrap()
            .run()
            .unwrap();
        let r2 = SimDriver::new(tiny_config(), spec).unwrap().run().unwrap();
        assert_eq!(r1.samples, r2.samples);
        assert_eq!(r1.final_messages, r2.final_messages);
        assert_eq!((r1.joins, r1.leaves), (r2.joins, r2.leaves));
    }

    #[test]
    fn flash_crowd_ramps_capacity() {
        let churn =
            ChurnSpec::flash_crowd(SimDuration::from_mins(5), 6, SimDuration::from_secs(30));
        let spec = ScenarioSpec {
            churn: Some(churn),
            ..tiny_spec()
        };
        let (result, cluster) = SimDriver::new(tiny_config(), spec)
            .unwrap()
            .run_with_cluster()
            .unwrap();
        assert_eq!(result.joins, 6);
        assert_eq!(result.leaves, 0);
        assert_eq!(cluster.server_count(), 22);
        let final_servers = result.samples.last().unwrap().server_count;
        assert_eq!(final_servers, 22, "ramp must persist to the end");
        cluster.verify_consistency();
    }

    #[test]
    fn flash_crowd_on_sustained_schedule_does_not_multiply_joins() {
        // Regression: ramp joins must be one-shot. Before the fix, every
        // flash Ev::Join re-armed the sustained Poisson process, so a
        // combined schedule spawned joins/leaves at (ramp+1)x the
        // configured rate and pinned the fleet at max_servers.
        let churn = ChurnSpec {
            flash_crowd: Some(clash_workload::churn::FlashCrowd {
                at: SimDuration::from_mins(2),
                joins: 4,
                spacing: SimDuration::from_secs(30),
            }),
            ..ChurnSpec::sustained(SimDuration::from_mins(5), SimDuration::from_mins(60), 8, 64)
        };
        let spec = ScenarioSpec {
            churn: Some(churn),
            ..tiny_spec()
        };
        let result = SimDriver::new(tiny_config(), spec).unwrap().run().unwrap();
        // 15 virtual minutes: 4 ramp joins + ~3 sustained joins. A
        // multiplied process would run away toward max_servers (48 joins).
        assert!(result.joins >= 4, "ramp joins must fire: {}", result.joins);
        assert!(
            result.joins <= 12,
            "flash crowd multiplied the sustained join rate: {} joins",
            result.joins
        );
    }

    #[test]
    fn crash_bursts_with_replication_run_end_to_end() {
        // Sustained churn plus correlated bursts over a replicated
        // cluster: the driver must absorb lost sources/queries (their key
        // changes stop, query clients renew) and the recovery totals must
        // account every crash-affected group.
        let churn =
            ChurnSpec::sustained(SimDuration::from_mins(4), SimDuration::from_mins(60), 8, 64)
                .with_crashes(SimDuration::from_mins(4))
                .with_crash_bursts(SimDuration::from_mins(5), 3);
        let spec = ScenarioSpec {
            churn: Some(churn),
            query_clients: 20,
            ..tiny_spec()
        };
        let config = ClashConfig {
            replication_factor: 2,
            ..tiny_config()
        };
        let (result, cluster) = SimDriver::new(config, spec)
            .unwrap()
            .run_with_cluster()
            .unwrap();
        assert!(result.crashes > 0, "crashes must fire");
        let r = &result.recovery;
        assert_eq!(
            r.single_crashes + r.burst_crashes,
            result.crashes - (r.burst_crashes * 2),
            "burst victims counted: 3 servers per burst event"
        );
        assert_eq!(
            r.single_crash_groups_lost, 0,
            "single crashes with r = 2 never lose groups"
        );
        assert!(
            r.groups_recovered > 0,
            "crashes over a loaded cluster must recover groups"
        );
        assert_eq!(cluster.recovery_oracle_reads(), 0);
        cluster.verify_consistency();
        assert!(cluster.global_cover().is_partition());
    }

    #[test]
    fn wan_transport_changes_latency_not_protocol() {
        use clash_transport::{LinkPolicy, LinkTransport};
        let instant = SimDriver::new(tiny_config(), tiny_spec())
            .unwrap()
            .run()
            .unwrap();
        let spec = tiny_spec();
        let transport = Box::new(LinkTransport::new(LinkPolicy::wan(), spec.seed));
        let wan = SimDriver::with_transport(tiny_config(), spec, "CLASH/wan".to_owned(), transport)
            .unwrap()
            .run()
            .unwrap();
        // Identical protocol decisions and message accounting...
        assert_eq!(instant.final_messages, wan.final_messages);
        assert_eq!(instant.splits, wan.splits);
        for (a, b) in instant.samples.iter().zip(&wan.samples) {
            assert_eq!(a.max_load_pct, b.max_load_pct);
            assert_eq!(a.depth_max, b.depth_max);
            // ...but only the WAN run reports real latency percentiles.
            assert_eq!(a.locate_p50_ms, 0.0);
        }
        let p95_seen = wan
            .samples
            .iter()
            .map(|r| r.locate_p95_ms)
            .fold(0.0, f64::max);
        assert!(
            p95_seen > 20.0,
            "WAN locates must cost tens of ms: {p95_seen}"
        );
        let monotone = wan
            .samples
            .iter()
            .all(|r| r.locate_p50_ms <= r.locate_p95_ms && r.locate_p95_ms <= r.locate_p99_ms);
        assert!(monotone, "percentiles must be ordered");
    }

    #[test]
    fn message_rates_are_positive_under_churn() {
        let result = SimDriver::new(tiny_config(), tiny_spec())
            .unwrap()
            .run()
            .unwrap();
        let any_ctrl = result
            .samples
            .iter()
            .any(|r| r.ctrl_msgs_per_sec_per_server > 0.0);
        assert!(any_ctrl, "key churn must generate control messages");
    }
}
