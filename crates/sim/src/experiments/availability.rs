//! Availability experiment (beyond the paper's evaluation): crash
//! recovery with real successor-list replication.
//!
//! The paper delegates fault handling to "the DHT's replication" and
//! never measures it; the harness historically faked it by re-homing a
//! crashed server's groups from the simulation oracle. This experiment
//! measures the real mechanism: it sweeps the replication factor
//! `r ∈ {0, 1, 2, 3}` through an identical hour of workload-C traffic
//! under sustained membership churn, random single crashes and
//! *correlated crash bursts* (a server plus two ring successors failing
//! at once — the rack-failure case), and reports per `r`:
//!
//! * **recovery** — groups recovered vs genuinely lost (owner and every
//!   replica dead), the recovery success rate, sources/queries lost, and
//!   losses attributable to *single* crashes (must be zero whenever
//!   `r ≥ 1`);
//! * **cost** — replication messages, their share of protocol control
//!   traffic, and the virtual-time p95 of replica maintenance/fetch
//!   round trips over a WAN transport;
//! * **honesty** — oracle reads during recovery (the crutch: > 0 at
//!   `r = 0`, exactly 0 otherwise) and a 512-key post-run oracle sweep.
//!
//! `r = 0` is the pre-replication baseline: zero replication messages,
//! zero losses (the oracle resurrects everything), but every crash leans
//! on global state no real deployment has.

use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport};
use clash_workload::churn::ChurnSpec;
use clash_workload::scenario::{Phase, ScenarioSpec};
use clash_workload::skew::WorkloadKind;

use crate::driver::{RecoveryTotals, SimDriver};
use crate::experiments::churn::{oracle_sweep, OracleSweep};
use crate::report;

/// One replication factor's run.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// The replication factor swept.
    pub r: usize,
    /// Servers crashed over the run (single + burst victims).
    pub servers_crashed: u64,
    /// Crash-recovery aggregates.
    pub recovery: RecoveryTotals,
    /// Replication messages charged over the run.
    pub replication_messages: u64,
    /// Replication share of protocol control traffic, percent.
    pub replication_overhead_pct: f64,
    /// p95 of replica maintenance/fetch round trips, virtual ms.
    pub replication_p95_ms: f64,
    /// Oracle reads observed during crash recovery (0 for `r ≥ 1`).
    pub oracle_reads: u64,
    /// Servers at the end of the run.
    pub final_servers: usize,
    /// Post-run 512-key oracle sweep.
    pub sweep: OracleSweep,
}

/// The availability experiment's output.
#[derive(Debug, Clone)]
pub struct AvailabilityOutput {
    /// One row per replication factor, in sweep order.
    pub rows: Vec<AvailabilityRow>,
    /// Scale factor applied to the paper populations.
    pub scale: f64,
}

/// The capacity calibration the fault experiments share (see
/// `netfault`): the paper capacity never overloads at smoke populations,
/// so the crash paths would run against a never-split tree.
fn availability_config(r: usize) -> ClashConfig {
    ClashConfig {
        capacity: 1000.0,
        replication_factor: r,
        ..ClashConfig::paper()
    }
}

fn availability_spec(scale: f64, seed: u64) -> ScenarioSpec {
    let base = ScenarioSpec::paper().scaled(scale);
    let servers = base.servers;
    let spec = ScenarioSpec {
        phases: vec![Phase {
            workload: WorkloadKind::C,
            duration: SimDuration::from_mins(60),
        }],
        query_clients: (base.sources / 10).max(10),
        seed,
        ..base
    };
    // Sustained churn plus crash pressure: joins refill the fleet while
    // single crashes and size-3 bursts drain it. The floor keeps bursts
    // meaningful without letting the fleet collapse.
    spec.with_churn(
        ChurnSpec::sustained(
            SimDuration::from_mins(5),
            SimDuration::from_mins(30),
            (servers / 3).max(4),
            servers * 2,
        )
        .with_crashes(SimDuration::from_mins(8))
        .with_crash_bursts(SimDuration::from_mins(12), 3),
    )
}

fn run_one(r: usize, scale: f64, seed: u64) -> Result<AvailabilityRow, ClashError> {
    let spec = availability_spec(scale, seed);
    let transport = Box::new(LinkTransport::new(LinkPolicy::wan(), seed ^ r as u64));
    let label = format!("CLASH/r={r}");
    let (result, mut cluster) =
        SimDriver::with_transport(availability_config(r), spec, label, transport)?
            .run_with_cluster()?;
    cluster.verify_consistency();
    let sweep = oracle_sweep(&mut cluster, 512, seed ^ 0xA4A1);
    let msgs = result.final_messages;
    let proto = msgs.protocol_control_messages().max(1);
    Ok(AvailabilityRow {
        r,
        servers_crashed: result.crashes,
        recovery: result.recovery,
        replication_messages: msgs.replication_messages,
        replication_overhead_pct: 100.0 * msgs.replication_messages as f64 / proto as f64,
        replication_p95_ms: cluster
            .latency_metrics()
            .replication
            .quantile(0.95)
            .unwrap_or(0.0),
        oracle_reads: cluster.recovery_oracle_reads(),
        final_servers: cluster.server_count(),
        sweep,
    })
}

/// Runs the `r` sweep at the paper populations scaled by `scale`.
///
/// # Errors
///
/// Propagates cluster and scenario errors.
pub fn run(scale: f64) -> Result<AvailabilityOutput, ClashError> {
    run_seeded(scale, None)
}

/// [`run`] with an optional root seed override (`None` uses the paper
/// scenario's seed).
///
/// # Errors
///
/// Propagates cluster and scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>) -> Result<AvailabilityOutput, ClashError> {
    let seed = seed.unwrap_or_else(|| ScenarioSpec::paper().seed);
    let mut rows = Vec::new();
    for r in [0usize, 1, 2, 3] {
        rows.push(run_one(r, scale, seed)?);
    }
    Ok(AvailabilityOutput { rows, scale })
}

fn row_cells(row: &AvailabilityRow) -> Vec<String> {
    let rec = &row.recovery;
    vec![
        row.r.to_string(),
        row.servers_crashed.to_string(),
        format!("{}+{}", rec.single_crashes, rec.burst_crashes),
        rec.groups_recovered.to_string(),
        rec.groups_lost.to_string(),
        rec.single_crash_groups_lost.to_string(),
        format!("{:.1}%", 100.0 * rec.recovery_success_rate()),
        rec.sources_lost.to_string(),
        row.replication_messages.to_string(),
        format!("{:.1}%", row.replication_overhead_pct),
        report::f1(row.replication_p95_ms),
        row.oracle_reads.to_string(),
        format!("{}/{}", row.sweep.agreed, row.sweep.checked),
    ]
}

/// Renders the sweep as an ASCII table.
pub fn render(out: &AvailabilityOutput) -> String {
    let mut s = format!(
        "Availability — crash recovery by replication factor (scale {}):\n",
        out.scale
    );
    s.push_str(&report::ascii_table(
        &[
            "r",
            "crashed",
            "events 1x+burst",
            "recovered",
            "lost",
            "lost by 1x",
            "recovery rate",
            "sources lost",
            "repl msgs",
            "repl share",
            "repl p95 ms",
            "oracle reads",
            "oracle agreement",
        ],
        &out.rows.iter().map(row_cells).collect::<Vec<_>>(),
    ));
    s.push_str(
        "\n`oracle reads` counts recoveries that leaned on the simulation \
         oracle (the r = 0 crutch);\nwith r >= 1 every promotion comes from a \
         successor replica and the counter stays 0.\n",
    );
    s
}

/// Writes `availability.csv`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csvs(out: &AvailabilityOutput, dir: &str) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|row| {
            let rec = &row.recovery;
            vec![
                row.r.to_string(),
                row.servers_crashed.to_string(),
                rec.single_crashes.to_string(),
                rec.burst_crashes.to_string(),
                rec.groups_recovered.to_string(),
                rec.groups_lost.to_string(),
                rec.groups_deferred.to_string(),
                rec.single_crash_groups_lost.to_string(),
                report::f2(rec.recovery_success_rate()),
                rec.sources_lost.to_string(),
                rec.queries_lost.to_string(),
                row.replication_messages.to_string(),
                report::f2(row.replication_overhead_pct),
                report::f2(row.replication_p95_ms),
                row.oracle_reads.to_string(),
                row.final_servers.to_string(),
                row.sweep.agreed.to_string(),
                row.sweep.checked.to_string(),
            ]
        })
        .collect();
    report::write_csv(
        format!("{dir}/availability.csv"),
        &[
            "replication_factor",
            "servers_crashed",
            "single_crash_events",
            "burst_events",
            "groups_recovered",
            "groups_lost",
            "groups_deferred",
            "single_crash_groups_lost",
            "recovery_success_rate",
            "sources_lost",
            "queries_lost",
            "replication_messages",
            "replication_overhead_pct",
            "replication_p95_ms",
            "oracle_reads_in_recovery",
            "final_servers",
            "oracle_agreed",
            "oracle_checked",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate, at CI smoke scale: with `r ≥ 2` every
    /// single-server crash recovers all lost groups with zero oracle
    /// reads and 512/512 post-run oracle agreement; `r = 0` reproduces
    /// the crutch (oracle reads, no replication traffic); bursts make
    /// the availability gradient visible.
    #[test]
    fn availability_small_scale_end_to_end() {
        let out = run(0.02).unwrap();
        assert_eq!(out.rows.len(), 4);

        let r0 = &out.rows[0];
        assert_eq!(r0.replication_messages, 0, "r = 0 charges nothing");
        assert!(r0.oracle_reads > 0, "the r = 0 crutch reads the oracle");
        assert_eq!(r0.recovery.groups_lost, 0, "the oracle never loses state");
        assert!(r0.servers_crashed > 0 && r0.recovery.burst_crashes > 0);

        for row in &out.rows[1..] {
            assert_eq!(
                row.oracle_reads, 0,
                "r = {}: replica recovery must never read the oracle",
                row.r
            );
            assert!(
                row.replication_messages > 0,
                "r = {}: replication must be exercised",
                row.r
            );
            assert!(
                row.recovery.groups_recovered > 0,
                "r = {}: crashes must recover groups",
                row.r
            );
            assert_eq!(
                row.recovery.single_crash_groups_lost, 0,
                "r = {}: single crashes never lose groups",
                row.r
            );
            assert!(
                row.replication_p95_ms > 0.0,
                "WAN replication round trips cost virtual time"
            );
        }
        // Every run — lossy or not — ends with full lookup/oracle
        // agreement: losses re-root groups, they never corrupt routing.
        for row in &out.rows {
            assert_eq!(
                row.sweep.agreed, row.sweep.checked,
                "r = {}: post-run oracle agreement",
                row.r
            );
            assert_eq!(row.recovery.groups_deferred, 0, "no partitions here");
        }
        // The gradient the experiment exists to show: r = 1 cannot
        // survive size-3 bursts, r = 3 can.
        let r1 = &out.rows[1];
        let r3 = &out.rows[3];
        assert!(
            r1.recovery.groups_lost > 0,
            "size-3 bursts must defeat r = 1"
        );
        assert!(
            r3.recovery.groups_lost <= r1.recovery.groups_lost,
            "r = 3 must not lose more than r = 1"
        );

        let rendered = render(&out);
        assert!(rendered.contains("recovery rate"));
        assert!(rendered.contains("oracle reads"));
    }
}
