//! Churn experiment (beyond the paper's evaluation): live membership
//! under load.
//!
//! The paper fixes server membership during its experiments; utility
//! computing is precisely the opposite regime. Two scenarios exercise
//! [`clash_core::cluster::ClashCluster::join_server`] /
//! [`clash_core::cluster::ClashCluster::leave_server`] with traffic
//! flowing:
//!
//! * **sustained** — the A→B→C scenario with Poisson joins, graceful
//!   drains and occasional crashes throughout;
//! * **flash crowd** — a single hot phase (workload C) with a burst of
//!   joins ramping capacity up by 50% mid-run.
//!
//! Reported per run: lookup health (probes per locate, plus a pinned-seed
//! oracle sweep over the final cluster), handoff message rates, and load
//! imbalance (max/avg over active servers) over virtual time.

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_keyspace::key::Key;
use clash_obs::{TraceEvent, TraceMode};
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport};
use clash_workload::churn::ChurnSpec;
use clash_workload::scenario::{Phase, ScenarioSpec};
use clash_workload::skew::WorkloadKind;

use crate::driver::{RunResult, SimDriver};
use crate::report;

/// Post-run oracle sweep over the final cluster state.
#[derive(Debug, Clone, Copy)]
pub struct OracleSweep {
    /// Keys checked.
    pub checked: u64,
    /// Lookups that agreed with the oracle (owner and group).
    pub agreed: u64,
    /// Largest probe count any lookup needed.
    pub max_probes: u32,
}

/// One churn scenario's results.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// The driver's time series and totals.
    pub result: RunResult,
    /// Lookup correctness on the post-churn cluster.
    pub sweep: OracleSweep,
    /// Servers at the end of the run.
    pub final_servers: usize,
    /// Whole-run locate latency percentiles `(p50, p95, p99)` in virtual
    /// ms, over the experiment's WAN transport.
    pub locate_ms: (f64, f64, f64),
    /// Flight-recorder events collected from the run (empty when the
    /// trace mode was [`TraceMode::Off`]).
    pub trace: Vec<TraceEvent>,
}

/// The churn experiment's output.
#[derive(Debug, Clone)]
pub struct ChurnOutput {
    /// The sustained join/leave/crash scenario.
    pub sustained: ChurnRun,
    /// The flash-crowd ramp scenario.
    pub flash: ChurnRun,
    /// Scale factor applied to the paper populations.
    pub scale: f64,
}

/// Sweeps `n` deterministic keys through the client protocol and checks
/// each placement against the oracle.
pub(crate) fn oracle_sweep(cluster: &mut ClashCluster, n: u64, seed: u64) -> OracleSweep {
    let width = cluster.config().key_width;
    let mut rng = DetRng::new(seed);
    let mut agreed = 0;
    let mut max_probes = 0;
    for _ in 0..n {
        let key = Key::from_bits_truncated(rng.next_u64(), width);
        let placement = cluster.locate(key).expect("locate cannot fail");
        let (oracle_server, oracle_group) =
            cluster.oracle_locate(key).expect("cover is a partition");
        if placement.server == oracle_server && placement.group == oracle_group {
            agreed += 1;
        }
        max_probes = max_probes.max(placement.probes);
    }
    OracleSweep {
        checked: n,
        agreed,
        max_probes,
    }
}

fn run_one(
    config: ClashConfig,
    spec: ScenarioSpec,
    label: String,
    trace: TraceMode,
) -> Result<ChurnRun, ClashError> {
    // Churn runs ride a WAN transport so the latency-percentile columns
    // carry real numbers; the transport draws from its own substream, so
    // the protocol behaves exactly as it would over the instant one.
    let transport = Box::new(LinkTransport::new(LinkPolicy::wan(), spec.seed));
    let mut driver = SimDriver::with_transport(config, spec, label, transport)?;
    // The flight recorder is passive: any mode yields the same RunResult
    // bit-for-bit (pinned by tests/trace_equivalence.rs).
    driver.cluster_mut().set_trace_sink(trace.make_sink());
    let (result, mut cluster) = driver.run_with_cluster()?;
    cluster.verify_consistency();
    let sweep = oracle_sweep(&mut cluster, 512, 0xC1A5_0C12);
    let locate = &cluster.latency_metrics().locate;
    let q = |p: f64| locate.quantile(p).unwrap_or(0.0);
    Ok(ChurnRun {
        result,
        sweep,
        final_servers: cluster.server_count(),
        locate_ms: (q(0.50), q(0.95), q(0.99)),
        trace: cluster.take_trace_events(),
    })
}

/// Runs both churn scenarios at the paper populations scaled by `scale`.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(scale: f64) -> Result<ChurnOutput, ClashError> {
    run_seeded(scale, None)
}

/// [`run`] with an optional root seed override (`None` keeps the paper
/// scenario's hard-coded seed).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>) -> Result<ChurnOutput, ClashError> {
    run_seeded_traced(scale, seed, TraceMode::Off)
}

/// [`run_seeded`] with the flight recorder on: both scenarios run with a
/// sink in `trace` mode and each [`ChurnRun`] carries its collected
/// events (for `--trace <path>` Chrome export).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_seeded_traced(
    scale: f64,
    seed: Option<u64>,
    trace: TraceMode,
) -> Result<ChurnOutput, ClashError> {
    let mut base = ScenarioSpec::paper().scaled(scale);
    if let Some(seed) = seed {
        base.seed = seed;
    }
    let servers = base.servers;

    // Sustained: a join roughly every 10 virtual minutes, a drain every
    // 12, a crash every 45 — bounded to [half, double] the fleet.
    let sustained_spec = base.with_churn(
        ChurnSpec::sustained(
            SimDuration::from_mins(10),
            SimDuration::from_mins(12),
            (servers / 2).max(2),
            servers * 2,
        )
        .with_crashes(SimDuration::from_mins(45)),
    );
    let sustained = run_one(
        ClashConfig::paper(),
        sustained_spec,
        "CLASH+churn".to_owned(),
        trace,
    )?;

    // Flash crowd: one hot hour; +50% capacity joins back-to-back
    // starting at t = 20 min.
    let flash_spec = ScenarioSpec {
        phases: vec![Phase {
            workload: WorkloadKind::C,
            duration: SimDuration::from_mins(60),
        }],
        ..base
    }
    .with_churn(ChurnSpec::flash_crowd(
        SimDuration::from_mins(20),
        (servers / 2).max(1),
        SimDuration::from_secs(30),
    ));
    let flash = run_one(
        ClashConfig::paper(),
        flash_spec,
        "CLASH+flash".to_owned(),
        trace,
    )?;

    Ok(ChurnOutput {
        sustained,
        flash,
        scale,
    })
}

fn totals_row(run: &ChurnRun) -> Vec<String> {
    let r = &run.result;
    vec![
        r.label.clone(),
        r.joins.to_string(),
        r.leaves.to_string(),
        r.crashes.to_string(),
        run.final_servers.to_string(),
        r.splits.to_string(),
        r.merges.to_string(),
        r.final_messages.handoff_messages.to_string(),
        format!("{}/{}", run.sweep.agreed, run.sweep.checked),
        run.sweep.max_probes.to_string(),
        report::f1(run.locate_ms.0),
        report::f1(run.locate_ms.1),
        report::f1(run.locate_ms.2),
    ]
}

/// Renders both scenarios: a totals table plus the flash-crowd time
/// series (servers, load, handoff traffic).
pub fn render(out: &ChurnOutput) -> String {
    let mut s = format!(
        "Churn — live membership under load (scale {}):\n",
        out.scale
    );
    s.push_str(&report::ascii_table(
        &[
            "scenario",
            "joins",
            "leaves",
            "crashes",
            "final servers",
            "splits",
            "merges",
            "handoff msgs",
            "oracle agreement",
            "max probes",
            "locate p50 ms",
            "locate p95 ms",
            "locate p99 ms",
        ],
        &[totals_row(&out.sustained), totals_row(&out.flash)],
    ));
    s.push('\n');
    s.push_str("Flash-crowd ramp (workload C, +50% servers from t = 20 min):\n");
    let rows: Vec<Vec<String>> = out
        .flash
        .result
        .samples
        .iter()
        .map(|r| {
            vec![
                report::f2(r.time_hours),
                r.server_count.to_string(),
                report::f1(r.max_load_pct),
                report::f1(r.avg_active_load_pct),
                report::f2(r.handoff_msgs_per_sec_per_server),
            ]
        })
        .collect();
    s.push_str(&report::ascii_table(
        &[
            "t (h)",
            "servers",
            "max load %",
            "avg active load %",
            "handoff msgs/s/srv",
        ],
        &rows,
    ));
    s
}

/// Writes `churn_timeseries.csv` (both scenarios, labelled).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csvs(out: &ChurnOutput, dir: &str) -> std::io::Result<()> {
    let mut rows = Vec::new();
    for run in [&out.sustained, &out.flash] {
        for r in &run.result.samples {
            // Load imbalance: max over avg-active, the churn experiment's
            // balance metric (1.0 = perfectly even).
            let imbalance = if r.avg_active_load_pct > 0.0 {
                r.max_load_pct / r.avg_active_load_pct
            } else {
                0.0
            };
            rows.push(vec![
                run.result.label.clone(),
                report::f2(r.time_hours),
                r.workload.to_string(),
                r.server_count.to_string(),
                report::f2(r.max_load_pct),
                report::f2(r.avg_active_load_pct),
                report::f2(imbalance),
                report::f2(r.handoff_msgs_per_sec_per_server),
                report::f2(r.proto_msgs_per_sec_per_server),
                report::f2(r.total_msgs_per_sec_per_server),
                report::f2(r.locate_p50_ms),
                report::f2(r.locate_p95_ms),
                report::f2(r.locate_p99_ms),
            ]);
        }
    }
    report::write_csv(
        format!("{dir}/churn_timeseries.csv"),
        &[
            "scenario",
            "time_hours",
            "workload",
            "servers",
            "max_load_pct",
            "avg_active_load_pct",
            "load_imbalance",
            "handoff_msgs_per_sec_per_server",
            "proto_msgs_per_sec_per_server",
            "total_msgs_per_sec_per_server",
            "locate_p50_ms",
            "locate_p95_ms",
            "locate_p99_ms",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: the experiment runs end-to-end at the CI
    /// smoke scale, lookups agree with the oracle after all membership
    /// events, and the flash crowd actually grows the fleet.
    #[test]
    fn churn_small_scale_end_to_end() {
        let out = run(0.02).unwrap();
        for run in [&out.sustained, &out.flash] {
            assert_eq!(
                run.sweep.agreed, run.sweep.checked,
                "{}: lookups must agree with the oracle after churn",
                run.result.label
            );
            assert!(run.sweep.max_probes <= 6, "depth search stays bounded");
            let (p50, p95, p99) = run.locate_ms;
            assert!(
                p50 > 0.0 && p50 <= p95 && p95 <= p99,
                "{}: WAN locate percentiles must be recorded and ordered: {:?}",
                run.result.label,
                run.locate_ms
            );
        }
        let s = &out.sustained.result;
        assert!(s.joins > 0, "sustained churn must join servers");
        assert!(s.leaves > 0, "sustained churn must drain servers");
        assert!(s.final_messages.handoff_messages > 0);
        let f = &out.flash.result;
        assert!(
            f.joins >= 10,
            "flash crowd adds half the fleet: {}",
            f.joins
        );
        assert_eq!(f.leaves, 0);
        assert!(
            out.flash.final_servers > 20,
            "ramp must persist: {} servers",
            out.flash.final_servers
        );
        let rendered = render(&out);
        assert!(rendered.contains("oracle agreement"));
        assert!(rendered.contains("Flash-crowd"));
    }
}
