//! Executable versions of the paper's worked examples: the Figure 1
//! splitting tree and the Figure 2 server work table.

use clash_core::load::GroupLoad;
use clash_core::messages::AcceptObjectResponse;
use clash_core::table::ServerTable;
use clash_core::ServerId;
use clash_keyspace::hash::HashSpace;
use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;

fn sid(v: u64) -> ServerId {
    ServerId::new(v, HashSpace::new(16).expect("16 is valid"))
}

fn p7(s: &str) -> Prefix {
    Prefix::parse(s, 7).expect("valid prefix literal")
}

/// Reconstructs Figure 1: starting from the key group `011*` on server
/// s0, the splits described in §4 produce the tree with servers s0, s12,
/// s5 and s7 at the leaves. Returns the rendered tree plus the three
/// server tables.
pub fn figure1() -> String {
    let width = KeyWidth::new(7).expect("7 is valid");
    let (s0, s12, s5, s7) = (sid(0), sid(12), sid(5), sid(7));
    let mut t0 = ServerTable::new(s0, width);
    let mut t12 = ServerTable::new(s12, width);
    let mut t5 = ServerTable::new(s5, width);
    let mut t7 = ServerTable::new(s7, width);

    // s0 manages "011*" and overloads: split, right child → s12.
    t0.insert_root(p7("011*")).expect("fresh group");
    let (_l, r) = t0.split(p7("011*")).expect("splittable");
    t0.set_right_child(p7("011*"), s12).expect("just split");
    t12.accept_group(r, s0, GroupLoad::zero())
        .expect("must accept");

    // s12 splits "0111*": right child "01111*" → s5.
    let (_l, r) = t12.split(p7("0111*")).expect("splittable");
    t12.set_right_child(p7("0111*"), s5).expect("just split");
    t5.accept_group(r, s12, GroupLoad::zero())
        .expect("must accept");

    // s12 splits "01110*": right child "011101*" → s7.
    let (_l, r) = t12.split(p7("01110*")).expect("splittable");
    t12.set_right_child(p7("01110*"), s7).expect("just split");
    t7.accept_group(r, s12, GroupLoad::zero())
        .expect("must accept");

    let mut out = String::new();
    out.push_str("Figure 1 — load balancing using binary splitting\n\n");
    out.push_str("logical tree (leaves = active key groups):\n");
    out.push_str("  011*            [root, originally s0]\n");
    out.push_str("  ├── 0110*       -> s0   (leaf)\n");
    out.push_str("  └── 0111*       -> s12\n");
    out.push_str("      ├── 01110*  -> s12\n");
    out.push_str("      │   ├── 011100* -> s12 (leaf)\n");
    out.push_str("      │   └── 011101* -> s7  (leaf)\n");
    out.push_str("      └── 01111*  -> s5   (leaf)\n\n");
    for (name, table) in [("s0", &t0), ("s12", &t12), ("s5", &t5), ("s7", &t7)] {
        out.push_str(&format!("{name}: {table:?}\n"));
    }
    let leaves: Vec<String> = [&t0, &t12, &t5, &t7]
        .iter()
        .flat_map(|t| t.active_groups().map(|e| e.group.to_string()))
        .collect();
    out.push_str(&format!("active groups across servers: {leaves:?}\n"));
    out
}

/// Reconstructs the exact server work table of Figure 2 (server s25) and
/// replays the three `ACCEPT_OBJECT` cases of §5 against it.
pub fn figure2() -> String {
    let width = KeyWidth::new(7).expect("7 is valid");
    let s25 = sid(25);
    let mut table = ServerTable::new(s25, width);
    table.insert_root(p7("011*")).expect("fresh group");
    table
        .accept_group(p7("01011*"), sid(22), GroupLoad::zero())
        .expect("fresh group");
    table.split(p7("011*")).expect("splittable");
    table.set_right_child(p7("011*"), sid(45)).expect("split");
    table.split(p7("01011*")).expect("splittable");
    table.set_right_child(p7("01011*"), sid(26)).expect("split");
    table.split(p7("0110*")).expect("splittable");
    table.set_right_child(p7("0110*"), sid(11)).expect("split");

    let mut out = String::new();
    out.push_str("Figure 2 — key group information using the Server Work Table (s25)\n\n");
    out.push_str(&format!("{table:?}\n"));
    out.push_str("ACCEPT_OBJECT case analysis (§5):\n");
    let cases = [
        ("(a) key 0110001 at depth 5 (right depth)", "0110001", 5u32),
        (
            "(b) key 0110001 at depth 7 (wrong depth, right server)",
            "0110001",
            7,
        ),
        ("(c) key 0101010 at depth 6 (wrong server)", "0101010", 6),
    ];
    for (desc, key, depth) in cases {
        let k = Key::parse(key, 7).expect("valid key literal");
        let resp = table.classify_object(k, depth);
        let rendered = match resp {
            AcceptObjectResponse::Ok { depth } => format!("OK (depth {depth})"),
            AcceptObjectResponse::OkCorrected { depth } => {
                format!("OK, corrected depth = {depth}")
            }
            AcceptObjectResponse::IncorrectDepth { d_min } => {
                format!("INCORRECT_DEPTH, d_min = {d_min:?}")
            }
        };
        out.push_str(&format!("  {desc}: {rendered}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_renders_expected_leaves() {
        let out = figure1();
        for leaf in ["0110*", "011100*", "011101*", "01111*"] {
            assert!(out.contains(leaf), "missing {leaf}");
        }
    }

    #[test]
    fn figure2_replays_paper_cases() {
        let out = figure2();
        assert!(out.contains("OK (depth 5)"));
        assert!(out.contains("corrected depth = 5"));
        assert!(out.contains("d_min = Some(4)"));
    }
}
