//! The §5 convergence claim: "clients usually converge to the true depth
//! much faster than log(N)".
//!
//! We heat a cluster with the skewed workload C until the tree is deep,
//! then measure fresh (unhinted) and hinted depth searches for keys drawn
//! from the same workload, reporting the probe distribution against the
//! binary-search bound ⌈log₂(N+1)⌉.

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_simkernel::rng::DetRng;
use clash_simkernel::stats;
use clash_workload::skew::{Workload, WorkloadKind};

use crate::report;

/// Probe-count distribution for one lookup mode.
#[derive(Debug, Clone)]
pub struct ProbeStats {
    /// Lookup mode label.
    pub mode: String,
    /// Mean probes per locate.
    pub mean: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum observed.
    pub max: u32,
    /// The binary-search bound ⌈log₂(N+1)⌉ for reference.
    pub bound: u32,
}

/// The regenerated convergence data.
#[derive(Debug, Clone)]
pub struct DepthConvOutput {
    /// Tree depth statistics after heating: (min, mean, max).
    pub tree_depth: (u32, f64, u32),
    /// Probe statistics per mode.
    pub stats: Vec<ProbeStats>,
    /// Number of lookups measured per mode.
    pub lookups: usize,
}

/// Heats a cluster with workload C and measures `lookups` searches.
///
/// # Errors
///
/// Propagates cluster errors.
pub fn run(servers: usize, sources: usize, lookups: usize) -> Result<DepthConvOutput, ClashError> {
    run_seeded(servers, sources, lookups, None)
}

/// [`run`] with an optional root seed override (`None` keeps the
/// hard-coded default seeds).
///
/// # Errors
///
/// Propagates cluster errors.
pub fn run_seeded(
    servers: usize,
    sources: usize,
    lookups: usize,
    seed: Option<u64>,
) -> Result<DepthConvOutput, ClashError> {
    let config = ClashConfig {
        // Scale capacity so the given population forces deep splitting.
        capacity: (sources as f64 * 2.0 / 40.0).max(50.0),
        ..ClashConfig::paper()
    };
    let mut cluster = ClashCluster::new(config, servers, seed.unwrap_or(42))?;
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(seed.map_or(4242, |s| s ^ 4242));
    for i in 0..sources as u64 {
        let key = workload.sample_key(config.key_width, &mut rng);
        cluster.attach_source(i, key, 2.0)?;
    }
    for _ in 0..8 {
        cluster.run_load_check()?;
    }
    let tree_depth = cluster.depth_stats().expect("groups exist");

    let width = config.key_width.get();
    let bound = 32 - (width + 1).leading_zeros() + 1;
    let mut fresh = Vec::with_capacity(lookups);
    let mut hinted = Vec::with_capacity(lookups);
    let mut last_depth = config.initial_depth;
    for _ in 0..lookups {
        let key = workload.sample_key(config.key_width, &mut rng);
        let placement = cluster.locate(key)?;
        fresh.push(f64::from(placement.probes));
        let placement = cluster.locate_hinted(key, Some(last_depth))?;
        hinted.push(f64::from(placement.probes));
        last_depth = placement.depth;
    }
    let make = |mode: &str, xs: &[f64]| ProbeStats {
        mode: mode.to_owned(),
        mean: stats::mean(xs),
        p95: stats::percentile(xs, 95.0).unwrap_or(0.0),
        max: xs.iter().copied().fold(0.0, f64::max) as u32,
        bound,
    };
    Ok(DepthConvOutput {
        tree_depth,
        stats: vec![
            make("fresh (no hint)", &fresh),
            make("hinted (cached depth)", &hinted),
        ],
        lookups,
    })
}

/// Renders the claim check.
pub fn render(out: &DepthConvOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .stats
        .iter()
        .map(|s| {
            vec![
                s.mode.clone(),
                report::f2(s.mean),
                report::f1(s.p95),
                s.max.to_string(),
                s.bound.to_string(),
            ]
        })
        .collect();
    format!(
        "Depth-search convergence (§5 claim) — tree depth min {} / avg {:.1} / max {}, \
         {} lookups\n{}",
        out.tree_depth.0,
        out.tree_depth.1,
        out.tree_depth.2,
        out.lookups,
        report::ascii_table(
            &["mode", "mean probes", "p95", "max", "binary-search bound"],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_below_binary_search_bound() {
        let out = run(40, 2000, 400).unwrap();
        assert!(
            out.tree_depth.2 > 6,
            "tree must deepen: {:?}",
            out.tree_depth
        );
        let fresh = &out.stats[0];
        // The paper's claim: usually much faster than log2(N).
        assert!(
            fresh.mean < f64::from(fresh.bound),
            "mean {} vs bound {}",
            fresh.mean,
            fresh.bound
        );
        // Worst case stays within the probe budget (bound + slack).
        assert!(fresh.max <= 24 + 2);
        // Hints help on average.
        let hinted = &out.stats[1];
        assert!(hinted.mean <= fresh.mean + 0.5);
    }
}
