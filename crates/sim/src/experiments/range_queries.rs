//! The §7 extension claim: "For range queries, the CLASH overhead
//! vis-à-vis DHT will decrease, since CLASH will cluster ranges of
//! objects on a common server and thus incur lower query replication
//! overhead."
//!
//! We heat a CLASH cluster and a `DHT(12)` baseline with the same
//! workload-C population, then issue prefix-range queries of varying
//! width and compare how many distinct servers (and messages) each
//! system needs; `DHT(24)`'s cost is reported analytically (2^(24−d)
//! subgroups — executing it would be the point being made).

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_keyspace::prefix::Prefix;
use clash_simkernel::rng::DetRng;
use clash_simkernel::stats;
use clash_workload::skew::{Workload, WorkloadKind};

use crate::report;

/// Aggregates for one range depth × one system.
#[derive(Debug, Clone, Copy)]
pub struct RangeCost {
    /// Mean distinct servers touched per range query.
    pub mean_servers: f64,
    /// Worst case distinct servers.
    pub max_servers: usize,
    /// Mean control messages per range query.
    pub mean_messages: f64,
}

/// One row of the comparison: a range depth with CLASH vs DHT(12) costs.
#[derive(Debug, Clone, Copy)]
pub struct RangeRow {
    /// Prefix length of the queried ranges.
    pub range_depth: u32,
    /// CLASH cost.
    pub clash: RangeCost,
    /// DHT(12) cost (measured).
    pub dht12: RangeCost,
    /// DHT(24) subgroups per range (analytic lower bound on lookups).
    pub dht24_subgroups: u64,
}

/// The regenerated range-query comparison.
#[derive(Debug, Clone)]
pub struct RangeOutput {
    /// One row per range depth.
    pub rows: Vec<RangeRow>,
    /// Queries sampled per row.
    pub queries: usize,
}

fn heated(config: ClashConfig, servers: usize, sources: usize, seed: u64) -> ClashCluster {
    let mut cluster = ClashCluster::new(config, servers, seed).expect("valid config");
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(seed ^ 0xFEED);
    for i in 0..sources as u64 {
        let key = workload.sample_key(config.key_width, &mut rng);
        cluster.attach_source(i, key, 2.0).expect("attach");
    }
    for _ in 0..6 {
        cluster.run_load_check().expect("load check");
    }
    cluster
}

fn measure(
    cluster: &mut ClashCluster,
    range_depth: u32,
    queries: usize,
    seed: u64,
) -> Result<RangeCost, ClashError> {
    let mut rng = DetRng::new(seed);
    let mut servers = Vec::with_capacity(queries);
    let mut messages = Vec::with_capacity(queries);
    let mut max_servers = 0usize;
    for _ in 0..queries {
        // Ranges sample the whole key space uniformly. Ranges over the
        // currently-hot region are dispersed by CLASH *on purpose* (that
        // is the load balancing working); the clustering win the paper
        // predicts shows on the typical range, which the skew leaves
        // intact on one or two servers.
        let key = clash_keyspace::key::Key::from_bits_truncated(
            rng.next_u64(),
            cluster.config().key_width,
        );
        let range = Prefix::of_key(key, range_depth);
        let result = cluster.range_query(range)?;
        servers.push(result.distinct_servers as f64);
        messages.push(result.messages as f64);
        max_servers = max_servers.max(result.distinct_servers);
    }
    Ok(RangeCost {
        mean_servers: stats::mean(&servers),
        max_servers,
        mean_messages: stats::mean(&messages),
    })
}

/// Runs the comparison at the given population scale.
///
/// # Errors
///
/// Propagates cluster errors.
pub fn run(scale: f64, queries: usize) -> Result<RangeOutput, ClashError> {
    run_seeded(scale, queries, None)
}

/// [`run`] with an optional root seed override (`None` keeps the
/// hard-coded default seed).
///
/// # Errors
///
/// Propagates cluster errors.
pub fn run_seeded(
    scale: f64,
    queries: usize,
    seed: Option<u64>,
) -> Result<RangeOutput, ClashError> {
    let cluster_seed = seed.unwrap_or(31);
    let servers = ((1000.0 * scale) as usize).max(16);
    let sources = ((100_000.0 * scale) as usize).max(1000);
    // Capacity targets ~30% aggregate utilization: the spike splits a few
    // levels (the interesting regime) without overcommitting the fleet.
    let clash_config = ClashConfig {
        capacity: (sources as f64 * 2.0) / (0.3 * servers as f64),
        ..ClashConfig::paper()
    };
    let dht12_config = ClashConfig {
        capacity: clash_config.capacity,
        ..ClashConfig::dht_baseline(12)
    };
    let mut clash = heated(clash_config, servers, sources, cluster_seed);
    let mut dht12 = heated(dht12_config, servers, sources, cluster_seed);
    let mut rows = Vec::new();
    for range_depth in [4u32, 6, 8, 10] {
        // Without an override the historical per-depth query seeds are
        // kept verbatim; an override salts them so sweeps stay distinct.
        let query_seed = match seed {
            None => 101 + u64::from(range_depth),
            Some(s) => s ^ (101 + u64::from(range_depth)),
        };
        let clash_cost = measure(&mut clash, range_depth, queries, query_seed)?;
        let dht12_cost = measure(&mut dht12, range_depth, queries, query_seed)?;
        rows.push(RangeRow {
            range_depth,
            clash: clash_cost,
            dht12: dht12_cost,
            dht24_subgroups: 1u64 << (24 - range_depth),
        });
    }
    Ok(RangeOutput { rows, queries })
}

/// Renders the comparison table.
pub fn render(out: &RangeOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|r| {
            vec![
                r.range_depth.to_string(),
                report::f2(r.clash.mean_servers),
                r.clash.max_servers.to_string(),
                report::f1(r.clash.mean_messages),
                report::f2(r.dht12.mean_servers),
                report::f1(r.dht12.mean_messages),
                r.dht24_subgroups.to_string(),
            ]
        })
        .collect();
    format!(
        "Range queries (§7 extension) — {} queries per row, workload C\n{}",
        out.queries,
        report::ascii_table(
            &[
                "range depth",
                "CLASH servers (mean)",
                "CLASH servers (max)",
                "CLASH msgs",
                "DHT(12) servers",
                "DHT(12) msgs",
                "DHT(24) subgroups",
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clash_clusters_ranges_on_fewer_servers() {
        let out = run(0.03, 40).unwrap(); // 30 servers, 3000 sources
        for row in &out.rows {
            assert!(
                row.clash.mean_servers <= row.dht12.mean_servers,
                "depth {}: CLASH {} vs DHT(12) {}",
                row.range_depth,
                row.clash.mean_servers,
                row.dht12.mean_servers
            );
        }
        // At coarse ranges the gap is large (DHT scatters, CLASH clusters).
        let coarse = &out.rows[0];
        assert!(
            coarse.dht12.mean_servers > 2.0 * coarse.clash.mean_servers,
            "coarse ranges: DHT(12) {} vs CLASH {}",
            coarse.dht12.mean_servers,
            coarse.clash.mean_servers
        );
        assert!(render(&out).contains("Range queries"));
    }
}
