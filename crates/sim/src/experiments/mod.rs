//! Experiment drivers, one per figure/claim of the paper's evaluation.
//!
//! Each submodule exposes `run(...) -> …Output` plus `render` (ASCII
//! tables mirroring the figure) and `write_csvs` where applicable. The
//! binaries in `src/bin/` are thin wrappers.

pub mod ablation;
pub mod availability;
pub mod chaos;
pub mod churn;
pub mod demos;
pub mod depth_conv;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod netfault;
pub mod range_queries;
pub mod scale;
pub mod servers_saved;

use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_workload::scenario::ScenarioSpec;

use crate::driver::{RunResult, SimDriver};

/// Runs several `(config, spec, label)` scenarios on parallel threads and
/// returns their results in order.
///
/// # Errors
///
/// Propagates the first scenario error.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn run_variants(
    variants: Vec<(ClashConfig, ScenarioSpec, String)>,
) -> Result<Vec<RunResult>, ClashError> {
    let mut results: Vec<Result<RunResult, ClashError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = variants
            .into_iter()
            .map(|(config, spec, label)| {
                scope.spawn(move || SimDriver::with_label(config, spec, label)?.run())
            })
            .collect();
        results = handles
            .into_iter()
            .map(|h| h.join().expect("scenario thread panicked"))
            .collect();
    });
    results.into_iter().collect()
}

/// The four Figure 4 protocol variants: CLASH and the fixed-depth
/// baselines DHT(6), DHT(12), DHT(24).
pub fn figure4_variants() -> Vec<(ClashConfig, String)> {
    vec![
        (ClashConfig::paper(), "CLASH".to_owned()),
        (ClashConfig::dht_baseline(6), "DHT(6)".to_owned()),
        (ClashConfig::dht_baseline(12), "DHT(12)".to_owned()),
        (ClashConfig::dht_baseline(24), "DHT(24)".to_owned()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_simkernel::time::SimDuration;

    #[test]
    fn run_variants_parallel_matches_serial() {
        let spec = ScenarioSpec {
            servers: 8,
            sources: 100,
            ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(2))
        };
        let cfg = ClashConfig {
            capacity: 50.0,
            ..ClashConfig::paper()
        };
        let parallel = run_variants(vec![
            (cfg, spec.clone(), "x".to_owned()),
            (cfg, spec.clone(), "y".to_owned()),
        ])
        .unwrap();
        let serial = SimDriver::with_label(cfg, spec, "x".to_owned())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(parallel[0].samples, serial.samples);
        assert_eq!(parallel[0].samples, parallel[1].samples);
        assert_eq!(parallel[1].label, "y");
    }

    #[test]
    fn figure4_variant_labels() {
        let labels: Vec<String> = figure4_variants().into_iter().map(|(_, l)| l).collect();
        assert_eq!(labels, vec!["CLASH", "DHT(6)", "DHT(12)", "DHT(24)"]);
    }
}
