//! The §7 claim: "intelligent workload allocation by CLASH can reduce the
//! number of physical servers utilized by as much as 80%, compared to
//! basic DHT."
//!
//! Derived directly from the Figure 4 runs: per phase, compare CLASH's
//! active-server count against each baseline's.

use clash_core::error::ClashError;
use clash_workload::skew::WorkloadKind;

use crate::experiments::fig4::{self, Fig4Output};
use crate::report;

/// The savings table.
#[derive(Debug, Clone)]
pub struct SaversOutput {
    /// `(workload, baseline label, clash servers, baseline servers,
    /// savings %)`.
    pub rows: Vec<(WorkloadKind, String, f64, f64, f64)>,
}

/// Computes the savings from an existing Figure 4 run.
pub fn from_fig4(out: &Fig4Output) -> SaversOutput {
    let clash = &out.runs[0];
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let Some(cp) = clash.phase(kind) else {
            continue;
        };
        for baseline in &out.runs[1..] {
            let Some(bp) = baseline.phase(kind) else {
                continue;
            };
            let savings = if bp.mean_active_servers > 0.0 {
                100.0 * (1.0 - cp.mean_active_servers / bp.mean_active_servers)
            } else {
                0.0
            };
            rows.push((
                kind,
                baseline.label.clone(),
                cp.mean_active_servers,
                bp.mean_active_servers,
                savings,
            ));
        }
    }
    SaversOutput { rows }
}

/// Runs Figure 4 at `scale` and derives the savings table.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(scale: f64) -> Result<(Fig4Output, SaversOutput), ClashError> {
    run_seeded(scale, None)
}

/// [`run`] with an optional root seed override (`None` keeps the paper
/// scenario's hard-coded seed).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>) -> Result<(Fig4Output, SaversOutput), ClashError> {
    let fig4_out = fig4::run_seeded(scale, seed)?;
    let savings = from_fig4(&fig4_out);
    Ok((fig4_out, savings))
}

/// Renders the savings table.
pub fn render(out: &SaversOutput) -> String {
    let rows: Vec<Vec<String>> = out
        .rows
        .iter()
        .map(|(kind, label, clash, baseline, savings)| {
            vec![
                kind.to_string(),
                label.clone(),
                report::f1(*clash),
                report::f1(*baseline),
                report::f1(*savings),
            ]
        })
        .collect();
    format!(
        "Servers saved by CLASH vs basic DHT (§7 claim: up to ~80%)\n{}",
        report::ascii_table(
            &[
                "workload",
                "baseline",
                "CLASH servers",
                "baseline servers",
                "savings %"
            ],
            &rows,
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig4::pressured_test_variants;
    use crate::experiments::run_variants;

    #[test]
    fn clash_saves_servers_vs_fine_grained_dht() {
        // At 24 servers the ceiling is low (the full 80% claim needs the
        // paper's 1000-server scale, checked by the fig4 binary); here we
        // assert savings exist and point the right way.
        let (spec, variants) = pressured_test_variants();
        let runs = run_variants(
            variants
                .into_iter()
                .map(|(c, l)| (c, spec.clone(), l))
                .collect(),
        )
        .unwrap();
        let fig4_out = fig4::Fig4Output { runs, spec };
        let savings = from_fig4(&fig4_out);
        let vs24: Vec<f64> = savings
            .rows
            .iter()
            .filter(|(_, label, _, _, _)| label == "DHT(24)")
            .map(|&(_, _, _, _, s)| s)
            .collect();
        assert!(!vs24.is_empty());
        assert!(
            vs24.iter().copied().fold(f64::MIN, f64::max) > 5.0,
            "expected positive savings vs DHT(24): {vs24:?}"
        );
        assert!(render(&savings).contains("savings %"));
    }
}
