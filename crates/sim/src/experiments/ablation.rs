//! Ablations over the design choices `DESIGN.md` calls out:
//!
//! 1. **Split policy** — hottest-first (the paper) vs first-loaded;
//! 2. **Initial depth** — 3 / 6 / 9 bootstrap groups;
//! 3. **Merge headroom** — hysteresis against split/merge thrash;
//! 4. **Virtual servers** — CFS-style ownership balancing at the Chord
//!    layer (orthogonal to CLASH's load-aware splitting).

use clash_chord::virtual_nodes::VirtualRing;
use clash_core::config::{ClashConfig, SplitPolicy};
use clash_core::error::ClashError;
use clash_keyspace::hash::HashSpace;
use clash_simkernel::rng::DetRng;
use clash_simkernel::stats;
use clash_simkernel::time::SimDuration;
use clash_workload::scenario::{Phase, ScenarioSpec};
use clash_workload::skew::WorkloadKind;

use crate::driver::RunResult;
use crate::experiments::run_variants;
use crate::report;

/// Results of all ablation sweeps.
#[derive(Debug, Clone)]
pub struct AblationOutput {
    /// Split-policy sweep runs.
    pub split_policy: Vec<RunResult>,
    /// Initial-depth sweep runs (depth, run).
    pub initial_depth: Vec<(u32, RunResult)>,
    /// Merge-headroom sweep (headroom fraction, splits, merges).
    pub merge_headroom: Vec<(f64, u64, u64)>,
    /// Virtual-server sweep (vnodes per server, ownership stddev).
    pub virtual_servers: Vec<(usize, f64)>,
}

fn base_spec(scale: f64, seed: Option<u64>) -> ScenarioSpec {
    let mut spec = ScenarioSpec::paper().scaled(scale);
    if let Some(seed) = seed {
        spec.seed = seed;
    }
    spec
}

fn hot_spec(scale: f64, seed: Option<u64>) -> ScenarioSpec {
    ScenarioSpec {
        phases: vec![Phase {
            workload: WorkloadKind::C,
            duration: SimDuration::from_mins(30),
        }],
        ..base_spec(scale, seed)
    }
}

/// A heat-then-cool scenario for the thrash measurement.
fn cycle_spec(scale: f64, seed: Option<u64>) -> ScenarioSpec {
    ScenarioSpec {
        phases: vec![
            Phase {
                workload: WorkloadKind::C,
                duration: SimDuration::from_mins(25),
            },
            Phase {
                workload: WorkloadKind::A,
                duration: SimDuration::from_mins(25),
            },
        ],
        ..base_spec(scale, seed)
    }
}

/// Runs all sweeps at the given population scale.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(scale: f64) -> Result<AblationOutput, ClashError> {
    run_seeded(scale, None)
}

/// [`run`] with an optional root seed override (`None` keeps every
/// hard-coded default seed).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>) -> Result<AblationOutput, ClashError> {
    // 1. Split policy.
    let split_policy = run_variants(
        [SplitPolicy::Hottest, SplitPolicy::FirstLoaded]
            .into_iter()
            .map(|policy| {
                let config = ClashConfig {
                    split_policy: policy,
                    ..ClashConfig::paper()
                };
                (config, hot_spec(scale, seed), format!("{policy:?}"))
            })
            .collect(),
    )?;

    // 2. Initial depth.
    let depths = [3u32, 6, 9];
    let runs = run_variants(
        depths
            .iter()
            .map(|&d| {
                let config = ClashConfig {
                    initial_depth: d,
                    ..ClashConfig::paper()
                };
                (config, hot_spec(scale, seed), format!("depth {d}"))
            })
            .collect(),
    )?;
    let initial_depth = depths.iter().copied().zip(runs).collect();

    // 3. Merge headroom: count protocol actions across a heat/cool cycle.
    let headrooms = [0.2f64, 0.54, 0.85];
    let runs = run_variants(
        headrooms
            .iter()
            .map(|&h| {
                let config = ClashConfig {
                    merge_headroom_fraction: h,
                    ..ClashConfig::paper()
                };
                (config, cycle_spec(scale, seed), format!("headroom {h}"))
            })
            .collect(),
    )?;
    let merge_headroom = headrooms
        .iter()
        .copied()
        .zip(runs)
        .map(|(h, r)| (h, r.splits, r.merges))
        .collect();

    // 4. Virtual servers (pure Chord-layer measurement).
    let mut virtual_servers = Vec::new();
    for &vnodes in &[1usize, 4, 16] {
        let mut rng = DetRng::new(seed.unwrap_or(99));
        let ring = VirtualRing::new(
            HashSpace::PAPER,
            (1000.0 * scale).max(8.0) as usize,
            vnodes,
            &mut rng,
        );
        virtual_servers.push((vnodes, stats::stddev(&ring.ownership_fractions())));
    }

    Ok(AblationOutput {
        split_policy,
        initial_depth,
        merge_headroom,
        virtual_servers,
    })
}

/// Renders all sweeps.
pub fn render(out: &AblationOutput) -> String {
    let mut s = String::new();
    s.push_str("Ablation 1 — split policy (workload C)\n");
    let rows: Vec<Vec<String>> = out
        .split_policy
        .iter()
        .map(|r| {
            let p = r.phases.first();
            vec![
                r.label.clone(),
                report::f1(p.map_or(0.0, |p| p.peak_load_pct)),
                report::f1(p.map_or(0.0, |p| p.mean_max_load_pct)),
                r.splits.to_string(),
            ]
        })
        .collect();
    s.push_str(&report::ascii_table(
        &["policy", "peak load %", "mean max load %", "splits"],
        &rows,
    ));

    s.push_str("\nAblation 2 — initial depth (workload C)\n");
    let rows: Vec<Vec<String>> = out
        .initial_depth
        .iter()
        .map(|(d, r)| {
            let p = r.phases.first();
            vec![
                d.to_string(),
                report::f1(p.map_or(0.0, |p| p.mean_active_servers)),
                report::f1(p.map_or(0.0, |p| p.mean_ctrl_msgs)),
                report::f1(p.map_or(0.0, |p| p.peak_load_pct)),
            ]
        })
        .collect();
    s.push_str(&report::ascii_table(
        &[
            "initial depth",
            "active servers",
            "ctrl msgs/s/server",
            "peak load %",
        ],
        &rows,
    ));

    s.push_str("\nAblation 3 — merge headroom over a heat/cool cycle\n");
    let rows: Vec<Vec<String>> = out
        .merge_headroom
        .iter()
        .map(|(h, splits, merges)| vec![report::f2(*h), splits.to_string(), merges.to_string()])
        .collect();
    s.push_str(&report::ascii_table(
        &["headroom fraction", "splits", "merges"],
        &rows,
    ));

    s.push_str("\nAblation 4 — virtual servers (Chord ownership balance)\n");
    let rows: Vec<Vec<String>> = out
        .virtual_servers
        .iter()
        .map(|(v, sd)| vec![v.to_string(), format!("{sd:.5}")])
        .collect();
    s.push_str(&report::ascii_table(
        &["vnodes per server", "ownership stddev"],
        &rows,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_produce_expected_orderings() {
        let out = run(0.01).unwrap();
        // Finer initial depth spreads over more servers.
        let servers: Vec<f64> = out
            .initial_depth
            .iter()
            .map(|(_, r)| r.phases[0].mean_active_servers)
            .collect();
        assert!(
            servers[0] <= servers[2],
            "deeper bootstrap should use at least as many servers: {servers:?}"
        );
        // More virtual nodes balance ownership better.
        let sd: Vec<f64> = out.virtual_servers.iter().map(|&(_, s)| s).collect();
        assert!(sd[0] > sd[2], "vnodes should reduce stddev: {sd:?}");
        assert!(render(&out).contains("Ablation 4"));
    }
}
