//! Network-fault experiment (beyond the paper's evaluation): latency,
//! loss and partition behavior over the `clash-transport` models.
//!
//! The paper evaluates CLASH purely by message counts; this experiment
//! asks the questions a real deployment would:
//!
//! * **(a) latency** — what do locate/attach operations *cost in time*
//!   under different link models (LAN vs heterogeneous WAN) and ring
//!   sizes? Reported as p50/p95/p99 plus a full CDF
//!   (`netfault_latency_cdf.csv`).
//! * **(b) loss** — on lossy links, retransmissions inflate latency and
//!   physical message counts but the protocol's *decisions* are
//!   untouched: the lossy runs must converge to the very same state and
//!   agree 100% with the oracle (`netfault_loss.csv`).
//! * **(c) partitions** — sever the fleet into two islands mid-run:
//!   cross-island locates fail, splits/merges across the cut defer, and
//!   after healing every lookup re-agrees with the oracle.

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport};
use clash_workload::scenario::{Phase, ScenarioSpec};
use clash_workload::skew::{Workload, WorkloadKind};

use crate::driver::SimDriver;
use crate::experiments::churn::{oracle_sweep, OracleSweep};
use crate::report;

/// Default root seed (the paper scenario's seed, so `--seed`-less runs
/// line up with the other experiments).
fn default_seed() -> u64 {
    ScenarioSpec::paper().seed
}

/// One latency-CDF measurement: a link policy at a ring size.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Link-policy label (`lan`, `wan`).
    pub policy: String,
    /// Servers in the ring.
    pub servers: usize,
    /// Locate operations measured.
    pub locates: u64,
    /// Median locate latency, virtual ms.
    pub p50_ms: f64,
    /// 95th percentile, virtual ms.
    pub p95_ms: f64,
    /// 99th percentile, virtual ms.
    pub p99_ms: f64,
    /// Mean locate latency, virtual ms.
    pub mean_ms: f64,
    /// Mean DHT hops per lookup (latency scales with this × ring size).
    pub mean_hops: f64,
    /// The full CDF: `(ms, cumulative fraction)` at percent steps.
    pub cdf: Vec<(f64, f64)>,
}

/// One lossy-link run.
#[derive(Debug, Clone)]
pub struct LossRow {
    /// Per-transmission drop probability.
    pub drop_probability: f64,
    /// Envelopes delivered by the transport.
    pub messages: u64,
    /// Retransmissions forced by loss.
    pub retransmissions: u64,
    /// Retransmissions per delivered message.
    pub retry_overhead: f64,
    /// Whole-run locate p95, virtual ms.
    pub locate_p95_ms: f64,
    /// Splits performed (must not vary with loss).
    pub splits: u64,
    /// Merges performed (must not vary with loss).
    pub merges: u64,
    /// Post-run oracle sweep.
    pub sweep: OracleSweep,
}

/// The partition/heal scenario's outcome.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Servers in the ring.
    pub servers: usize,
    /// Locate attempts made while the fleet was severed.
    pub attempted_during: u64,
    /// Attempts that failed with `NetworkUnreachable`.
    pub unreachable_during: u64,
    /// Attempts that succeeded (intra-island routes).
    pub ok_during: u64,
    /// Transport-level sends refused by the partition (includes reports
    /// and deferred split/merge traffic, not just locates).
    pub transport_unreachable: u64,
    /// Post-heal oracle sweep (the acceptance gate: 100% agreement).
    pub sweep: OracleSweep,
}

/// The full experiment output.
#[derive(Debug, Clone)]
pub struct NetfaultOutput {
    /// Latency CDFs (policies × ring sizes).
    pub latency: Vec<LatencyRow>,
    /// Lossy-link runs (drop probability sweep).
    pub loss: Vec<LossRow>,
    /// The partition/heal scenario.
    pub partition: PartitionReport,
    /// Flight-recorder events from the partition/heal scenario (empty
    /// unless the run was traced) — the deferral/recovery timeline is
    /// this experiment's most opaque phase, so it is the one that gets
    /// the recorder.
    pub partition_trace: Vec<clash_obs::TraceEvent>,
    /// Scale factor applied to the paper populations.
    pub scale: f64,
}

/// Builds a heated cluster over the given transport policy: `servers`
/// ring members, 100 workload-C sources per server (the paper's
/// client/server ratio), two load-check rounds.
/// The paper capacity (2500) never overloads at smoke populations; 1000
/// keeps ~20% average utilization with a workload-C hot group several
/// times over threshold, so the fault paths run against a *splitting*
/// tree at every scale.
fn fault_config() -> ClashConfig {
    ClashConfig {
        capacity: 1000.0,
        ..ClashConfig::paper()
    }
}

fn heated_cluster(
    policy: LinkPolicy,
    servers: usize,
    seed: u64,
) -> Result<ClashCluster, ClashError> {
    let config = fault_config();
    let transport = Box::new(LinkTransport::new(policy, seed ^ servers as u64));
    let mut cluster = ClashCluster::with_transport(config, servers, seed, transport)?;
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(seed).substream("netfault-sources");
    let sources = servers as u64 * 100;
    // 2 pkt/s per source ≈ the paper's workload-C rate; workload C piles
    // most of that onto one initial-depth group, which overloads it
    // against `fault_config()`'s lowered capacity and forces splitting.
    for i in 0..sources {
        let key = workload.sample_key(config.key_width, &mut rng);
        cluster.attach_source(i, key, 2.0)?;
    }
    for _ in 0..2 {
        cluster.run_load_check()?;
    }
    Ok(cluster)
}

/// (a) Locate/attach latency CDFs across link policies and ring sizes.
fn latency_cdfs(scale: f64, seed: u64) -> Result<Vec<LatencyRow>, ClashError> {
    let base_servers = ((1000.0 * scale) as usize).max(8);
    let mut rows = Vec::new();
    for (label, policy) in [("lan", LinkPolicy::lan()), ("wan", LinkPolicy::wan())] {
        for servers in [base_servers, base_servers * 4] {
            let mut cluster = heated_cluster(policy, servers, seed)?;
            // Measure fresh locates over the whole key space. The heating
            // phase's attach locates sit in the same histogram (and would
            // swamp the sweep at large scales), so snapshot it here and
            // report windowed quantiles over the sweep only.
            let heating = cluster.latency_metrics().locate.clone();
            let mut rng = DetRng::new(seed).substream("netfault-locates");
            let width = cluster.config().key_width;
            for _ in 0..2000 {
                let key = clash_keyspace::key::Key::from_bits_truncated(rng.next_u64(), width);
                cluster.locate(key)?;
            }
            let hist = &cluster.latency_metrics().locate;
            // One percent-grid pass: indices 49/94/98 are p50/p95/p99.
            let grid: Vec<f64> = (1..=100).map(|pct| f64::from(pct) / 100.0).collect();
            let quantiles = hist.quantiles_since(&heating, &grid);
            let cdf = grid
                .iter()
                .zip(&quantiles)
                .map(|(&frac, q)| (q.unwrap_or(0.0), frac))
                .collect();
            let (n_now, n_then) = (hist.summary().count(), heating.summary().count());
            let locates = n_now - n_then;
            let mean_ms = (hist.summary().mean() * n_now as f64
                - heating.summary().mean() * n_then as f64)
                / locates as f64;
            rows.push(LatencyRow {
                policy: label.to_owned(),
                servers,
                locates,
                p50_ms: quantiles[49].unwrap_or(0.0),
                p95_ms: quantiles[94].unwrap_or(0.0),
                p99_ms: quantiles[98].unwrap_or(0.0),
                mean_ms,
                mean_hops: cluster.net().stats().mean_hops(),
                cdf,
            });
        }
    }
    Ok(rows)
}

/// (b) Lossy-link sweep through the full scenario driver.
fn loss_sweep(scale: f64, seed: u64) -> Result<Vec<LossRow>, ClashError> {
    let mut rows = Vec::new();
    for p in [0.0, 0.02, 0.10] {
        let spec = ScenarioSpec {
            phases: vec![Phase {
                workload: WorkloadKind::C,
                duration: SimDuration::from_mins(30),
            }],
            seed,
            ..ScenarioSpec::paper().scaled(scale)
        };
        let policy = if p == 0.0 {
            LinkPolicy::wan()
        } else {
            LinkPolicy::lossy_wan(p)
        };
        let transport = Box::new(LinkTransport::new(policy, seed));
        let label = format!("CLASH/loss={p}");
        let (result, mut cluster) =
            SimDriver::with_transport(fault_config(), spec, label, transport)?
                .run_with_cluster()?;
        cluster.verify_consistency();
        let sweep = oracle_sweep(&mut cluster, 512, seed ^ 0x0010_C47E);
        let stats = cluster.transport_stats();
        rows.push(LossRow {
            drop_probability: p,
            messages: stats.messages,
            retransmissions: stats.retransmissions,
            retry_overhead: stats.retry_overhead(),
            locate_p95_ms: cluster
                .latency_metrics()
                .locate
                .quantile(0.95)
                .unwrap_or(0.0),
            splits: result.splits,
            merges: result.merges,
            sweep,
        });
    }
    Ok(rows)
}

/// (c) Partition/heal: sever the fleet into two islands, measure the
/// failure surface, heal, and verify the oracle re-agrees completely.
fn partition_heal(
    scale: f64,
    seed: u64,
    trace: clash_obs::TraceMode,
) -> Result<(PartitionReport, Vec<clash_obs::TraceEvent>), ClashError> {
    let servers = ((1000.0 * scale) as usize).max(8);
    let mut cluster = heated_cluster(LinkPolicy::lan(), servers, seed ^ 0xFA17)?;
    // Record from the partition onward: the heating phase is routine,
    // the deferral/heal timeline is what the trace is for.
    cluster.set_trace_sink(trace.make_sink());
    let ids = cluster.server_ids();
    let (left, right) = ids.split_at(ids.len() / 2);
    cluster.partition_network(&[left.to_vec(), right.to_vec()]);

    let mut rng = DetRng::new(seed).substream("netfault-partition");
    let width = cluster.config().key_width;
    let mut unreachable = 0u64;
    let mut ok = 0u64;
    let attempts = 512u64;
    for _ in 0..attempts {
        let key = clash_keyspace::key::Key::from_bits_truncated(rng.next_u64(), width);
        match cluster.locate(key) {
            Ok(_) => ok += 1,
            Err(ClashError::NetworkUnreachable { .. }) => unreachable += 1,
            Err(e) => return Err(e),
        }
    }
    // Load checks during the partition exercise the deferral paths
    // (lost reports, aborted cross-island splits/merges) — they must
    // leave the cluster consistent.
    cluster.run_load_check()?;
    cluster.verify_consistency();
    let transport_unreachable = cluster.transport_stats().unreachable;

    cluster.heal_partition();
    for _ in 0..4 {
        cluster.run_load_check()?;
    }
    cluster.verify_consistency();
    let sweep = oracle_sweep(&mut cluster, 512, seed ^ 0x4EA1);
    let report = PartitionReport {
        servers,
        attempted_during: attempts,
        unreachable_during: unreachable,
        ok_during: ok,
        transport_unreachable,
        sweep,
    };
    Ok((report, cluster.take_trace_events()))
}

/// Runs all three parts at the paper populations scaled by `scale`.
///
/// # Errors
///
/// Propagates cluster and scenario errors.
pub fn run(scale: f64) -> Result<NetfaultOutput, ClashError> {
    run_seeded(scale, None)
}

/// [`run`] with an optional root seed override (`None` uses the paper
/// scenario's seed).
///
/// # Errors
///
/// Propagates cluster and scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>) -> Result<NetfaultOutput, ClashError> {
    run_seeded_traced(scale, seed, clash_obs::TraceMode::Off)
}

/// [`run_seeded`] with the flight recorder on for the partition/heal
/// scenario (the other parts run untraced — their outputs are summary
/// statistics, not timelines).
///
/// # Errors
///
/// Propagates cluster and scenario errors.
pub fn run_seeded_traced(
    scale: f64,
    seed: Option<u64>,
    trace: clash_obs::TraceMode,
) -> Result<NetfaultOutput, ClashError> {
    let seed = seed.unwrap_or_else(default_seed);
    let (partition, partition_trace) = partition_heal(scale, seed, trace)?;
    Ok(NetfaultOutput {
        latency: latency_cdfs(scale, seed)?,
        loss: loss_sweep(scale, seed)?,
        partition,
        partition_trace,
        scale,
    })
}

/// Renders all three parts as ASCII tables.
pub fn render(out: &NetfaultOutput) -> String {
    let mut s = format!(
        "Netfault — latency, loss and partitions (scale {}):\n\n",
        out.scale
    );
    s.push_str("(a) Locate latency by link policy and ring size (virtual ms):\n");
    let rows: Vec<Vec<String>> = out
        .latency
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                r.servers.to_string(),
                r.locates.to_string(),
                report::f1(r.p50_ms),
                report::f1(r.p95_ms),
                report::f1(r.p99_ms),
                report::f1(r.mean_ms),
                report::f2(r.mean_hops),
            ]
        })
        .collect();
    s.push_str(&report::ascii_table(
        &[
            "policy",
            "servers",
            "locates",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean ms",
            "mean hops",
        ],
        &rows,
    ));
    s.push('\n');
    s.push_str("(b) Lossy WAN links — retry overhead vs locate latency:\n");
    let rows: Vec<Vec<String>> = out
        .loss
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}%", r.drop_probability * 100.0),
                r.messages.to_string(),
                r.retransmissions.to_string(),
                report::f2(r.retry_overhead),
                report::f1(r.locate_p95_ms),
                r.splits.to_string(),
                r.merges.to_string(),
                format!("{}/{}", r.sweep.agreed, r.sweep.checked),
            ]
        })
        .collect();
    s.push_str(&report::ascii_table(
        &[
            "loss",
            "messages",
            "retransmits",
            "retries/msg",
            "locate p95 ms",
            "splits",
            "merges",
            "oracle agreement",
        ],
        &rows,
    ));
    s.push('\n');
    let p = &out.partition;
    s.push_str("(c) Partition/heal (two islands, half the fleet each):\n");
    s.push_str(&report::ascii_table(
        &[
            "servers",
            "locates during",
            "unreachable",
            "ok",
            "transport refusals",
            "post-heal oracle agreement",
        ],
        &[vec![
            p.servers.to_string(),
            p.attempted_during.to_string(),
            p.unreachable_during.to_string(),
            p.ok_during.to_string(),
            p.transport_unreachable.to_string(),
            format!("{}/{}", p.sweep.agreed, p.sweep.checked),
        ]],
    ));
    s
}

/// Writes `netfault_latency_cdf.csv` and `netfault_loss.csv`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csvs(out: &NetfaultOutput, dir: &str) -> std::io::Result<()> {
    let mut rows = Vec::new();
    for r in &out.latency {
        for &(ms, frac) in &r.cdf {
            rows.push(vec![
                r.policy.clone(),
                r.servers.to_string(),
                report::f2(ms),
                report::f2(frac),
            ]);
        }
    }
    report::write_csv(
        format!("{dir}/netfault_latency_cdf.csv"),
        &["policy", "servers", "latency_ms", "cum_fraction"],
        &rows,
    )?;
    let rows: Vec<Vec<String>> = out
        .loss
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.drop_probability),
                r.messages.to_string(),
                r.retransmissions.to_string(),
                report::f2(r.retry_overhead),
                report::f2(r.locate_p95_ms),
                r.splits.to_string(),
                r.merges.to_string(),
                format!("{}", r.sweep.agreed),
                format!("{}", r.sweep.checked),
            ]
        })
        .collect();
    report::write_csv(
        format!("{dir}/netfault_loss.csv"),
        &[
            "drop_probability",
            "messages",
            "retransmissions",
            "retry_overhead",
            "locate_p95_ms",
            "splits",
            "merges",
            "oracle_agreed",
            "oracle_checked",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate: end-to-end at CI smoke scale — WAN latency
    /// dominates LAN, loss leaves protocol decisions untouched while
    /// inflating retries, and the partition heals to 100% oracle
    /// agreement.
    #[test]
    fn netfault_small_scale_end_to_end() {
        let out = run(0.02).unwrap();

        // (a) latency: WAN ≫ LAN at every ring size; percentiles ordered.
        for r in &out.latency {
            assert!(r.locates > 0);
            assert!(
                r.p50_ms <= r.p95_ms && r.p95_ms <= r.p99_ms,
                "{}/{}: percentiles ordered",
                r.policy,
                r.servers
            );
        }
        let lan = out.latency.iter().find(|r| r.policy == "lan").unwrap();
        let wan = out.latency.iter().find(|r| r.policy == "wan").unwrap();
        assert!(
            wan.p50_ms > 10.0 * lan.p50_ms.max(0.1),
            "WAN ({:.1} ms) must dwarf LAN ({:.1} ms)",
            wan.p50_ms,
            lan.p50_ms
        );
        // More servers → more hops → more latency under the same policy.
        let wan_big = out
            .latency
            .iter()
            .filter(|r| r.policy == "wan")
            .max_by_key(|r| r.servers)
            .unwrap();
        assert!(wan_big.mean_hops > wan.mean_hops || wan_big.servers == wan.servers);

        // (b) loss: identical protocol outcomes, growing retry overhead,
        // full oracle agreement.
        assert_eq!(out.loss.len(), 3);
        let baseline = &out.loss[0];
        assert_eq!(baseline.retransmissions, 0);
        assert!(
            baseline.splits > 0,
            "the loss scenario must exercise splits"
        );
        for r in &out.loss {
            assert_eq!(
                (r.splits, r.merges),
                (baseline.splits, baseline.merges),
                "loss must not change protocol decisions"
            );
            assert_eq!(
                r.sweep.agreed, r.sweep.checked,
                "oracle agreement under loss"
            );
        }
        assert!(
            out.loss[2].retry_overhead > out.loss[1].retry_overhead,
            "10% loss must out-retry 2%"
        );
        assert!(
            out.loss[2].locate_p95_ms > baseline.locate_p95_ms,
            "retries must inflate tail latency"
        );

        // (c) partition: failures during, 100% agreement after healing.
        let p = &out.partition;
        assert!(p.unreachable_during > 0, "the cut must sever some locates");
        assert!(p.ok_during > 0, "intra-island locates keep working");
        assert_eq!(
            p.sweep.agreed, p.sweep.checked,
            "post-heal oracle agreement must be 100%"
        );

        let rendered = render(&out);
        assert!(rendered.contains("Partition/heal"));
        assert!(rendered.contains("p95 ms"));
    }
}
