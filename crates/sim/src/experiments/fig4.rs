//! Figure 4: server load, utilization, depth variation and active servers
//! for CLASH vs the fixed-depth DHT baselines, over the 6-hour
//! A→B→C scenario.

use clash_core::error::ClashError;
use clash_workload::scenario::ScenarioSpec;
use clash_workload::skew::WorkloadKind;

use crate::driver::RunResult;
use crate::experiments::{figure4_variants, run_variants};
use crate::report;

/// The regenerated Figure 4 data: one run per variant.
#[derive(Debug, Clone)]
pub struct Fig4Output {
    /// Runs in the order CLASH, DHT(6), DHT(12), DHT(24).
    pub runs: Vec<RunResult>,
    /// The scenario that was played.
    pub spec: ScenarioSpec,
}

/// Runs the four variants (in parallel) over the paper scenario scaled by
/// `scale`.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(scale: f64) -> Result<Fig4Output, ClashError> {
    run_seeded(scale, None)
}

/// [`run`] with an optional root seed override (`None` keeps the paper
/// scenario's hard-coded seed, reproducing historical outputs exactly).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>) -> Result<Fig4Output, ClashError> {
    let mut spec = ScenarioSpec::paper().scaled(scale);
    if let Some(seed) = seed {
        spec.seed = seed;
    }
    run_spec(spec)
}

/// Runs the four variants over an explicit scenario.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_spec(spec: ScenarioSpec) -> Result<Fig4Output, ClashError> {
    let variants = figure4_variants()
        .into_iter()
        .map(|(config, label)| (config, spec.clone(), label))
        .collect();
    let runs = run_variants(variants)?;
    Ok(Fig4Output { runs, spec })
}

fn series_panel(
    out: &Fig4Output,
    title: &str,
    value: impl Fn(&crate::driver::SampleRow) -> String,
) -> String {
    let mut headers = vec!["t (h)".to_owned(), "workload".to_owned()];
    headers.extend(out.runs.iter().map(|r| r.label.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let n = out.runs.iter().map(|r| r.samples.len()).min().unwrap_or(0);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let base = &out.runs[0].samples[i];
        let mut row = vec![report::f2(base.time_hours), base.workload.to_string()];
        for r in &out.runs {
            row.push(value(&r.samples[i]));
        }
        rows.push(row);
    }
    format!("{title}\n{}", report::ascii_table(&header_refs, &rows))
}

/// Renders all four panels as ASCII tables, with a line chart of the
/// max-load panel (the paper's most prominent plot).
pub fn render(out: &Fig4Output) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Figure 4 — {} servers, {} sources, phases A/B/C\n\n",
        out.spec.servers, out.spec.sources
    ));
    let max_series: Vec<(&str, Vec<f64>)> = out
        .runs
        .iter()
        .map(|r| {
            (
                r.label.as_str(),
                r.samples.iter().map(|s| s.max_load_pct).collect(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, &[f64])> =
        max_series.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    s.push_str("Maximum server load (% of capacity) over the 6 hours:\n");
    s.push_str(&report::ascii_chart(&borrowed, 14));
    s.push('\n');
    s.push_str(&series_panel(
        out,
        "Panel: Maximum server load (% of capacity)",
        |r| report::f1(r.max_load_pct),
    ));
    s.push('\n');
    s.push_str(&series_panel(
        out,
        "Panel: Average load over active servers (% of capacity)",
        |r| report::f1(r.avg_active_load_pct),
    ));
    s.push('\n');
    s.push_str(&series_panel(out, "Panel: Active servers", |r| {
        r.active_servers.to_string()
    }));
    s.push('\n');
    // Depth panel is CLASH-only in the paper.
    let clash = &out.runs[0];
    let rows: Vec<Vec<String>> = clash
        .samples
        .iter()
        .map(|r| {
            vec![
                report::f2(r.time_hours),
                r.workload.to_string(),
                r.depth_min.to_string(),
                report::f2(r.depth_avg),
                r.depth_max.to_string(),
            ]
        })
        .collect();
    s.push_str("Panel: Depth variation (CLASH, starting depth 6)\n");
    s.push_str(&report::ascii_table(
        &["t (h)", "workload", "min", "avg", "max"],
        &rows,
    ));
    s.push('\n');
    s.push_str(&render_phase_summary(out));
    s
}

/// The per-phase summary table (the numbers quoted in §6.2).
pub fn render_phase_summary(out: &Fig4Output) -> String {
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        for run in &out.runs {
            if let Some(p) = run.phase(kind) {
                rows.push(vec![
                    kind.to_string(),
                    run.label.clone(),
                    report::f1(p.peak_load_pct),
                    report::f1(p.mean_max_load_pct),
                    report::f1(p.mean_avg_load_pct),
                    report::f1(p.mean_active_servers),
                    p.max_depth.to_string(),
                ]);
            }
        }
    }
    format!(
        "Per-phase summary\n{}",
        report::ascii_table(
            &[
                "workload",
                "variant",
                "peak load %",
                "mean max load %",
                "mean avg load %",
                "active servers",
                "max depth",
            ],
            &rows,
        )
    )
}

/// Writes `fig4_timeseries.csv` and `fig4_phases.csv`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csvs(out: &Fig4Output, dir: &str) -> std::io::Result<()> {
    let mut rows = Vec::new();
    for run in &out.runs {
        for r in &run.samples {
            rows.push(vec![
                run.label.clone(),
                report::f2(r.time_hours),
                r.workload.to_string(),
                report::f2(r.max_load_pct),
                report::f2(r.avg_active_load_pct),
                r.active_servers.to_string(),
                r.depth_min.to_string(),
                report::f2(r.depth_avg),
                r.depth_max.to_string(),
            ]);
        }
    }
    report::write_csv(
        format!("{dir}/fig4_timeseries.csv"),
        &[
            "variant",
            "time_hours",
            "workload",
            "max_load_pct",
            "avg_active_load_pct",
            "active_servers",
            "depth_min",
            "depth_avg",
            "depth_max",
        ],
        &rows,
    )?;
    let mut rows = Vec::new();
    for run in &out.runs {
        for p in &run.phases {
            rows.push(vec![
                run.label.clone(),
                p.workload.to_string(),
                report::f2(p.peak_load_pct),
                report::f2(p.mean_max_load_pct),
                report::f2(p.mean_avg_load_pct),
                report::f2(p.mean_active_servers),
                p.max_depth.to_string(),
            ]);
        }
    }
    report::write_csv(
        format!("{dir}/fig4_phases.csv"),
        &[
            "variant",
            "workload",
            "peak_load_pct",
            "mean_max_load_pct",
            "mean_avg_load_pct",
            "mean_active_servers",
            "max_depth",
        ],
        &rows,
    )
}

/// A small scenario with genuine load pressure for fast tests.
///
/// Downscaling servers below the 64 bootstrap groups removes the paper's
/// relative pressure (64 groups blanket 24 servers), so tests restore it
/// by lowering the capacity: 3000 sources × 2 pkt/s under workload C put
/// the hottest depth-6 group at ~4.5× a 400-unit capacity.
#[cfg(test)]
pub(crate) fn pressured_test_variants(
) -> (ScenarioSpec, Vec<(clash_core::config::ClashConfig, String)>) {
    use clash_core::config::ClashConfig;
    use clash_simkernel::time::SimDuration;
    let spec = ScenarioSpec {
        servers: 24,
        sources: 3000,
        ..ScenarioSpec::paper().with_phase_duration(SimDuration::from_mins(15))
    };
    let variants = figure4_variants()
        .into_iter()
        .map(|(config, label)| {
            (
                ClashConfig {
                    capacity: 400.0,
                    ..config
                },
                label,
            )
        })
        .collect();
    (spec, variants)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast, small-scale figure-4 run still shows the paper's
    /// qualitative result: CLASH bounds max load where DHT(6) explodes,
    /// and CLASH uses fewer servers than DHT(24).
    #[test]
    fn small_scale_fig4_shape() {
        let (spec, variants) = pressured_test_variants();
        let runs = run_variants(
            variants
                .into_iter()
                .map(|(c, l)| (c, spec.clone(), l))
                .collect(),
        )
        .unwrap();
        let out = Fig4Output { runs, spec };
        assert_eq!(out.runs.len(), 4);
        let clash = &out.runs[0];
        let dht6 = &out.runs[1];
        let dht24 = &out.runs[3];

        let c_phase = clash.phase(WorkloadKind::C).unwrap();
        let d6_c = dht6.phase(WorkloadKind::C).unwrap();
        // Under the heavy skew, the non-adaptive DHT(6) sustains a max
        // load a multiple of CLASH's (which sheds after the transient).
        assert!(
            d6_c.mean_max_load_pct > 2.0 * c_phase.mean_max_load_pct,
            "DHT(6) mean max {:.0}% vs CLASH {:.0}%",
            d6_c.mean_max_load_pct,
            c_phase.mean_max_load_pct
        );
        // CLASH uses fewer active servers than DHT(24).
        let d24_c = dht24.phase(WorkloadKind::C).unwrap();
        assert!(
            c_phase.mean_active_servers < d24_c.mean_active_servers,
            "CLASH {} vs DHT(24) {}",
            c_phase.mean_active_servers,
            d24_c.mean_active_servers
        );
        let rendered = render(&out);
        assert!(rendered.contains("Panel: Maximum server load"));
        assert!(rendered.contains("DHT(24)"));
    }
}
