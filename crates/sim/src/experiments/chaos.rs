//! Chaos campaign experiment: seed-derived fault-injection schedules
//! with invariant checking and automatic repro shrinking.
//!
//! This is the driver face of ROADMAP item 5 (adversarial scenario
//! matrix): `clash-chaos` composes crash bursts, ring-correlated
//! failures, partition storms, link flapping, gray degradation, churn
//! avalanches, and flash crowds into random schedules; every schedule
//! is replayed against a fresh cluster with the full invariant suite.
//! A failing schedule is delta-debugged to a 1-minimal repro and
//! written as `chaos_repro_<index>.json` in the output directory.

use std::fs;
use std::io;
use std::path::Path;

use clash_chaos::{render_repro, run_campaign, CampaignReport, ChaosOptions};
use clash_workload::FaultKind;

use crate::report;

/// Campaign seed used when `--seed` is absent (fixed, like every other
/// experiment's historical default, so CI runs are reproducible).
pub const DEFAULT_CAMPAIGN_SEED: u64 = 0xC1A5_4CA0;

/// Everything a chaos run produced: the campaign report plus rendered
/// repro documents for any failures.
#[derive(Debug, Clone)]
pub struct ChaosOutput {
    /// The cell options the campaign ran under.
    pub options: ChaosOptions,
    /// Aggregated campaign results.
    pub report: CampaignReport,
    /// `(file name, contents)` of one repro document per failure.
    pub repro_files: Vec<(String, String)>,
}

/// Runs a campaign of `schedules` schedules against a cell scaled by
/// `scale` (1.0 = the default 16-server/96-source cell).
#[must_use]
pub fn run_seeded(scale: f64, schedules: u64, seed: Option<u64>) -> ChaosOutput {
    let options = ChaosOptions::scaled(scale);
    let campaign_seed = seed.unwrap_or(DEFAULT_CAMPAIGN_SEED);
    let report = run_campaign(&options, campaign_seed, schedules);
    let repro_files = report
        .failures
        .iter()
        .map(|failure| {
            (
                format!("chaos_repro_{}.json", failure.schedule_index),
                render_repro(&options, campaign_seed, failure),
            )
        })
        .collect();
    ChaosOutput {
        options,
        report,
        repro_files,
    }
}

/// The campaign report table: totals, per-class fault accounting, and
/// one line per (shrunk) failure.
#[must_use]
pub fn render(out: &ChaosOutput) -> String {
    let r = &out.report;
    let mut s = format!(
        "chaos campaign (seed {:#x}, {} servers, {} sources, r = {}):\n",
        r.campaign_seed, out.options.servers, out.options.sources, out.options.replication
    );
    let summary_rows = vec![
        vec!["schedules run".to_owned(), r.schedules_run.to_string()],
        vec!["faults injected".to_owned(), r.faults_injected.to_string()],
        vec![
            "invariant checks passed".to_owned(),
            r.invariant_checks.to_string(),
        ],
        vec![
            "worst convergence (load checks)".to_owned(),
            r.worst_convergence_checks.to_string(),
        ],
        vec![
            "invariant violations".to_owned(),
            r.failures.len().to_string(),
        ],
    ];
    s.push_str(&report::ascii_table(&["metric", "value"], &summary_rows));
    s.push('\n');
    let class_rows: Vec<Vec<String>> = FaultKind::CLASS_LABELS
        .iter()
        .zip(r.faults_by_class)
        .map(|(label, n)| vec![(*label).to_owned(), n.to_string()])
        .collect();
    s.push_str(&report::ascii_table(
        &["fault class", "events"],
        &class_rows,
    ));
    for failure in &r.failures {
        s.push_str(&format!(
            "\nVIOLATION schedule {}: {} — {} (shrunk {} -> {} events in {} replays)\n",
            failure.schedule_index,
            failure.violation.invariant,
            failure.violation.detail,
            failure.schedule.events.len(),
            failure.minimal.events.len(),
            failure.shrink_replays,
        ));
    }
    s
}

/// Writes the campaign CSVs and any repro documents into `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_outputs(out: &ChaosOutput, dir: &str) -> io::Result<()> {
    let r = &out.report;
    let summary_rows = vec![vec![
        format!("{:#x}", r.campaign_seed),
        r.schedules_run.to_string(),
        r.faults_injected.to_string(),
        r.invariant_checks.to_string(),
        r.worst_convergence_checks.to_string(),
        r.failures.len().to_string(),
    ]];
    report::write_csv(
        Path::new(dir).join("chaos_summary.csv"),
        &[
            "campaign_seed",
            "schedules_run",
            "faults_injected",
            "invariant_checks",
            "worst_convergence_checks",
            "violations",
        ],
        &summary_rows,
    )?;
    let class_rows: Vec<Vec<String>> = FaultKind::CLASS_LABELS
        .iter()
        .zip(r.faults_by_class)
        .map(|(label, n)| vec![(*label).to_owned(), n.to_string()])
        .collect();
    report::write_csv(
        Path::new(dir).join("chaos_faults_by_class.csv"),
        &["fault_class", "events"],
        &class_rows,
    )?;
    for (name, contents) in &out.repro_files {
        fs::write(Path::new(dir).join(name), contents)?;
    }
    Ok(())
}
