//! Figure 5: CLASH communication overhead in messages/sec/server, for
//! workloads A/B/C × `Ld ∈ {50, 1000}` × {no query clients, 50k query
//! clients}.
//!
//! Each bar of the paper's figure becomes one steady-state single-phase
//! run; rates are measured after a warm-up window (the paper's transient).

use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_simkernel::time::SimDuration;
use clash_workload::scenario::{Phase, ScenarioSpec};
use clash_workload::skew::WorkloadKind;

use crate::driver::RunResult;
use crate::experiments::run_variants;
use crate::report;

/// One bar of Figure 5.
#[derive(Debug, Clone)]
pub struct OverheadBar {
    /// The workload.
    pub workload: WorkloadKind,
    /// Mean virtual-stream length in packets.
    pub stream_packets: f64,
    /// Query-client population (0 = the paper's case A).
    pub query_clients: usize,
    /// Steady-state control messages/sec/server (full DHT-hop charging).
    pub ctrl_msgs: f64,
    /// Steady-state protocol-only messages/sec/server.
    pub proto_msgs: f64,
    /// Steady-state total messages/sec/server (incl. state transfer).
    pub total_msgs: f64,
}

/// The regenerated Figure 5 data.
#[derive(Debug, Clone)]
pub struct Fig5Output {
    /// All 12 bars (3 workloads × 2 stream lengths × 2 query settings).
    pub bars: Vec<OverheadBar>,
    /// Scale factor applied to the paper populations.
    pub scale: f64,
}

fn steady_state_rates(run: &RunResult, warmup_hours: f64) -> (f64, f64, f64) {
    let rows: Vec<_> = run
        .samples
        .iter()
        .filter(|r| r.time_hours >= warmup_hours)
        .collect();
    if rows.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let n = rows.len() as f64;
    (
        rows.iter()
            .map(|r| r.ctrl_msgs_per_sec_per_server)
            .sum::<f64>()
            / n,
        rows.iter()
            .map(|r| r.proto_msgs_per_sec_per_server)
            .sum::<f64>()
            / n,
        rows.iter()
            .map(|r| r.total_msgs_per_sec_per_server)
            .sum::<f64>()
            / n,
    )
}

/// Runs all 12 bars (in parallel) at the paper populations scaled by
/// `scale`. Each bar is a 40-minute steady-state run with a 10-minute
/// warm-up.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(scale: f64) -> Result<Fig5Output, ClashError> {
    run_seeded(scale, None)
}

/// [`run`] with an optional root seed override (`None` keeps the paper
/// scenario's hard-coded seed).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>) -> Result<Fig5Output, ClashError> {
    let mut base = ScenarioSpec::paper().scaled(scale);
    if let Some(seed) = seed {
        base.seed = seed;
    }
    let query_population = (50_000.0 * scale).round().max(1.0) as usize;
    let mut variants = Vec::new();
    let mut meta = Vec::new();
    for &workload in &WorkloadKind::ALL {
        for &ld in &[50.0, 1000.0] {
            for &queries in &[0usize, query_population] {
                let spec = ScenarioSpec {
                    phases: vec![Phase {
                        workload,
                        duration: SimDuration::from_mins(40),
                    }],
                    query_clients: queries,
                    mean_stream_packets: ld,
                    ..base.clone()
                };
                let label = format!("{workload}/Ld={ld}/q={queries}");
                variants.push((ClashConfig::paper(), spec, label));
                meta.push((workload, ld, queries));
            }
        }
    }
    let runs = run_variants(variants)?;
    let warmup = 10.0 / 60.0; // hours
    let bars = runs
        .iter()
        .zip(meta)
        .map(|(run, (workload, ld, queries))| {
            let (ctrl, proto, total) = steady_state_rates(run, warmup);
            OverheadBar {
                workload,
                stream_packets: ld,
                query_clients: queries,
                ctrl_msgs: ctrl,
                proto_msgs: proto,
                total_msgs: total,
            }
        })
        .collect();
    Ok(Fig5Output { bars, scale })
}

/// Renders the figure as a table grouped like the paper's bar chart.
pub fn render(out: &Fig5Output) -> String {
    let mut rows = Vec::new();
    for bar in &out.bars {
        rows.push(vec![
            if bar.query_clients == 0 {
                "no queries".to_owned()
            } else {
                format!("{} query clients", bar.query_clients)
            },
            bar.workload.to_string(),
            format!("{}", bar.stream_packets),
            report::f2(bar.ctrl_msgs),
            report::f2(bar.proto_msgs),
            report::f2(bar.total_msgs),
        ]);
    }
    format!(
        "Figure 5 — communication overhead (scale {}): messages/sec/server\n{}",
        out.scale,
        report::ascii_table(
            &[
                "case",
                "workload",
                "Ld (pkts)",
                "ctrl msgs/s/srv (incl. DHT hops)",
                "protocol-only msgs/s/srv",
                "total msgs/s/srv",
            ],
            &rows,
        )
    )
}

/// Writes `fig5_overhead.csv`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csvs(out: &Fig5Output, dir: &str) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = out
        .bars
        .iter()
        .map(|b| {
            vec![
                b.workload.to_string(),
                format!("{}", b.stream_packets),
                b.query_clients.to_string(),
                report::f2(b.ctrl_msgs),
                report::f2(b.proto_msgs),
                report::f2(b.total_msgs),
            ]
        })
        .collect();
    report::write_csv(
        format!("{dir}/fig5_overhead.csv"),
        &[
            "workload",
            "stream_packets",
            "query_clients",
            "ctrl_msgs_per_sec_per_server",
            "proto_msgs_per_sec_per_server",
            "total_msgs_per_sec_per_server",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// At small scale the qualitative Figure 5 claims hold: shorter
    /// streams (Ld = 50) cost far more than long ones (Ld = 1000), and
    /// query clients add state-transfer overhead on top.
    #[test]
    fn overhead_shape_small_scale() {
        let out = run(0.01).unwrap(); // 10 servers, 1000 sources
        assert_eq!(out.bars.len(), 12);
        let get = |wl: WorkloadKind, ld: f64, q: bool| -> &OverheadBar {
            out.bars
                .iter()
                .find(|b| {
                    b.workload == wl && b.stream_packets == ld && ((b.query_clients > 0) == q)
                })
                .expect("bar exists")
        };
        for wl in WorkloadKind::ALL {
            let short = get(wl, 50.0, false);
            let long = get(wl, 1000.0, false);
            assert!(
                short.ctrl_msgs > 3.0 * long.ctrl_msgs,
                "workload {wl}: Ld=50 ({:.2}) should far exceed Ld=1000 ({:.2})",
                short.ctrl_msgs,
                long.ctrl_msgs
            );
        }
        // Query clients add total overhead over the no-query case.
        let with_q = get(WorkloadKind::B, 1000.0, true);
        let without_q = get(WorkloadKind::B, 1000.0, false);
        assert!(with_q.total_msgs > without_q.total_msgs);
        let rendered = render(&out);
        assert!(rendered.contains("messages/sec/server"));
    }
}
