//! Figure 3: the key-frequency distributions of workloads A, B and C.
//!
//! The paper plots, for each workload, the frequency of each of the 256
//! values of the 8-bit base portion of the key. We regenerate the exact
//! series (as expected packets/sec for the paper's populations) plus an
//! ASCII rendering of the three curves.

use clash_workload::skew::{Workload, WorkloadKind};

use crate::report;

/// The regenerated Figure 3 data.
#[derive(Debug, Clone)]
pub struct Fig3Output {
    /// `(workload, per-base-value expected packets/sec)`.
    pub series: Vec<(WorkloadKind, Vec<f64>)>,
    /// Source population used for scaling.
    pub sources: usize,
}

/// Computes the three series at a given source population (paper:
/// 100,000).
pub fn run(sources: usize) -> Fig3Output {
    let series = WorkloadKind::ALL
        .iter()
        .map(|&kind| {
            let w = Workload::paper(kind);
            let values: Vec<f64> = w
                .figure3_series(sources, kind.source_rate())
                .into_iter()
                .map(|(_, pkts)| pkts)
                .collect();
            (kind, values)
        })
        .collect();
    Fig3Output { series, sources }
}

/// Renders the figure as summary statistics plus coarse ASCII curves.
pub fn render(out: &Fig3Output) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Figure 3 — workload key distributions over the 8-bit base \
         ({} sources)\n\n",
        out.sources
    ));
    // Summary table.
    let rows: Vec<Vec<String>> = out
        .series
        .iter()
        .map(|(kind, values)| {
            let total: f64 = values.iter().sum();
            let peak = values.iter().copied().fold(0.0, f64::max);
            let peak_at = values
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let uniform = total / values.len() as f64;
            vec![
                kind.to_string(),
                report::f1(total),
                report::f1(peak),
                peak_at.to_string(),
                report::f2(peak / uniform),
            ]
        })
        .collect();
    s.push_str(&report::ascii_table(
        &[
            "workload",
            "total pkts/s",
            "peak pkts/s",
            "peak at base",
            "peak/uniform ratio",
        ],
        &rows,
    ));
    s.push('\n');
    // Coarse curves: 32 buckets of 8 values, bar height 16.
    for (kind, values) in &out.series {
        let buckets: Vec<f64> = values
            .chunks(8)
            .map(|c| c.iter().sum::<f64>() / c.len() as f64)
            .collect();
        let max = buckets.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
        s.push_str(&format!(
            "workload {kind} (each column = 8 base values, peak normalized):\n"
        ));
        for level in (1..=8).rev() {
            let threshold = max * level as f64 / 8.0;
            let line: String = buckets
                .iter()
                .map(|&b| if b >= threshold - 1e-12 { '#' } else { ' ' })
                .collect();
            s.push_str(&format!("  |{line}|\n"));
        }
        s.push_str(&format!("  +{}+\n\n", "-".repeat(buckets.len())));
    }
    s
}

/// Writes `fig3_workloads.csv` with one row per base value.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csvs(out: &Fig3Output, dir: &str) -> std::io::Result<()> {
    let mut rows = Vec::new();
    let n = out.series.first().map(|(_, v)| v.len()).unwrap_or(0);
    for v in 0..n {
        rows.push(vec![
            v.to_string(),
            report::f2(out.series[0].1[v]),
            report::f2(out.series[1].1[v]),
            report::f2(out.series[2].1[v]),
        ]);
    }
    report::write_csv(
        format!("{dir}/fig3_workloads.csv"),
        &[
            "base_value",
            "A_pkts_per_sec",
            "B_pkts_per_sec",
            "C_pkts_per_sec",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_total_matches_population_rates() {
        let out = run(100_000);
        for (kind, values) in &out.series {
            let total: f64 = values.iter().sum();
            let expected = 100_000.0 * kind.source_rate();
            assert!(
                (total - expected).abs() < 1e-6,
                "workload {kind}: {total} vs {expected}"
            );
        }
    }

    #[test]
    fn skew_ranking_visible_in_peaks() {
        let out = run(100_000);
        let peaks: Vec<f64> = out
            .series
            .iter()
            .map(|(_, v)| v.iter().copied().fold(0.0, f64::max))
            .collect();
        assert!(peaks[0] < peaks[1] && peaks[1] < peaks[2]);
    }

    #[test]
    fn render_contains_all_workloads() {
        let s = render(&run(1000));
        for name in ["workload A", "workload B", "workload C"] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
