//! Scale experiment (beyond the paper's evaluation): mechanical cost of
//! the protocol core as the ring grows past the paper's largest cell.
//!
//! The paper's headline claim is *internet scale*, yet its evaluation
//! stops at 1000 servers (Figure 4). This experiment sweeps ring sizes
//! from the paper's cell up through ~10× it, under churn and a WAN
//! transport, and reports the *simulator-mechanical* cost — wall-clock,
//! events per wall-second, and the cost of one cluster-wide load check —
//! so every future PR has a perf trajectory to answer to
//! (`BENCH_scale.json` at the repo root).
//!
//! Two cell families:
//!
//! * **churn cells** — the full driver loop: workload C over
//!   `N ∈ {1000, 4000, 10000}` servers for 30 virtual minutes, plus a
//!   100 000-server cell at reduced source density and duration (all
//!   scaled by `--scale`), with sustained joins/drains/crashes,
//!   replication r = 2, WAN links. Wall-clock here mixes locates, key
//!   churn, membership and load checks — the end-to-end number.
//! * **load-check cells** — the isolated hot path this repo's perf work
//!   targets: a mostly idle ring (sources ≪ servers, nothing ever
//!   overloads) where a fixed budget of `run_load_check` calls, with a
//!   trickle of source moves between them, dominates the wall-clock.
//!   Before the dirty-tracking optimization each check swept every
//!   server and every replica group (O(cluster)); after it the cost
//!   scales with what actually changed.
//!
//! All cells are deterministic for a fixed `--seed`; only the wall-clock
//! fields vary between runs of the same build.

use std::time::Instant;

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_core::error::ClashError;
use clash_obs::{CheckPhase, PhaseProfile, WallProfiler};
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::SimDuration;
use clash_transport::{LinkPolicy, LinkTransport};
use clash_workload::churn::ChurnSpec;
use clash_workload::scenario::{Phase, ScenarioSpec};
use clash_workload::skew::{Workload, WorkloadKind};

use crate::driver::SimDriver;
use crate::report;

/// Which mechanical regime a cell measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellKind {
    /// Full driver run under churn: locates + key churn + membership +
    /// load checks.
    Churn,
    /// Isolated load-check loop on a mostly idle ring: the
    /// O(cluster)-vs-O(changed) cell.
    LoadCheck,
}

impl CellKind {
    fn name(self) -> &'static str {
        match self {
            CellKind::Churn => "churn",
            CellKind::LoadCheck => "loadcheck",
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// `churn_<servers>` or `loadcheck_<servers>`.
    pub name: String,
    /// The regime measured.
    pub kind: CellKind,
    /// Ring size at the start of the run.
    pub servers: usize,
    /// Streaming sources attached.
    pub sources: usize,
    /// Work units: driver events for churn cells; load checks + source
    /// moves for load-check cells.
    pub events: u64,
    /// Wall-clock of the measured section, milliseconds.
    pub wall_ms: f64,
    /// `events / wall seconds` — the headline throughput number.
    pub events_per_sec: f64,
    /// Cluster-wide load checks performed in the measured section.
    pub load_checks: u64,
    /// Mean wall-clock cost of one load check, milliseconds, timed
    /// around the `run_load_check` calls alone — after the batch flush,
    /// so deferred locate routing is never billed to the checks. For
    /// churn cells the driver measures this inside the event loop; for
    /// load-check cells it is timed directly.
    pub mean_check_ms: f64,
    /// Worst single load check in the cell, wall-clock milliseconds —
    /// the tail the mean hides (a split storm or recovery burst lands in
    /// one check).
    pub max_check_ms: f64,
    /// Where the measured wall-clock went, per named phase of the check
    /// and flush pipeline.
    pub phase_ms: PhaseProfile,
    /// Splits performed.
    pub splits: u64,
    /// Merges performed.
    pub merges: u64,
    /// Membership events (joins + leaves + crashes; churn cells only).
    pub membership_events: u64,
    /// 95th-percentile locate latency over the whole run, virtual ms.
    pub locate_p95_ms: f64,
}

/// The scale experiment's output.
#[derive(Debug, Clone)]
pub struct ScaleOutput {
    /// All cells, churn sweep first, then load-check cells.
    pub cells: Vec<ScaleCell>,
    /// Scale factor applied to the ring sizes.
    pub scale: f64,
    /// Root seed in force.
    pub seed: u64,
    /// Ring-arc shard count the cells ran with (0 = sequential). The
    /// deterministic fields are identical for every value — only the
    /// wall-clock columns may move.
    pub shards: u32,
}

impl ScaleOutput {
    /// The smallest `events_per_sec` across load-check cells — the number
    /// the CI perf-smoke floor is checked against (the load-check cells
    /// are the regime this repo's perf work targets, and the least noisy:
    /// no population build-up in the measured section).
    pub fn min_loadcheck_events_per_sec(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter(|c| c.kind == CellKind::LoadCheck)
            .map(|c| c.events_per_sec)
            .min_by(f64::total_cmp)
    }

    /// The smallest `events_per_sec` across churn cells — the number the
    /// CI churn smoke (a single filtered cell, e.g. `churn_1000000` at
    /// `--scale 0.02`) checks its floor against.
    pub fn min_churn_events_per_sec(&self) -> Option<f64> {
        self.cells
            .iter()
            .filter(|c| c.kind == CellKind::Churn)
            .map(|c| c.events_per_sec)
            .min_by(f64::total_cmp)
    }
}

/// Default root seed (overridable with `--seed`).
pub const DEFAULT_SEED: u64 = 0xC1A5_5CA1;

/// The churn sweep at `--scale 1.0` as `(servers, sources_per_server,
/// virtual minutes)`: the paper's Figure-4 cell, up to ~10× it at the
/// paper-regime density, a 100k-server cell, and a 1M-server cell, the
/// last two at reduced density and duration (the density and duration
/// shrink so the cells measure ring mechanics at two and three orders
/// of magnitude past the paper's evaluation without the population cost
/// swamping the sweep). Check cadence and churn rate scale with each
/// cell's minutes (see [`churn_cell`]), so every cell observes a
/// comparable number of checks and membership events per run.
pub const CHURN_CELLS: [(usize, usize, u64); 5] = [
    (1000, 10, 30),
    (4000, 10, 30),
    (10_000, 10, 30),
    (100_000, 2, 10),
    (1_000_000, 1, 5),
];

/// Ring sizes of the load-check cells at `--scale 1.0`.
pub const LOADCHECK_RING_SIZES: [usize; 2] = [4000, 10_000];

/// Load checks timed per load-check cell.
pub const LOADCHECK_CHECKS: u64 = 200;

/// Source moves between consecutive timed load checks (keeps a trickle
/// of real dirt flowing, as any live system would have).
pub const LOADCHECK_MOVES_PER_CHECK: u64 = 2;

fn scaled(n: usize, scale: f64, floor: usize) -> usize {
    ((n as f64 * scale).round() as usize).max(floor)
}

/// Per-check mean from the driver's counted totals. The zero-check case
/// is explicit: a cell whose run fired no load checks reports 0.0, not
/// the whole `check_wall_ms` masquerading as a single check's cost
/// (dividing by `load_checks.max(1)` used to do exactly that).
fn mean_check_ms(check_wall_ms: f64, load_checks: u64) -> f64 {
    if load_checks == 0 {
        0.0
    } else {
        check_wall_ms / load_checks as f64
    }
}

/// One full-driver churn cell: `servers` ring, `sources_per_server`
/// streams each, workload C for `mins` virtual minutes with sustained
/// churn, r = 2, WAN.
fn churn_cell(
    servers: usize,
    sources_per_server: usize,
    mins: u64,
    shards: u32,
    seed: u64,
) -> Result<ScaleCell, ClashError> {
    let sources = servers * sources_per_server;
    // The paper's density is 100 sources/server; scale the capacity with
    // the cell's density so split/merge dynamics match the paper's
    // regime at every ring size.
    let config = ClashConfig {
        capacity: ClashConfig::paper().capacity * sources_per_server as f64 / 100.0,
        ..ClashConfig::paper()
    }
    .with_replication(2)
    .with_shards(shards);
    // Scale every period with the cell's virtual minutes so each cell
    // observes a comparable number of checks (~30) and membership
    // events (~7 expected) regardless of duration: before this, the
    // short 100k cell ran 9 checks and 2 membership events against
    // 29/11 for the 30-minute cells, so its phase profile and
    // membership costs weren't comparable across the column. All base
    // periods are multiples of 30 s, so `secs * mins / 30` is exact —
    // 30-minute cells keep bit-identical schedules.
    let cadence = |secs: u64| SimDuration::from_secs((secs * mins / 30).max(1));
    let spec = ScenarioSpec {
        servers,
        sources,
        query_clients: 0,
        phases: vec![Phase {
            workload: WorkloadKind::C,
            duration: SimDuration::from_mins(mins),
        }],
        load_check_period: cadence(60),
        sample_period: cadence(5 * 60),
        seed,
        churn: Some(
            ChurnSpec::sustained(
                cadence(10 * 60),
                cadence(12 * 60),
                (servers / 2).max(2),
                servers * 2,
            )
            .with_crashes(cadence(20 * 60)),
        ),
        ..ScenarioSpec::paper()
    };
    let transport = Box::new(LinkTransport::new(LinkPolicy::wan(), seed));
    let label = format!("scale/churn_{servers}");
    let t0 = Instant::now();
    let (result, cluster) =
        SimDriver::with_transport(config, spec, label, transport)?.run_with_cluster()?;
    let wall = t0.elapsed();
    cluster.verify_consistency();
    let wall_ms = wall.as_secs_f64() * 1e3;
    Ok(ScaleCell {
        name: format!("churn_{servers}"),
        kind: CellKind::Churn,
        servers,
        sources,
        events: result.events,
        wall_ms,
        events_per_sec: result.events as f64 / wall.as_secs_f64().max(1e-9),
        // Measured by the driver, not derived from the spec: the driver
        // counts the checks that actually fired and times them after
        // the batch flush (a derived count once masked this column
        // reporting 0.0 for every churn cell).
        load_checks: result.load_checks,
        mean_check_ms: mean_check_ms(result.check_wall_ms, result.load_checks),
        max_check_ms: result.max_check_ms,
        phase_ms: result.phase_profile,
        splits: result.splits,
        merges: result.merges,
        membership_events: result.joins + result.leaves + result.crashes,
        locate_p95_ms: cluster
            .latency_metrics()
            .locate
            .quantile(0.95)
            .unwrap_or(0.0),
    })
}

/// One load-check cell: a `servers` ring with `servers / 2` sources —
/// nothing ever overloads — timing [`LOADCHECK_CHECKS`] cluster-wide
/// checks with [`LOADCHECK_MOVES_PER_CHECK`] source moves between each.
fn loadcheck_cell(servers: usize, shards: u32, seed: u64) -> Result<ScaleCell, ClashError> {
    let sources = (servers / 2).max(8);
    let config = ClashConfig::paper().with_replication(2).with_shards(shards);
    let transport = Box::new(LinkTransport::new(LinkPolicy::wan(), seed ^ 0x10AD));
    let mut cluster = ClashCluster::with_transport(config, servers, seed, transport)?;
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(seed ^ 0x5CA1_E0AD);
    for i in 0..sources as u64 {
        let key = workload.sample_key(config.key_width, &mut rng);
        cluster.attach_source(i, key, 2.0)?;
    }
    // Settle: reports flow, replicas seed, candidate state converges.
    for _ in 0..3 {
        cluster.run_load_check()?;
    }
    // Attach the phase profiler only now, so the phase columns cover the
    // measured section alone (the settle checks stay unprofiled).
    cluster.set_profiler(Box::new(WallProfiler::default()));

    let t0 = Instant::now();
    let mut moves = 0u64;
    // `mean_check_ms` accumulates around the checks *only*: the source
    // moves between checks keep realistic dirt flowing but their WAN
    // locate cost must not be attributed to the load-check hot path.
    let mut check_wall = std::time::Duration::ZERO;
    let mut max_check = std::time::Duration::ZERO;
    for _ in 0..LOADCHECK_CHECKS {
        for _ in 0..LOADCHECK_MOVES_PER_CHECK {
            let source = rng.next_u64() % sources as u64;
            if cluster.has_source(source) {
                let key = workload.sample_key(config.key_width, &mut rng);
                cluster.move_source(source, key)?;
                moves += 1;
            }
        }
        // Route and charge the moves' batched locate work outside the
        // check timer — it is move cost, not check cost.
        cluster.flush_batch()?;
        let c0 = Instant::now();
        cluster.run_load_check()?;
        let this_check = c0.elapsed();
        check_wall += this_check;
        max_check = max_check.max(this_check);
    }
    let wall = t0.elapsed();
    cluster.verify_consistency();
    let stats = cluster.message_stats();
    Ok(ScaleCell {
        name: format!("loadcheck_{servers}"),
        kind: CellKind::LoadCheck,
        servers,
        sources,
        events: LOADCHECK_CHECKS + moves,
        wall_ms: wall.as_secs_f64() * 1e3,
        events_per_sec: (LOADCHECK_CHECKS + moves) as f64 / wall.as_secs_f64().max(1e-9),
        load_checks: LOADCHECK_CHECKS,
        mean_check_ms: check_wall.as_secs_f64() * 1e3 / LOADCHECK_CHECKS as f64,
        max_check_ms: max_check.as_secs_f64() * 1e3,
        phase_ms: cluster.phase_profile(),
        splits: stats.splits,
        merges: stats.merges,
        membership_events: 0,
        locate_p95_ms: cluster
            .latency_metrics()
            .locate
            .quantile(0.95)
            .unwrap_or(0.0),
    })
}

/// Runs the full sweep at `scale` with the default seed, sequentially.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run(scale: f64) -> Result<ScaleOutput, ClashError> {
    run_seeded(scale, None, 0)
}

/// [`run`] with an optional root seed override and a ring-arc shard
/// count for the batched locate path (0 = sequential; the deterministic
/// outputs are identical either way).
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_seeded(scale: f64, seed: Option<u64>, shards: u32) -> Result<ScaleOutput, ClashError> {
    run_filtered(scale, seed, shards, None)
}

/// [`run_seeded`] restricted to a comma-separated list of exact cell
/// names (e.g. `churn_1000000` or `churn_1000,loadcheck_4000`). `None`
/// runs the full sweep. Matching is exact, not substring — the churn
/// column's names are prefixes of each other (`churn_1000` …
/// `churn_1000000`), so a substring filter would silently drag the
/// 100k/1M cells into what looks like a quick small-cell run. Names are
/// the canonical unscaled ones whatever `--scale` says. Each cell is
/// independent — a filtered run's cells are bit-identical to the same
/// cells of the full sweep.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn run_filtered(
    scale: f64,
    seed: Option<u64>,
    shards: u32,
    filter: Option<&str>,
) -> Result<ScaleOutput, ClashError> {
    let seed = seed.unwrap_or(DEFAULT_SEED);
    let wanted = |name: &str| filter.is_none_or(|f| f.split(',').any(|tok| tok.trim() == name));
    let mut cells = Vec::new();
    for &(n, density, mins) in &CHURN_CELLS {
        if !wanted(&format!("churn_{n}")) {
            continue;
        }
        let servers = scaled(n, scale, 16);
        eprintln!("[scale] churn cell: {servers} servers...");
        cells.push(churn_cell(servers, density, mins, shards, seed)?);
    }
    for &n in &LOADCHECK_RING_SIZES {
        if !wanted(&format!("loadcheck_{n}")) {
            continue;
        }
        let servers = scaled(n, scale, 32);
        eprintln!("[scale] load-check cell: {servers} servers...");
        cells.push(loadcheck_cell(servers, shards, seed)?);
    }
    Ok(ScaleOutput {
        cells,
        scale,
        seed,
        shards,
    })
}

/// Renders the sweep as an ASCII table.
pub fn render(out: &ScaleOutput) -> String {
    let mut s = format!(
        "Scale — mechanical cost up to 100x the paper's Figure-4 cell \
         (scale {}, seed {:#x}, shards {}):\n",
        out.scale, out.seed, out.shards
    );
    let rows: Vec<Vec<String>> = out
        .cells
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.servers.to_string(),
                c.sources.to_string(),
                c.events.to_string(),
                report::f1(c.wall_ms),
                report::f1(c.events_per_sec),
                c.load_checks.to_string(),
                format!("{:.3}", c.mean_check_ms),
                format!("{:.3}", c.max_check_ms),
                c.splits.to_string(),
                c.merges.to_string(),
                c.membership_events.to_string(),
                report::f1(c.locate_p95_ms),
            ]
        })
        .collect();
    s.push_str(&report::ascii_table(
        &[
            "cell",
            "servers",
            "sources",
            "events",
            "wall ms",
            "events/s",
            "checks",
            "ms/check",
            "max ms/check",
            "splits",
            "merges",
            "membership",
            "locate p95 ms",
        ],
        &rows,
    ));
    // Per-phase breakdown of where the check/flush wall-clock went: one
    // line per cell, phases ≥ 1% of the cell's profiled total.
    s.push_str("\nphase breakdown (share of profiled check+flush time):\n");
    for c in &out.cells {
        let total = c.phase_ms.total();
        s.push_str(&format!("  {:<18} ", c.name));
        if total <= 0.0 {
            s.push_str("(nothing profiled)\n");
            continue;
        }
        let mut first = true;
        for phase in CheckPhase::ALL {
            let share = c.phase_ms.share(phase);
            if share < 0.01 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            s.push_str(&format!("{} {:.0}%", phase.name(), share * 100.0));
            first = false;
        }
        s.push('\n');
    }
    s
}

/// Writes `scale.csv` (one row per cell).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_csvs(out: &ScaleOutput, dir: &str) -> std::io::Result<()> {
    let rows: Vec<Vec<String>> = out
        .cells
        .iter()
        .map(|c| {
            let mut row = vec![
                c.name.clone(),
                c.kind.name().to_owned(),
                c.servers.to_string(),
                c.sources.to_string(),
                c.events.to_string(),
                format!("{:.3}", c.wall_ms),
                format!("{:.1}", c.events_per_sec),
                c.load_checks.to_string(),
                format!("{:.4}", c.mean_check_ms),
                format!("{:.4}", c.max_check_ms),
                c.splits.to_string(),
                c.merges.to_string(),
                c.membership_events.to_string(),
                format!("{:.2}", c.locate_p95_ms),
            ];
            for phase in CheckPhase::ALL {
                row.push(format!("{:.4}", c.phase_ms.get(phase)));
            }
            row
        })
        .collect();
    let mut header: Vec<String> = [
        "cell",
        "kind",
        "servers",
        "sources",
        "events",
        "wall_ms",
        "events_per_sec",
        "load_checks",
        "mean_check_ms",
        "max_check_ms",
        "splits",
        "merges",
        "membership_events",
        "locate_p95_ms",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    for phase in CheckPhase::ALL {
        header.push(format!("phase_{}_ms", phase.name()));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    report::write_csv(format!("{dir}/scale.csv"), &header_refs, &rows)
}

/// Serializes the sweep as the `BENCH_scale.json` trajectory format:
/// one JSON object with a `cells` array. Wall-clock fields are the only
/// machine-dependent values; everything else is deterministic for a
/// fixed seed.
pub fn to_bench_json(out: &ScaleOutput) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"scale\",\n");
    s.push_str(&format!("  \"scale\": {},\n", out.scale));
    s.push_str(&format!("  \"seed\": {},\n", out.seed));
    s.push_str(&format!("  \"shards\": {},\n", out.shards));
    s.push_str(&format!(
        "  \"min_loadcheck_events_per_sec\": {:.1},\n",
        out.min_loadcheck_events_per_sec().unwrap_or(0.0)
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in out.cells.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"name\": \"{}\", ", c.name));
        s.push_str(&format!("\"kind\": \"{}\", ", c.kind.name()));
        s.push_str(&format!("\"servers\": {}, ", c.servers));
        s.push_str(&format!("\"sources\": {}, ", c.sources));
        s.push_str(&format!("\"events\": {}, ", c.events));
        s.push_str(&format!("\"wall_ms\": {:.3}, ", c.wall_ms));
        s.push_str(&format!("\"events_per_sec\": {:.1}, ", c.events_per_sec));
        s.push_str(&format!("\"load_checks\": {}, ", c.load_checks));
        s.push_str(&format!("\"mean_check_ms\": {:.4}, ", c.mean_check_ms));
        s.push_str(&format!("\"max_check_ms\": {:.4}, ", c.max_check_ms));
        for phase in CheckPhase::ALL {
            s.push_str(&format!(
                "\"phase_{}_ms\": {:.4}, ",
                phase.name(),
                c.phase_ms.get(phase)
            ));
        }
        s.push_str(&format!("\"splits\": {}, ", c.splits));
        s.push_str(&format!("\"merges\": {}, ", c.merges));
        s.push_str(&format!("\"membership_events\": {}, ", c.membership_events));
        s.push_str(&format!("\"locate_p95_ms\": {:.2}", c.locate_p95_ms));
        s.push('}');
        if i + 1 < out.cells.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_bench_json`] to `path`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_bench_json(out: &ScaleOutput, path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_bench_json(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gate at test scale: every cell completes, reports
    /// sane throughput, and the JSON trajectory round-trips the headline
    /// floor number.
    #[test]
    fn scale_smoke_end_to_end() {
        let out = run_seeded(0.005, Some(7), 0).unwrap();
        assert_eq!(
            out.cells.len(),
            CHURN_CELLS.len() + LOADCHECK_RING_SIZES.len()
        );
        for c in &out.cells {
            assert!(c.events > 0, "{}: no events", c.name);
            assert!(c.events_per_sec > 0.0, "{}: zero throughput", c.name);
            assert!(c.wall_ms > 0.0);
        }
        let churn = &out.cells[0];
        assert_eq!(churn.kind, CellKind::Churn);
        assert!(churn.locate_p95_ms > 0.0, "WAN locates must cost time");
        let lc = out
            .cells
            .iter()
            .find(|c| c.kind == CellKind::LoadCheck)
            .unwrap();
        assert_eq!(lc.load_checks, LOADCHECK_CHECKS);
        assert!(lc.mean_check_ms > 0.0);
        let floor = out.min_loadcheck_events_per_sec().unwrap();
        let json = to_bench_json(&out);
        assert!(json.contains("\"bench\": \"scale\""));
        assert!(json.contains(&format!("{floor:.1}")));
        let rendered = render(&out);
        assert!(rendered.contains("loadcheck_"));
        assert!(rendered.contains("churn_"));
    }

    /// Same seed ⇒ identical deterministic fields (only wall-clock may
    /// differ between runs of the same build) — *across shard counts*:
    /// the sequential sweep and a 2-sharded sweep must agree on every
    /// protocol-visible number.
    #[test]
    fn scale_cells_are_deterministic_across_shard_counts() {
        let a = run_seeded(0.005, Some(11), 0).unwrap();
        let b = run_seeded(0.005, Some(11), 2).unwrap();
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.events, y.events);
            assert_eq!((x.splits, x.merges), (y.splits, y.merges));
            assert_eq!(x.membership_events, y.membership_events);
            assert_eq!(x.locate_p95_ms, y.locate_p95_ms);
            assert_eq!(x.load_checks, y.load_checks);
        }
    }

    /// Regression for the churn cells' timing columns: the committed
    /// trajectory once reported `mean_check_ms: 0.0000` for every churn
    /// cell (the value was hardcoded and `load_checks` was derived from
    /// the spec instead of counted). Every emitted cell, of both kinds,
    /// must now carry non-degenerate timing fields.
    #[test]
    fn every_cell_reports_nondegenerate_timing() {
        let out = run_seeded(0.002, Some(13), 1).unwrap();
        for c in &out.cells {
            assert!(c.wall_ms > 0.0, "{}: zero wall_ms", c.name);
            assert!(c.events_per_sec > 0.0, "{}: zero throughput", c.name);
            assert!(c.load_checks > 0, "{}: no load checks counted", c.name);
            assert!(
                c.mean_check_ms > 0.0,
                "{}: degenerate mean_check_ms",
                c.name
            );
            // The worst check bounds the mean from above; a cell whose
            // max equals 0 while checks ran means the column regressed
            // to a hardcoded value again.
            assert!(
                c.max_check_ms >= c.mean_check_ms && c.max_check_ms > 0.0,
                "{}: degenerate max_check_ms {} (mean {})",
                c.name,
                c.max_check_ms,
                c.mean_check_ms
            );
            assert!(
                c.phase_ms.total() > 0.0,
                "{}: phase profile recorded nothing",
                c.name
            );
        }
        let json = to_bench_json(&out);
        assert!(
            !json.contains("\"mean_check_ms\": 0.0000"),
            "trajectory must not regress to zeroed check timings"
        );
        assert!(
            !json.contains("\"max_check_ms\": 0.0000"),
            "trajectory must not regress to zeroed max-check timings"
        );
        assert!(json.contains("\"phase_flush_route_ms\""));
        // The zero-check case is explicit: 0.0, never the whole
        // check_wall_ms masquerading as one check's mean (which is what
        // `check_wall_ms / load_checks.max(1)` reported).
        assert_eq!(mean_check_ms(1234.5, 0), 0.0);
        assert_eq!(mean_check_ms(100.0, 4), 25.0);
    }

    /// `--cells` runs exactly the matching cells, and a filtered cell is
    /// bit-identical to the same cell of the full sweep (cells are
    /// independent).
    #[test]
    fn cell_filter_selects_and_matches_full_sweep() {
        let full = run_seeded(0.005, Some(11), 0).unwrap();
        let only = run_filtered(0.005, Some(11), 0, Some("churn_4000")).unwrap();
        assert_eq!(only.cells.len(), 1);
        let a = &only.cells[0];
        let b = full.cells.iter().find(|c| c.name == a.name).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!((a.splits, a.merges), (b.splits, b.merges));
        assert_eq!(a.membership_events, b.membership_events);
        assert_eq!(a.locate_p95_ms, b.locate_p95_ms);
        let none = run_filtered(0.005, Some(11), 0, Some("no_such_cell")).unwrap();
        assert!(none.cells.is_empty());
        assert!(none.min_churn_events_per_sec().is_none());
        assert!(only.min_churn_events_per_sec().is_some());
        // Exact matching: the canonical churn names are prefixes of each
        // other, so `churn_1000` must select exactly the 1000-server
        // cell and never drag the 10k/100k/1M cells along. (Reported
        // names carry the scaled server count; only the count and kind
        // identify the cell here.)
        let prefix = run_filtered(0.005, Some(11), 0, Some("churn_1000")).unwrap();
        assert_eq!(prefix.cells.len(), 1);
        assert_eq!(prefix.cells[0].servers, 16, "scaled churn_1000 cell");
        // Comma lists select each named cell once.
        let pair = run_filtered(0.005, Some(11), 0, Some("churn_4000, loadcheck_4000")).unwrap();
        assert_eq!(pair.cells.len(), 2);
        assert_eq!(pair.cells[0].kind, CellKind::Churn);
        assert_eq!(pair.cells[1].kind, CellKind::LoadCheck);
    }

    /// Check cadence and churn periods scale with cell minutes: every
    /// churn cell must observe a comparable number of load checks and a
    /// comparable expected number of membership events, or the phase
    /// profile columns aren't comparable across the sweep (the 10-minute
    /// 100k cell used to run 9 checks / 2 membership events vs 29/11 for
    /// the 30-minute cells).
    #[test]
    fn churn_cells_observe_comparable_checks_and_events() {
        let out = run_seeded(0.005, Some(19), 0).unwrap();
        let churn: Vec<_> = out
            .cells
            .iter()
            .filter(|c| c.kind == CellKind::Churn)
            .collect();
        assert!(churn.len() >= 4);
        let checks: Vec<u64> = churn.iter().map(|c| c.load_checks).collect();
        let (lo, hi) = (*checks.iter().min().unwrap(), *checks.iter().max().unwrap());
        assert!(
            hi <= lo + 3,
            "check counts must be comparable across cells, got {checks:?}"
        );
        for c in &churn {
            assert!(
                c.membership_events >= 4,
                "{}: churn cadence must yield a comparable event count, got {}",
                c.name,
                c.membership_events
            );
        }
    }
}
