//! Chaos campaign binary: deterministic fault-injection schedules with
//! invariant checking; failing schedules are shrunk to minimal repros.
//!
//! Usage: `chaos [--scale F] [--campaigns N] [--seed S] [--out DIR]`
//!
//! `--campaigns` sets the number of schedules in the campaign (default
//! 64). Exits nonzero if any invariant was violated — after writing the
//! `chaos_repro_<index>.json` repro files into the output directory.

use clash_sim::experiments::chaos;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    let schedules = report::flag_value(&args, "--campaigns")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(64);
    eprintln!("running chaos campaign of {schedules} schedules at scale {scale}...");
    let out = chaos::run_seeded(scale, schedules, seed);
    println!("{}", chaos::render(&out));
    chaos::write_outputs(&out, &out_dir).expect("write chaos outputs");
    if !out.report.failures.is_empty() {
        eprintln!(
            "chaos: {} invariant violation(s); repro files written to {out_dir}/",
            out.report.failures.len()
        );
        std::process::exit(1);
    }
}
