//! The §7 range-query extension: distinct servers touched per prefix
//! range, CLASH vs the fixed-depth baselines.
//!
//! Usage: `range_queries [--scale F] [--queries N] [--seed S]`

use clash_sim::experiments::range_queries;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let queries = report::flag_value(&args, "--queries")
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    let seed = report::seed_arg(&args);
    eprintln!("running range-query comparison at scale {scale}...");
    let out = range_queries::run_seeded(scale, queries, seed).expect("experiment failed");
    print!("{}", range_queries::render(&out));
}
