//! Regenerates Figure 3: the workload A/B/C key distributions over the
//! 8-bit base portion.
//!
//! Usage: `fig3_workloads [--sources N] [--out DIR]`

use clash_sim::experiments::fig3;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sources = report::flag_value(&args, "--sources")
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let out_dir = report::out_dir_arg(&args);
    let out = fig3::run(sources);
    print!("{}", fig3::render(&out));
    match fig3::write_csvs(&out, &out_dir) {
        Ok(()) => println!("wrote {out_dir}/fig3_workloads.csv"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
