//! Regenerates Figure 5: CLASH communication overhead (messages/sec/
//! server) for workloads A/B/C × Ld ∈ {50, 1000} × {no queries, 50k
//! query clients}.
//!
//! Usage: `fig5_overhead [--scale F] [--seed S] [--out DIR]`

use clash_sim::experiments::fig5;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    eprintln!("running Figure 5 at scale {scale} (12 bars in parallel)...");
    let started = std::time::Instant::now();
    let out = fig5::run_seeded(scale, seed).expect("scenario failed");
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    print!("{}", fig5::render(&out));
    match fig5::write_csvs(&out, &out_dir) {
        Ok(()) => println!("wrote {out_dir}/fig5_overhead.csv"),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
}
