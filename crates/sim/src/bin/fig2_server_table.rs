//! Regenerates the paper's Figure 2: the server work table of s25,
//! including the three `ACCEPT_OBJECT` cases of §5.

fn main() {
    print!("{}", clash_sim::experiments::demos::figure2());
}
