//! Availability experiment binary: crash recovery by replication factor
//! (`r ∈ {0, 1, 2, 3}`) under sustained churn, single crashes and
//! correlated crash bursts.
//!
//! Usage: `availability [--scale F] [--seed S] [--out DIR]`

use clash_sim::experiments::availability;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    let out = availability::run_seeded(scale, seed).expect("availability experiment failed");
    println!("{}", availability::render(&out));
    availability::write_csvs(&out, &out_dir).expect("write availability csv");
}
