//! Churn experiment binary: live membership (join / graceful leave /
//! crash) under sustained load plus a flash-crowd capacity ramp.
//!
//! Usage: `churn [--scale F] [--seed S] [--out DIR]`

use clash_sim::experiments::churn;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    let out = churn::run_seeded(scale, seed).expect("churn experiment failed");
    println!("{}", churn::render(&out));
    churn::write_csvs(&out, &out_dir).expect("write churn csv");
}
