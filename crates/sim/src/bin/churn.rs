//! Churn experiment binary: live membership (join / graceful leave /
//! crash) under sustained load plus a flash-crowd capacity ramp.
//!
//! Usage: `churn [--scale F] [--seed S] [--out DIR] [--trace PATH]`
//!
//! `--trace PATH` runs both scenarios with the flight recorder in
//! full-export mode and writes the sustained scenario's events as a
//! Perfetto-loadable Chrome trace. Tracing never changes the protocol's
//! decisions — the tables are bit-for-bit identical either way.

use clash_sim::experiments::churn;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    let trace_path = report::trace_arg(&args);
    let mode = report::trace_mode(trace_path.as_ref());
    let out = churn::run_seeded_traced(scale, seed, mode).expect("churn experiment failed");
    println!("{}", churn::render(&out));
    churn::write_csvs(&out, &out_dir).expect("write churn csv");
    if let Some(path) = trace_path {
        report::write_trace(&path, &out.sustained.trace).expect("write chrome trace");
    }
}
