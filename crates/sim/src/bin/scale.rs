//! Scale experiment binary: mechanical cost of the protocol core from
//! the paper's 1000-server cell up to ~10× it, under churn + WAN.
//!
//! Usage: `scale [--scale F] [--seed S] [--shards N] [--cells NAMES]
//!               [--out DIR] [--bench-out PATH] [--min-events-per-sec F]
//!               [--min-churn-events-per-sec F]`
//!
//! `--shards N` runs the cells on the ring-arc batched locate path
//! (default: the `CLASH_SHARDS` environment variable, else 0 =
//! sequential). Deterministic outputs are identical for every value.
//!
//! `--cells NAMES` runs only the comma-separated, exactly-named cells
//! (canonical unscaled names, e.g. `--cells churn_1000000` or
//! `--cells churn_1000,loadcheck_4000`) — cells are independent, so a
//! filtered cell is bit-identical to the full sweep's. Matching is
//! exact because the churn names are prefixes of one another.
//!
//! Writes `scale.csv` into `--out` (default `results/`) and the
//! machine-readable trajectory into `--bench-out` (default
//! `BENCH_scale.json` — the repo-root perf trajectory CI uploads).
//! With `--min-events-per-sec F` the binary exits non-zero when the
//! slowest load-check cell drops below `F` events per wall-second —
//! the CI perf-smoke regression gate; `--min-churn-events-per-sec F`
//! is the same gate over the churn cells (used by the filtered
//! `churn_1000000` smoke).

use clash_sim::experiments::scale;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale_factor = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    let bench_out =
        report::flag_value(&args, "--bench-out").unwrap_or_else(|| "BENCH_scale.json".to_owned());
    let floor: Option<f64> = report::flag_value(&args, "--min-events-per-sec").map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("--min-events-per-sec must be a float, got {s:?}"))
    });
    let churn_floor: Option<f64> =
        report::flag_value(&args, "--min-churn-events-per-sec").map(|s| {
            s.parse()
                .unwrap_or_else(|_| panic!("--min-churn-events-per-sec must be a float, got {s:?}"))
        });
    let cells = report::flag_value(&args, "--cells");
    let shards: u32 = report::flag_value(&args, "--shards").map_or_else(
        clash_core::config::ClashConfig::shards_from_env,
        |s| {
            s.parse()
                .unwrap_or_else(|_| panic!("--shards must be an integer, got {s:?}"))
        },
    );

    let out = scale::run_filtered(scale_factor, seed, shards, cells.as_deref())
        .expect("scale experiment failed");
    println!("{}", scale::render(&out));
    scale::write_csvs(&out, &out_dir).expect("write scale csv");
    scale::write_bench_json(&out, &bench_out).expect("write bench json");
    eprintln!("wrote {bench_out} and {out_dir}/scale.csv");

    if let Some(floor) = floor {
        let measured = out.min_loadcheck_events_per_sec().unwrap_or(0.0);
        if measured < floor {
            eprintln!(
                "PERF REGRESSION: slowest load-check cell ran at {measured:.1} \
                 events/s, below the floor of {floor:.1}"
            );
            std::process::exit(1);
        }
        eprintln!("perf floor ok: {measured:.1} events/s >= {floor:.1}");
    }
    if let Some(floor) = churn_floor {
        let measured = out.min_churn_events_per_sec().unwrap_or(0.0);
        if measured < floor {
            eprintln!(
                "PERF REGRESSION: slowest churn cell ran at {measured:.1} \
                 events/s, below the floor of {floor:.1}"
            );
            std::process::exit(1);
        }
        eprintln!("churn perf floor ok: {measured:.1} events/s >= {floor:.1}");
    }
}
