//! Checks the §7 claim: CLASH reduces the number of servers utilized by
//! as much as ~80% versus basic DHT.
//!
//! Usage: `servers_saved [--scale F] [--seed S]`

use clash_sim::experiments::servers_saved;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    eprintln!("running Figure 4 scenario at scale {scale} to derive savings...");
    let (_fig4, savings) = servers_saved::run_seeded(scale, seed).expect("scenario failed");
    print!("{}", servers_saved::render(&savings));
}
