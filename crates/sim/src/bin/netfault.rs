//! Network-fault experiment binary: locate-latency CDFs across link
//! models and ring sizes, retry overhead on lossy links, and a
//! partition/heal scenario with a post-heal oracle sweep.
//!
//! Usage: `netfault [--scale F] [--seed S] [--out DIR] [--trace PATH]`
//!
//! `--trace PATH` records the partition/heal scenario's deferral and
//! recovery timeline and writes it as a Perfetto-loadable Chrome trace.

use clash_sim::experiments::netfault;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    let trace_path = report::trace_arg(&args);
    let mode = report::trace_mode(trace_path.as_ref());
    eprintln!("running netfault at scale {scale}...");
    let out = netfault::run_seeded_traced(scale, seed, mode).expect("netfault experiment failed");
    println!("{}", netfault::render(&out));
    netfault::write_csvs(&out, &out_dir).expect("write netfault csvs");
    if let Some(path) = trace_path {
        report::write_trace(&path, &out.partition_trace).expect("write chrome trace");
    }
}
