//! Network-fault experiment binary: locate-latency CDFs across link
//! models and ring sizes, retry overhead on lossy links, and a
//! partition/heal scenario with a post-heal oracle sweep.
//!
//! Usage: `netfault [--scale F] [--seed S] [--out DIR]`

use clash_sim::experiments::netfault;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    eprintln!("running netfault at scale {scale}...");
    let out = netfault::run_seeded(scale, seed).expect("netfault experiment failed");
    println!("{}", netfault::render(&out));
    netfault::write_csvs(&out, &out_dir).expect("write netfault csvs");
}
