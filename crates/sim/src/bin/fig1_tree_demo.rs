//! Regenerates the paper's Figure 1: the binary-splitting tree built from
//! the key group `011*` across servers s0, s12, s5 and s7.

fn main() {
    print!("{}", clash_sim::experiments::demos::figure1());
}
