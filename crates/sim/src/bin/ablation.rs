//! Ablation sweeps over the design choices: split policy, initial depth,
//! merge headroom and virtual servers.
//!
//! Usage: `ablation [--scale F] [--seed S]`

use clash_sim::experiments::ablation;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    eprintln!("running ablation sweeps at scale {scale}...");
    let out = ablation::run_seeded(scale, seed).expect("scenario failed");
    print!("{}", ablation::render(&out));
}
