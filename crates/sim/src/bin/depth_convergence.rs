//! Checks the §5 claim that depth searches converge well below the
//! binary-search bound of ⌈log₂ N⌉ probes.
//!
//! Usage: `depth_convergence [--servers N] [--sources N] [--lookups N] [--seed S]`

use clash_sim::experiments::depth_conv;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str, default: usize| {
        report::flag_value(&args, flag)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let servers = get("--servers", 200);
    let sources = get("--sources", 20_000);
    let lookups = get("--lookups", 5_000);
    let seed = report::seed_arg(&args);
    let out = depth_conv::run_seeded(servers, sources, lookups, seed).expect("experiment failed");
    print!("{}", depth_conv::render(&out));
}
