//! Regenerates Figure 4: maximum/average server load, active servers and
//! depth variation for CLASH vs DHT(6)/DHT(12)/DHT(24) over the 6-hour
//! A→B→C scenario.
//!
//! Usage: `fig4_load [--scale F] [--seed S] [--out DIR]`
//! (`--scale 1.0` = the paper's 1000 servers / 100k sources; use
//! `--release` — the full run processes millions of events.)

use clash_sim::experiments::fig4;
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    eprintln!("running Figure 4 at scale {scale} (4 variants in parallel)...");
    let started = std::time::Instant::now();
    let out = fig4::run_seeded(scale, seed).expect("scenario failed");
    eprintln!("done in {:.1}s", started.elapsed().as_secs_f64());
    print!("{}", fig4::render(&out));
    for run in &out.runs {
        eprintln!(
            "{}: {} events, {} splits, {} merges",
            run.label, run.events, run.splits, run.merges
        );
    }
    match fig4::write_csvs(&out, &out_dir) {
        Ok(()) => println!("wrote {out_dir}/fig4_timeseries.csv and fig4_phases.csv"),
        Err(e) => eprintln!("could not write CSVs: {e}"),
    }
}
