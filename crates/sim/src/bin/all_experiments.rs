//! Runs every experiment in sequence and writes all CSVs — the one-shot
//! reproduction of the paper's evaluation section.
//!
//! Usage: `all_experiments [--scale F] [--seed S] [--out DIR]`
//!
//! `--seed` overrides the root random seed of every stochastic
//! experiment (Figures 4–5, ablations, churn, netfault, depth
//! convergence), enabling multi-seed sweeps of the fault experiments;
//! without it each experiment keeps its historical hard-coded seed.

use clash_sim::experiments::{
    ablation, availability, chaos, churn, demos, depth_conv, fig3, fig4, fig5, netfault,
    servers_saved,
};
use clash_sim::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = report::scale_arg(&args);
    let seed = report::seed_arg(&args);
    let out_dir = report::out_dir_arg(&args);
    let t0 = std::time::Instant::now();

    println!("{}", demos::figure1());
    println!("{}", demos::figure2());

    let f3 = fig3::run(100_000);
    println!("{}", fig3::render(&f3));
    fig3::write_csvs(&f3, &out_dir).expect("write fig3 csv");

    eprintln!(
        "[{:6.1}s] running Figure 4 at scale {scale}...",
        t0.elapsed().as_secs_f64()
    );
    let f4 = fig4::run_seeded(scale, seed).expect("fig4 failed");
    println!("{}", fig4::render(&f4));
    fig4::write_csvs(&f4, &out_dir).expect("write fig4 csvs");

    println!("{}", servers_saved::render(&servers_saved::from_fig4(&f4)));

    eprintln!(
        "[{:6.1}s] running Figure 5 at scale {scale}...",
        t0.elapsed().as_secs_f64()
    );
    let f5 = fig5::run_seeded(scale, seed).expect("fig5 failed");
    println!("{}", fig5::render(&f5));
    fig5::write_csvs(&f5, &out_dir).expect("write fig5 csv");

    eprintln!(
        "[{:6.1}s] running depth convergence...",
        t0.elapsed().as_secs_f64()
    );
    let dc = depth_conv::run_seeded(200, 20_000, 5_000, seed).expect("depth conv failed");
    println!("{}", depth_conv::render(&dc));

    eprintln!("[{:6.1}s] running ablations...", t0.elapsed().as_secs_f64());
    let ab = ablation::run_seeded(scale.min(0.1), seed).expect("ablation failed");
    println!("{}", ablation::render(&ab));

    eprintln!(
        "[{:6.1}s] running churn at scale {scale}...",
        t0.elapsed().as_secs_f64()
    );
    let ch = churn::run_seeded(scale, seed).expect("churn failed");
    println!("{}", churn::render(&ch));
    churn::write_csvs(&ch, &out_dir).expect("write churn csv");

    eprintln!(
        "[{:6.1}s] running netfault at scale {scale}...",
        t0.elapsed().as_secs_f64()
    );
    let nf = netfault::run_seeded(scale, seed).expect("netfault failed");
    println!("{}", netfault::render(&nf));
    netfault::write_csvs(&nf, &out_dir).expect("write netfault csvs");

    eprintln!(
        "[{:6.1}s] running availability at scale {scale}...",
        t0.elapsed().as_secs_f64()
    );
    let av = availability::run_seeded(scale, seed).expect("availability failed");
    println!("{}", availability::render(&av));
    availability::write_csvs(&av, &out_dir).expect("write availability csv");

    // Scale the campaign with the cell: 64 schedules at full scale, a
    // handful in smoke runs.
    let chaos_schedules = ((64.0 * scale).ceil() as u64).max(4);
    eprintln!(
        "[{:6.1}s] running chaos campaign of {chaos_schedules} schedules at scale {scale}...",
        t0.elapsed().as_secs_f64()
    );
    let cc = chaos::run_seeded(scale, chaos_schedules, seed);
    println!("{}", chaos::render(&cc));
    chaos::write_outputs(&cc, &out_dir).expect("write chaos outputs");
    assert!(
        cc.report.failures.is_empty(),
        "chaos campaign found {} invariant violation(s); repros in {out_dir}/",
        cc.report.failures.len()
    );

    eprintln!(
        "all experiments done in {:.1}s; CSVs in {out_dir}/",
        t0.elapsed().as_secs_f64()
    );
}
