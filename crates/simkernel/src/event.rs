//! Deterministic event queue.
//!
//! A thin priority queue over `(SimTime, sequence)` pairs. Events scheduled
//! for the same instant fire in insertion order, which makes simulation runs
//! reproducible bit-for-bit.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// A pending event of payload type `E`.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, with the
        // sequence number as a deterministic tie-break.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
///
/// The queue tracks the current simulated time: popping an event advances
/// `now()` to that event's timestamp. Scheduling into the past is a logic
/// error and panics.
///
/// # Example
///
/// ```
/// use clash_simkernel::event::EventQueue;
/// use clash_simkernel::time::{SimDuration, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_secs(1), "later");
/// q.schedule_after(SimDuration::from_millis(10), "soon");
/// assert_eq!(q.pop().map(|(_, e)| e), Some("soon"));
/// assert_eq!(q.pop().map(|(_, e)| e), Some("later"));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            scheduled_total: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for throughput reporting).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at:?} < now={:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) {
        self.schedule(self.now + delay, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        Some((ev.at, ev.payload))
    }

    /// Removes and returns the earliest event only if it fires strictly
    /// before `deadline`; otherwise leaves the queue untouched.
    ///
    /// This is the primitive used to interleave event processing with
    /// periodic sampling loops.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(ev) if ev.at < deadline => self.pop(),
            _ => None,
        }
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.at)
    }

    /// Advances the clock to `at` without firing anything.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or earlier than a pending event
    /// (skipping events would corrupt the simulation).
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot advance into the past");
        if let Some(next) = self.peek_time() {
            assert!(
                at <= next,
                "advance_to({at:?}) would skip a pending event at {next:?}"
            );
        }
        self.now = at;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3u32);
        q.schedule(SimTime::from_secs(1), 1u32);
        q.schedule(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.schedule(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(10), "b");
        assert_eq!(
            q.pop_before(SimTime::from_secs(5)).map(|(_, e)| e),
            Some("a")
        );
        assert_eq!(q.pop_before(SimTime::from_secs(5)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn advance_to_moves_clock() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_secs(42));
        assert_eq!(q.now(), SimTime::from_secs(42));
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.advance_to(SimTime::from_secs(2));
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(15));
    }

    #[test]
    fn counts_scheduled_total() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::from_secs(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_total(), 5);
    }
}
