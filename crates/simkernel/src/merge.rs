//! Deterministic cross-shard merge queue.
//!
//! The sharded simulation path fans work out to per-shard lanes (one lane
//! per ring-arc shard) and must recombine the results in an order that is
//! a pure function of the *logical* work, never of thread scheduling or
//! the order in which lanes happened to fill. [`MergeQueue`] pins that
//! order: every item carries an ordering key (the caller uses the global
//! plan sequence number, or `(virtual time, sequence)` for timed work),
//! and [`MergeQueue::drain`] yields items sorted by `(key, lane)` — lane
//! index (= shard id) breaks ties, matching the sharding design's
//! `(virtual time, shard id, sequence)` ordering.
//!
//! Items may be pushed into a lane in any order (worker threads complete
//! shard-local batches in whatever order they like); `drain` sorts each
//! lane and then k-way merges, so the output is invariant under any
//! permutation of pushes within a lane and any interleaving across lanes.

/// The canonical ring-arc shard function: hash `h` (in a `bits`-wide
/// space) maps to one of `shards` contiguous key-space arcs,
/// `⌊h · shards / 2^bits⌋`. Every sharded structure — probe lanes, the
/// arc-sharded candidate sets, per-arc arena views — must use this one
/// function so an id's owning arc is a single global fact.
///
/// Monotone in `h`: all ids of arc `a` precede all ids of arc `a + 1`,
/// so concatenating per-arc ordered sets in arc order yields the global
/// ascending order.
pub fn arc_of(h: u64, shards: usize, bits: u32) -> usize {
    debug_assert!(shards > 0, "arc_of needs at least one shard");
    ((u128::from(h) * shards as u128) >> bits) as usize
}

/// A fixed set of ordered lanes whose contents drain as one globally
/// ordered stream.
#[derive(Debug)]
pub struct MergeQueue<K, T> {
    lanes: Vec<Vec<(K, T)>>,
}

impl<K: Ord + Copy, T> MergeQueue<K, T> {
    /// Creates a queue with `lanes` empty lanes (one per shard).
    pub fn new(lanes: usize) -> Self {
        MergeQueue {
            lanes: (0..lanes).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(Vec::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(Vec::is_empty)
    }

    /// Queues `item` under ordering key `key` in `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn push(&mut self, lane: usize, key: K, item: T) {
        self.lanes[lane].push((key, item));
    }

    /// Mutable access to a whole lane's backing vector, for bulk handoff
    /// from a worker thread (`std::mem::swap` the thread-local results in).
    pub fn lane_mut(&mut self, lane: usize) -> &mut Vec<(K, T)> {
        &mut self.lanes[lane]
    }

    /// Empties every lane, keeping the lane allocations for reuse across
    /// flushes.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
    }

    /// Drains every lane into one stream ordered by `(key, lane index)`.
    ///
    /// The result is independent of push order: each lane is sorted by key
    /// (ties within a lane keep push order, but callers use unique keys),
    /// then the lanes are k-way merged with the lane index as tiebreak.
    pub fn drain(&mut self) -> Vec<(K, T)> {
        for lane in &mut self.lanes {
            lane.sort_by_key(|(k, _)| *k);
        }
        let total = self.len();
        let mut out = Vec::with_capacity(total);
        let mut iters: Vec<_> = self
            .lanes
            .iter_mut()
            .map(|l| l.drain(..).peekable())
            .collect();
        // K-way merge by scanning lanes for the minimum head; lane count is
        // small (the shard count), so the linear scan beats a heap here.
        loop {
            let mut best: Option<(usize, K)> = None;
            for (li, it) in iters.iter_mut().enumerate() {
                if let Some((k, _)) = it.peek() {
                    // Strict `<` keeps the lowest lane index on key ties.
                    if best.is_none_or(|(_, bk)| *k < bk) {
                        best = Some((li, *k));
                    }
                }
            }
            match best {
                Some((li, _)) => out.push(iters[li].next().unwrap()),
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_key_order_across_lanes() {
        let mut q = MergeQueue::new(3);
        q.push(2, 5u64, "e");
        q.push(0, 1, "a");
        q.push(1, 3, "c");
        q.push(0, 4, "d");
        q.push(1, 2, "b");
        let keys: Vec<_> = q.drain();
        assert_eq!(keys, vec![(1, "a"), (2, "b"), (3, "c"), (4, "d"), (5, "e")]);
        assert!(q.is_empty());
    }

    #[test]
    fn lane_index_breaks_key_ties() {
        let mut q = MergeQueue::new(4);
        // Same key everywhere: output must follow lane order 0,1,2,3.
        q.push(3, 7u64, 3usize);
        q.push(1, 7, 1);
        q.push(0, 7, 0);
        q.push(2, 7, 2);
        let lanes: Vec<_> = q.drain().into_iter().map(|(_, v)| v).collect();
        assert_eq!(lanes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn invariant_under_push_permutations() {
        // The same logical items pushed in two different orders (as two
        // different thread schedules would) drain identically.
        let items: Vec<(usize, u64, u32)> = (0..64)
            .map(|i| ((i % 5) as usize, (97 * i % 64) as u64, i))
            .collect();
        let mut a = MergeQueue::new(5);
        for &(lane, key, v) in &items {
            a.push(lane, key, v);
        }
        let mut b = MergeQueue::new(5);
        for &(lane, key, v) in items.iter().rev() {
            b.push(lane, key, v);
        }
        assert_eq!(a.drain(), b.drain());
    }

    #[test]
    fn bulk_lane_handoff() {
        let mut q = MergeQueue::new(2);
        let mut worker_results = vec![(2u64, 'b'), (0, 'a')];
        std::mem::swap(q.lane_mut(1), &mut worker_results);
        q.push(0, 1, 'm');
        assert_eq!(q.len(), 3);
        assert_eq!(q.drain(), vec![(0, 'a'), (1, 'm'), (2, 'b')]);
    }

    #[test]
    fn empty_queue_drains_empty() {
        let mut q: MergeQueue<u64, ()> = MergeQueue::new(8);
        assert_eq!(q.lane_count(), 8);
        assert!(q.drain().is_empty());
    }

    #[test]
    fn clear_keeps_lanes_reusable() {
        let mut q = MergeQueue::new(2);
        q.push(0, 3u64, 'x');
        q.push(1, 1, 'y');
        q.clear();
        assert!(q.is_empty());
        q.push(1, 2, 'z');
        assert_eq!(q.drain(), vec![(2, 'z')]);
    }

    #[test]
    fn arc_of_is_monotone_and_total() {
        let bits = 16u32;
        let shards = 8usize;
        let mut prev = 0usize;
        for h in (0..=0xFFFFu64).step_by(97) {
            let a = arc_of(h, shards, bits);
            assert!(a < shards);
            assert!(a >= prev, "arc function must be monotone in h");
            prev = a;
        }
        assert_eq!(arc_of(0, shards, bits), 0);
        assert_eq!(arc_of(0xFFFF, shards, bits), shards - 1);
        // One shard maps everything to arc 0.
        assert_eq!(arc_of(0xABCD, 1, bits), 0);
    }
}
