//! Seeded, splittable random number generation.
//!
//! All randomness in a simulation flows from one root seed. Components
//! derive independent substreams by label ([`DetRng::substream`]), so adding
//! a new consumer of randomness never perturbs the draws seen by existing
//! components — a property the regression tests on the figure experiments
//! rely on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step: advances the state and returns the next 64-bit output.
///
/// Used both for seed derivation here and for the identifier-key hash in
/// `clash-keyspace` (independent implementation there; the two are
/// cross-checked in the integration tests).
pub fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalizes a SplitMix64 state into a well-mixed 64-bit value.
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a 64-bit stream seed from a root seed and a label.
pub fn derive_seed(root: u64, label: &str) -> u64 {
    let mut h = splitmix64_mix(root ^ 0xA076_1D64_78BD_642F);
    for &b in label.as_bytes() {
        h = splitmix64_mix(h ^ u64::from(b).wrapping_mul(0x1000_0000_01B3));
    }
    h
}

/// A deterministic random number generator with labelled substreams.
///
/// Wraps [`rand::rngs::SmallRng`] (fast, non-cryptographic — exactly what a
/// simulation wants) and remembers its root seed so that independent
/// substreams can be forked at any point.
///
/// # Example
///
/// ```
/// use clash_simkernel::rng::DetRng;
/// use rand::Rng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
///
/// // Substreams are independent of the parent's draw position.
/// let mut s1 = DetRng::new(42).substream("sources");
/// let mut s2 = DetRng::new(42).substream("sources");
/// assert_eq!(s1.rng().gen::<u64>(), s2.rng().gen::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
    draws: u64,
}

impl DetRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
            draws: 0,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many times this generator has been drawn from (each helper
    /// counts one; a [`DetRng::rng`] access counts one however many values
    /// the caller pulls through it). Substreams start back at zero; a
    /// clone keeps its parent's count.
    ///
    /// This is the runtime mirror of the `clash-lint` static rules: phases
    /// that must not consume protocol randomness — the sharded route phase
    /// between snapshot freeze and merge drain — assert this stays flat.
    pub fn draw_count(&self) -> u64 {
        self.draws
    }

    /// Mutable access to the underlying RNG (implements [`rand::Rng`]).
    pub fn rng(&mut self) -> &mut SmallRng {
        self.draws += 1;
        &mut self.inner
    }

    /// Forks an independent substream identified by `label`.
    ///
    /// The substream depends only on the root seed and the label, not on how
    /// many values have been drawn from `self`.
    pub fn substream(&self, label: &str) -> DetRng {
        DetRng::new(derive_seed(self.seed, label))
    }

    /// Forks an independent substream identified by a label and an index
    /// (e.g. one stream per client).
    pub fn substream_indexed(&self, label: &str, index: u64) -> DetRng {
        DetRng::new(splitmix64_mix(derive_seed(self.seed, label) ^ index))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.draws += 1;
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        self.draws += 1;
        assert!(bound > 0, "uniform_u64 bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform index in `[0, len)` for slice access.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn uniform_index(&mut self, len: usize) -> usize {
        self.draws += 1;
        assert!(len > 0, "uniform_index len must be positive");
        self.inner.gen_range(0..len)
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.gen()
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.draws += 1;
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.inner.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_position_independent() {
        let mut parent1 = DetRng::new(99);
        let parent2 = DetRng::new(99);
        // Draw from parent1 before forking; the fork must not be affected.
        for _ in 0..10 {
            parent1.next_u64();
        }
        let mut f1 = parent1.substream("workload");
        let mut f2 = parent2.substream("workload");
        for _ in 0..20 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn substreams_with_different_labels_differ() {
        let root = DetRng::new(5);
        let mut a = root.substream("alpha");
        let mut b = root.substream("beta");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_substreams_differ() {
        let root = DetRng::new(5);
        let mut a = root.substream_indexed("client", 0);
        let mut b = root.substream_indexed("client", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_respects_bound() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            assert!(r.uniform_u64(17) < 17);
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = DetRng::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p={p}");
    }

    #[test]
    fn draw_count_tracks_every_helper_and_rng_access() {
        let mut r = DetRng::new(9);
        assert_eq!(r.draw_count(), 0);
        r.uniform_f64();
        r.uniform_u64(10);
        r.uniform_index(10);
        r.next_u64();
        r.chance(0.5);
        assert_eq!(r.draw_count(), 5);
        let _ = r.rng().gen::<u64>();
        assert_eq!(r.draw_count(), 6);
        // Substreams are fresh counters; forking draws nothing from self.
        let fork = r.substream("child");
        assert_eq!(fork.draw_count(), 0);
        assert_eq!(r.draw_count(), 6);
        // A clone carries the parent's count.
        assert_eq!(r.clone().draw_count(), 6);
    }

    #[test]
    fn derive_seed_avalanches() {
        // Labels differing by one character must give unrelated seeds.
        let s1 = derive_seed(0, "a");
        let s2 = derive_seed(0, "b");
        assert_ne!(s1, s2);
        let differing_bits = (s1 ^ s2).count_ones();
        assert!(differing_bits > 10, "only {differing_bits} bits differ");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).uniform_u64(0);
    }
}
