//! Simulated time.
//!
//! Time is measured in whole microseconds since the start of the simulation.
//! Microsecond resolution comfortably covers the paper's scales (6-hour runs,
//! 5-minute load-check periods, per-second packet rates) without floating
//! point drift in the event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (microseconds since simulation start).
///
/// `SimTime` is an absolute point; [`SimDuration`] is a span. The arithmetic
/// mirrors `std::time::Instant`/`Duration`.
///
/// # Example
///
/// ```
/// use clash_simkernel::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_micros(), 3_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as an "end of time" bound).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Hours since simulation start, as a float (the x-axis of Figure 4).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a simulation logic error).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`]; returns zero if
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or overflows the microsecond range.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let us = secs * 1e6;
        assert!(us <= u64::MAX as f64, "duration overflows u64 microseconds");
        SimDuration(us.round() as u64)
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked integer division of two durations (how many `rhs` fit in
    /// `self`).
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "division by zero duration");
        self.0 / rhs.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let (h, m, s) = (total_secs / 3600, (total_secs / 60) % 60, total_secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({:.6}s)", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_hours(1).as_secs_f64(), 3600.0);
        assert_eq!(SimTime::from_micros(500).as_micros(), 500);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(SimTime::ZERO), SimDuration::from_secs(10));
    }

    #[test]
    fn saturating_duration() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_secs(4)
        );
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_secs_f64(1e-6).as_micros(), 1);
        assert_eq!(SimDuration::from_secs_f64(0.0).as_micros(), 0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn div_duration_counts_periods() {
        let six_hours = SimDuration::from_hours(6);
        let five_minutes = SimDuration::from_mins(5);
        assert_eq!(six_hours.div_duration(five_minutes), 72);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_secs(2 * 3600 + 3 * 60 + 4);
        assert_eq!(t.to_string(), "02:03:04");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn scalar_mul_div() {
        let d = SimDuration::from_secs(3);
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(d / 3, SimDuration::from_secs(1));
    }

    #[test]
    fn hours_axis() {
        let t = SimTime::from_secs(3 * 3600);
        assert!((t.as_hours_f64() - 3.0).abs() < 1e-12);
    }
}
