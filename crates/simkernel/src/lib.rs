//! Deterministic discrete-event simulation kernel for the CLASH reproduction.
//!
//! The paper (Misra, Castro & Lee, *CLASH*, ICDCS 2004, §6) evaluates the
//! protocol with a C++ simulator built on the MIT Chord simulator. This crate
//! is the equivalent substrate for the Rust reproduction: a small,
//! fully-deterministic discrete-event kernel plus the statistical machinery
//! the experiments need (seeded RNG streams, the distributions used by the
//! workloads, and metric recorders for the time series reported in Figures
//! 4–5).
//!
//! Design goals:
//!
//! * **Determinism** — every run is a pure function of its seeds. The event
//!   queue breaks ties by insertion sequence, and all randomness flows from
//!   [`rng::DetRng`] substreams derived by label.
//! * **Speed** — the CLASH experiments aggregate per-packet work analytically
//!   (see `DESIGN.md` §2), so the kernel optimizes for millions of small
//!   events (key changes, query churn, load checks), not for generality.
//! * **No global state** — a [`event::EventQueue`] is an ordinary value; the
//!   driving loop is owned by the caller, which keeps borrows simple.
//!
//! # Example
//!
//! ```
//! use clash_simkernel::event::EventQueue;
//! use clash_simkernel::time::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(5), Ev::Tick(1));
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(2), Ev::Tick(2));
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t.as_secs_f64(), 2.0);
//! assert_eq!(ev, Ev::Tick(2));
//! ```

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// lock that in — determinism reasoning assumes no aliasing backdoors.
#![forbid(unsafe_code)]
pub mod dist;
pub mod event;
pub mod merge;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use merge::MergeQueue;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
