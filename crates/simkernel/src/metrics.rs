//! Metric recorders for the experiment harness.
//!
//! The Figure 4 panels are time series (max/avg server load, depth min/avg/
//! max, active servers); Figure 5 is per-category message counters. These
//! recorders are intentionally simple values — the experiment drivers own
//! them directly, no global registry.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A timestamped series of samples — one panel line in Figure 4.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the previous sample (series must be
    /// chronological).
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(at >= last, "time series must be recorded chronologically");
        }
        self.points.push((at, value));
    }

    /// The recorded samples in order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest sample value, if any.
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |acc, v| {
            Some(match acc {
                None => v,
                Some(m) => m.max(v),
            })
        })
    }

    /// Mean of the sample values, if any.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Mean over the samples with `lo <= t < hi` (e.g. one workload phase).
    pub fn mean_in(&self, lo: SimTime, hi: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Maximum over the samples with `lo <= t < hi`.
    pub fn max_in(&self, lo: SimTime, hi: SimTime) -> Option<f64> {
        self.points
            .iter()
            .filter(|&&(t, _)| t >= lo && t < hi)
            .map(|&(_, v)| v)
            .fold(None, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(m) => m.max(v),
                })
            })
    }
}

/// Streaming summary statistics (Welford's algorithm): count, mean,
/// variance, min, max — without storing samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn observe(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 if fewer than two observations).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// An owned, field-public copy of the current statistics, for
    /// export into telemetry registries and reports without exposing
    /// the Welford internals.
    pub fn snapshot(&self) -> SummarySnapshot {
        SummarySnapshot {
            count: self.count,
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// An exported point-in-time copy of a [`Summary`]: plain fields, no
/// accumulator state, safe to diff and serialize.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SummarySnapshot {
    /// Number of observations.
    pub count: u64,
    /// Mean of observations (0 if empty).
    pub mean: f64,
    /// Population standard deviation (0 if fewer than two observations).
    pub stddev: f64,
    /// Smallest observation (0 if empty).
    pub min: f64,
    /// Largest observation (0 if empty).
    pub max: f64,
}

/// A histogram with fixed-width buckets over `[lo, hi)` plus overflow and
/// underflow buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
    summary: Summary,
}

impl Histogram {
    /// Creates a histogram with `n` equal buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            width: (hi - lo) / n as f64,
            buckets: vec![0; n],
            underflow: 0,
            overflow: 0,
            nan: 0,
            summary: Summary::new(),
        }
    }

    /// Adds one observation. NaN observations are counted separately
    /// ([`Histogram::nan_count`]) and touch neither the buckets nor the
    /// summary: `NaN < lo` is false and `(NaN / width) as usize` is 0, so
    /// a NaN would otherwise be silently filed into bucket 0 while
    /// poisoning the summary's mean/min/max.
    pub fn observe(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        self.summary.observe(x);
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.buckets.len() {
            self.overflow += 1;
        } else {
            self.buckets[idx] += 1;
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the end of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations rejected (excluded from buckets and summary).
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// The streaming summary over all non-NaN observations (including
    /// out-of-range ones; NaNs are only tallied by
    /// [`Histogram::nan_count`]).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Inclusive lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        self.lo + self.width * i as f64
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) of all bucketed observations,
    /// reported as the containing bucket's lower edge (conservative, and
    /// exact for point masses such as an all-zero latency recorder).
    /// Underflow observations resolve to `lo`; overflow observations to
    /// the upper edge of the range. Returns `None` when nothing was
    /// observed.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_over(
            self.lo,
            self.width,
            self.underflow,
            &self.buckets,
            self.overflow,
            q,
        )
    }

    /// The `q`-quantile of the observations recorded since `earlier` — a
    /// snapshot of this histogram taken at the start of a measurement
    /// window. This is how the experiment driver reports *windowed*
    /// latency percentiles from one cumulative histogram.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has a different shape (range or bucket count),
    /// if any of its counts exceed this histogram's (it must be an earlier
    /// snapshot of the same recorder), or if `q` is outside `[0, 1]`.
    pub fn quantile_since(&self, earlier: &Histogram, q: f64) -> Option<f64> {
        self.quantiles_since(earlier, &[q])[0]
    }

    /// [`Histogram::quantile_since`] for several quantiles at once: the
    /// bucket diff against the snapshot is computed a single time and
    /// reused for every requested quantile (the driver asks for
    /// p50/p95/p99 per sample window).
    ///
    /// # Panics
    ///
    /// See [`Histogram::quantile_since`].
    pub fn quantiles_since(&self, earlier: &Histogram, qs: &[f64]) -> Vec<Option<f64>> {
        assert!(
            self.lo == earlier.lo
                && self.width == earlier.width
                && self.buckets.len() == earlier.buckets.len(),
            "quantile_since requires an identically shaped snapshot"
        );
        let diff: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(&now, &then)| {
                now.checked_sub(then)
                    .expect("snapshot is not an earlier state of this histogram")
            })
            .collect();
        let underflow = self
            .underflow
            .checked_sub(earlier.underflow)
            .expect("snapshot is not an earlier state of this histogram");
        let overflow = self
            .overflow
            .checked_sub(earlier.overflow)
            .expect("snapshot is not an earlier state of this histogram");
        qs.iter()
            .map(|&q| quantile_over(self.lo, self.width, underflow, &diff, overflow, q))
            .collect()
    }
}

/// Shared quantile kernel over a bucket array plus out-of-range tallies.
fn quantile_over(
    lo: f64,
    width: f64,
    underflow: u64,
    buckets: &[u64],
    overflow: u64,
    q: f64,
) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0, 1], got {q}"
    );
    let total = underflow + overflow + buckets.iter().sum::<u64>();
    if total == 0 {
        return None;
    }
    // 1-based rank of the order statistic we want.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    if rank <= underflow {
        return Some(lo);
    }
    let mut seen = underflow;
    for (i, &count) in buckets.iter().enumerate() {
        if count > 0 && rank <= seen + count {
            return Some(lo + width * i as f64);
        }
        seen += count;
    }
    // Only overflow observations remain: report the upper range edge.
    Some(lo + width * buckets.len() as f64)
}

/// A keyed family of counters (Figure 5's per-message-category counts).
#[derive(Debug, Clone, Default)]
pub struct CounterFamily {
    counters: BTreeMap<String, Counter>,
}

impl CounterFamily {
    /// Creates an empty family.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter for `key`, creating it if needed.
    pub fn add(&mut self, key: &str, n: u64) {
        self.counters.entry(key.to_owned()).or_default().add(n);
    }

    /// Current value for `key` (0 if never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).map_or(0, |c| c.get())
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, c)| (k.as_str(), c.get()))
    }

    /// Sum over all counters.
    pub fn total(&self) -> u64 {
        self.counters.values().map(|c| c.get()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn time_series_stats() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(0), 1.0);
        ts.record(SimTime::from_secs(10), 3.0);
        ts.record(SimTime::from_secs(20), 2.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max(), Some(3.0));
        assert_eq!(ts.mean(), Some(2.0));
    }

    #[test]
    fn time_series_windows() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.record(SimTime::from_secs(i), i as f64);
        }
        let lo = SimTime::from_secs(2);
        let hi = SimTime::from_secs(5);
        assert_eq!(ts.mean_in(lo, hi), Some(3.0)); // samples 2,3,4
        assert_eq!(ts.max_in(lo, hi), Some(4.0));
        assert_eq!(
            ts.mean_in(SimTime::from_secs(50), SimTime::from_secs(60)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "chronologically")]
    fn time_series_rejects_out_of_order() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_secs(5), 1.0);
        ts.record(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn summary_mean_and_stddev() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.observe(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn summary_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.observe(x);
        }
        let mut left = Summary::new();
        let mut right = Summary::new();
        for &x in &xs[..37] {
            left.observe(x);
        }
        for &x in &xs[37..] {
            right.observe(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn summary_snapshot_copies_fields() {
        let mut s = Summary::new();
        for x in [1.0, 3.0] {
            s.observe(x);
        }
        let snap = s.snapshot();
        assert_eq!(snap.count, 2);
        assert!((snap.mean - 2.0).abs() < 1e-12);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 3.0);
        assert_eq!(Summary::new().snapshot(), SummarySnapshot::default());
    }

    #[test]
    fn summary_empty_behaviour() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0, 25.0] {
            h.observe(x);
        }
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(9), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.summary().count(), 7);
        assert!((h.bucket_lo(3) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_nan_without_poisoning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.observe(2.5);
        h.observe(f64::NAN);
        h.observe(f64::NAN);
        // NaN is counted apart — not filed into bucket 0.
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.bucket(0), 0);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        // The summary ignores NaN entirely instead of turning into NaN.
        assert_eq!(h.summary().count(), 1);
        assert!((h.summary().mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.summary().min(), Some(2.5));
        assert_eq!(h.summary().max(), Some(2.5));
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.observe(i as f64 + 0.5);
        }
        // Uniform 0.5..99.5: the q-quantile lands within one bucket width.
        for &(q, expect) in &[(0.0, 0.0), (0.5, 50.0), (0.95, 95.0), (1.0, 100.0)] {
            let got = h.quantile(q).unwrap();
            assert!(
                (got - expect).abs() <= 1.0,
                "q={q}: got {got}, want ~{expect}"
            );
        }
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn histogram_quantile_handles_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for _ in 0..10 {
            h.observe(-5.0); // underflow
        }
        for _ in 0..10 {
            h.observe(50.0); // overflow
        }
        assert_eq!(h.quantile(0.25), Some(0.0));
        assert_eq!(h.quantile(0.99), Some(10.0));
    }

    #[test]
    fn histogram_windowed_quantile() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for _ in 0..50 {
            h.observe(10.0);
        }
        let snapshot = h.clone();
        for _ in 0..50 {
            h.observe(90.0);
        }
        // Cumulative median sits between the clusters; the windowed one
        // sees only the late observations.
        let windowed = h.quantile_since(&snapshot, 0.5).unwrap();
        assert!((windowed - 91.0).abs() <= 1.0, "windowed median {windowed}");
        assert_eq!(h.quantile_since(&h.clone(), 0.5), None, "empty window");
    }

    #[test]
    #[should_panic(expected = "identically shaped")]
    fn histogram_windowed_quantile_rejects_shape_mismatch() {
        let a = Histogram::new(0.0, 100.0, 100);
        let b = Histogram::new(0.0, 100.0, 50);
        a.quantile_since(&b, 0.5);
    }

    #[test]
    fn counter_family() {
        let mut f = CounterFamily::new();
        f.add("lookup", 3);
        f.add("split", 1);
        f.add("lookup", 2);
        assert_eq!(f.get("lookup"), 5);
        assert_eq!(f.get("split"), 1);
        assert_eq!(f.get("missing"), 0);
        assert_eq!(f.total(), 6);
        let keys: Vec<&str> = f.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["lookup", "split"]);
    }
}
