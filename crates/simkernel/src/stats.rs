//! Small statistics helpers shared by experiments and tests.

/// Mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice (0 for fewer than two samples).
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `q`-th percentile (0 ≤ q ≤ 100) using linear interpolation between
/// closest ranks. Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&q), "percentile must be in [0,100]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Ordinary least squares fit `y = a + b·x`; returns `(a, b)`.
/// Returns `None` when fewer than two points or when x has no variance.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|&(x, _)| x).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let sxx: f64 = points.iter().map(|&(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|&(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    Some((a, b))
}

/// Maximum over a slice (None for an empty slice).
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc, v| {
        Some(match acc {
            None => v,
            Some(m) => m.max(v),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&xs, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), Some(5.0));
        assert_eq!(percentile(&xs, 75.0), Some(7.5));
    }

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let (a, b) = linear_fit(&pts).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert_eq!(linear_fit(&[]), None);
        assert_eq!(linear_fit(&[(1.0, 1.0)]), None);
        assert_eq!(linear_fit(&[(1.0, 1.0), (1.0, 2.0)]), None);
    }

    #[test]
    fn max_of_slice() {
        assert_eq!(max(&[1.0, 5.0, 3.0]), Some(5.0));
        assert_eq!(max(&[]), None);
    }
}
