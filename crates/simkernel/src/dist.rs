//! Sampling distributions used by the CLASH workloads.
//!
//! The paper's workloads need three distribution families (§6.1):
//!
//! * **Exponential** — virtual stream lengths (`Ld`, mean 1000 packets) and
//!   query-client lifetimes (`Lq`, mean 30 minutes).
//! * **Discrete weighted** — the skewed distributions over the 8-bit base
//!   portion of the identifier key (workloads A, B, C of Figure 3). We use
//!   Vose's alias method so a draw is O(1) regardless of skew.
//! * **Zipf** — an alternative skew family used by the ablation experiments.

use crate::rng::DetRng;

/// Exponential distribution with a given mean, sampled by inverse transform.
///
/// # Example
///
/// ```
/// use clash_simkernel::dist::Exponential;
/// use clash_simkernel::rng::DetRng;
///
/// let exp = Exponential::with_mean(1000.0);
/// let mut rng = DetRng::new(1);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean (`1/λ`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { mean }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut DetRng) -> f64 {
        // Inverse CDF; (1 - u) avoids ln(0).
        let u = rng.uniform_f64();
        -self.mean * (1.0 - u).ln()
    }
}

/// Discrete distribution over `0..n` with arbitrary weights, sampled in O(1)
/// via Vose's alias method.
///
/// This is the sampler behind the Figure 3 workload skews: the weights are
/// the per-value frequencies of the 8-bit base portion of the key.
#[derive(Debug, Clone)]
pub struct DiscreteDist {
    prob: Vec<f64>,
    alias: Vec<u32>,
    weights: Vec<f64>,
    total: f64,
}

impl DiscreteDist {
    /// Builds the alias tables from raw (unnormalized) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight[{i}] must be finite and non-negative, got {w}"
            );
        }
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        // Scale to mean 1.
        let scaled: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut prob = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        let mut p = scaled.clone();
        for (i, &w) in p.iter().enumerate() {
            if w < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = p[s];
            alias[s] = l as u32;
            p[l] = (p[l] + p[s]) - 1.0;
            if p[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for l in large {
            prob[l] = 1.0;
        }
        for s in small {
            prob[s] = 1.0; // numerical residue
        }

        DiscreteDist {
            prob,
            alias,
            weights: weights.to_vec(),
            total,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Probability mass of category `i`.
    pub fn mass(&self, i: usize) -> f64 {
        self.weights[i] / self.total
    }

    /// The raw weights the distribution was built from.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Draws one category index.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let i = rng.uniform_index(self.prob.len());
        if rng.uniform_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`, sampled via a
/// precomputed CDF and binary search (O(log n) per draw).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with `n` ranks and exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if there are no ranks (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank (0 is the most popular).
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.uniform_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `i`.
    pub fn mass(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xC1A5)
    }

    #[test]
    fn exponential_mean_converges() {
        let exp = Exponential::with_mean(30.0);
        let mut r = rng();
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 30.0).abs() < 0.5, "mean={mean}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let exp = Exponential::with_mean(1.0);
        let mut r = rng();
        assert!((0..10_000).all(|_| exp.sample(&mut r) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exponential_rejects_zero_mean() {
        Exponential::with_mean(0.0);
    }

    #[test]
    fn discrete_matches_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let d = DiscreteDist::new(&weights);
        let mut r = rng();
        let mut counts = [0u32; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[d.sample(&mut r)] += 1;
        }
        for i in 0..4 {
            let expected = weights[i] / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "category {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn discrete_handles_extreme_skew() {
        // One category with 99.9% of the mass — the workload C situation.
        let mut weights = vec![1.0; 256];
        weights[128] = 255_000.0;
        let d = DiscreteDist::new(&weights);
        let mut r = rng();
        let hits = (0..100_000).filter(|_| d.sample(&mut r) == 128).count();
        let p = hits as f64 / 100_000.0;
        assert!(p > 0.99, "p={p}");
    }

    #[test]
    fn discrete_zero_weight_category_never_sampled() {
        let d = DiscreteDist::new(&[1.0, 0.0, 1.0]);
        let mut r = rng();
        assert!((0..50_000).all(|_| d.sample(&mut r) != 1));
    }

    #[test]
    fn discrete_mass_is_normalized() {
        let d = DiscreteDist::new(&[2.0, 6.0]);
        assert!((d.mass(0) - 0.25).abs() < 1e-12);
        assert!((d.mass(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn discrete_rejects_empty() {
        DiscreteDist::new(&[]);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn discrete_rejects_all_zero() {
        DiscreteDist::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_rank_zero_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[99]);
    }

    #[test]
    fn zipf_masses_sum_to_one() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|i| z.mass(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.mass(i) - 0.1).abs() < 1e-9);
        }
    }
}
