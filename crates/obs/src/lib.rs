//! Observability for the CLASH stack: see where every millisecond and
//! message goes, with zero bit-for-bit impact.
//!
//! Four pieces, all passive:
//!
//! * [`event`] / [`sink`] — a **deterministic flight recorder**: the
//!   protocol layer emits structured, virtual-time-stamped
//!   [`TraceEvent`]s (locate probe hops, split/merge decisions with the
//!   load numbers that triggered them, replica recovery timelines,
//!   batch-flush windows) into a [`TraceSink`]. The disabled default
//!   ([`NullSink`]) costs one cached boolean test per emit site;
//!   recording never reads a clock and never draws RNG, so traced and
//!   untraced runs are bit-for-bit identical.
//! * [`telemetry`] — a unified [`Telemetry`] registry of labeled
//!   counters/gauges/summaries with snapshot/delta semantics, replacing
//!   per-experiment field picking.
//! * [`profile`] — per-phase wall-clock profiling of the load check and
//!   batch flush. Protocol crates name [`CheckPhase`]s; the only clock
//!   reader ([`WallProfiler`]) lives here, where the `no-wall-clock`
//!   lint policy allows it.
//! * [`chrome`] — Chrome trace-event JSON export, loadable in Perfetto.
//!
//! See `docs/ARCHITECTURE.md` § Observability for the event taxonomy
//! and placement rules.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod profile;
pub mod sink;
pub mod telemetry;

pub use chrome::{to_chrome_json, write_chrome_trace};
pub use event::{ArgValue, TraceEvent, TraceEventKind};
pub use profile::{CheckPhase, NullProfiler, PhaseProfile, PhaseProfiler, WallProfiler};
pub use sink::{FullSink, NullSink, RingSink, TraceMode, TraceSink};
pub use telemetry::{MetricValue, Telemetry};
