//! The unified telemetry registry.
//!
//! Before this crate, each experiment hand-picked struct fields:
//! message totals from `MessageStats`, latency quantiles from
//! `LatencyMetrics`, recovery totals from driver-private counters. The
//! [`Telemetry`] registry gives all of them one namespace of labeled
//! metrics with snapshot/delta semantics, so a status surface (ROADMAP
//! item 2) or a cost ledger (item 5) can enumerate what exists instead
//! of knowing where each number lives.
//!
//! Keys are dotted paths (`messages.accept_object`,
//! `latency.locate.mean_ms`, `recovery.groups_recovered`). Storage is a
//! `BTreeMap`, so iteration order — and any rendering built on it — is
//! deterministic.

use std::collections::BTreeMap;

use clash_simkernel::metrics::SummarySnapshot;

/// One registered metric's value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// Monotone count (messages sent, splits performed).
    Counter(u64),
    /// Instantaneous level (current servers, load fraction).
    Gauge(f64),
    /// Distribution summary (latencies, check durations).
    Summary(SummarySnapshot),
}

/// A labeled bag of metrics with snapshot and delta support.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Telemetry {
    metrics: BTreeMap<String, MetricValue>,
}

impl Telemetry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Set counter `name` to `value` (registering it if new).
    pub fn counter(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(name.to_owned(), MetricValue::Counter(value));
    }

    /// Add `delta` to counter `name` (registering it at `delta` if new).
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a non-counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self
            .metrics
            .entry(name.to_owned())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            other => panic!("{name} is not a counter: {other:?}"),
        }
    }

    /// Set gauge `name` to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.metrics
            .insert(name.to_owned(), MetricValue::Gauge(value));
    }

    /// Set summary `name` to `snap`.
    pub fn summary(&mut self, name: &str, snap: SummarySnapshot) {
        self.metrics
            .insert(name.to_owned(), MetricValue::Summary(snap));
    }

    /// Look up one metric.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// A counter's value, if `name` is a registered counter.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// All metrics in deterministic (lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Fold `other`'s metrics into this registry under a `prefix.`
    /// namespace (e.g. merging driver counters into a cluster snapshot).
    pub fn absorb(&mut self, prefix: &str, other: &Telemetry) {
        for (k, v) in other.iter() {
            self.metrics.insert(format!("{prefix}.{k}"), *v);
        }
    }

    /// A point-in-time copy of the registry.
    #[must_use]
    pub fn snapshot(&self) -> Telemetry {
        self.clone()
    }

    /// Counter movement since `earlier`: every counter present in both,
    /// with `self - earlier` (saturating), in deterministic order.
    /// Gauges and summaries are level readings, not flows, so they are
    /// excluded from deltas by design.
    #[must_use]
    pub fn counter_delta(&self, earlier: &Telemetry) -> Vec<(String, u64)> {
        self.metrics
            .iter()
            .filter_map(|(k, v)| {
                let MetricValue::Counter(now) = v else {
                    return None;
                };
                let before = earlier.counter_value(k).unwrap_or(0);
                Some((k.clone(), now.saturating_sub(before)))
            })
            .collect()
    }

    /// Render as aligned `name value` lines, one metric per line, in
    /// deterministic order — the quick-look format for status output.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (k, v) in self.iter() {
            match v {
                MetricValue::Counter(c) => s.push_str(&format!("{k} = {c}\n")),
                MetricValue::Gauge(g) => s.push_str(&format!("{k} = {g:.4}\n")),
                MetricValue::Summary(snap) => s.push_str(&format!(
                    "{k} = n={} mean={:.4} sd={:.4} min={:.4} max={:.4}\n",
                    snap.count, snap.mean, snap.stddev, snap.min, snap.max
                )),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let mut t = Telemetry::new();
        t.add("messages.accept_object", 10);
        t.add("messages.accept_object", 5);
        t.counter("splits", 3);
        let before = t.snapshot();
        t.add("messages.accept_object", 7);
        t.add("merges", 1);
        let delta = t.counter_delta(&before);
        assert_eq!(
            delta,
            vec![
                ("merges".to_owned(), 1),
                ("messages.accept_object".to_owned(), 7),
                ("splits".to_owned(), 0),
            ]
        );
    }

    #[test]
    fn gauges_and_summaries_register_and_render() {
        let mut t = Telemetry::new();
        t.gauge("servers.active", 42.0);
        t.summary(
            "latency.locate_ms",
            SummarySnapshot {
                count: 100,
                mean: 1.5,
                stddev: 0.2,
                min: 0.9,
                max: 3.1,
            },
        );
        t.counter("z.last", 1);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("latency.locate_ms = n=100"));
        assert!(lines[1].starts_with("servers.active = 42.0000"));
        assert_eq!(lines[2], "z.last = 1");
    }

    #[test]
    fn absorb_namespaces_foreign_metrics() {
        let mut cluster = Telemetry::new();
        cluster.counter("messages.total", 9);
        let mut driver = Telemetry::new();
        driver.counter("load_checks", 4);
        cluster.absorb("driver", &driver);
        assert_eq!(cluster.counter_value("driver.load_checks"), Some(4));
        assert_eq!(cluster.len(), 2);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn add_to_gauge_panics() {
        let mut t = Telemetry::new();
        t.gauge("g", 1.0);
        t.add("g", 1);
    }
}
