//! Trace sinks: where recorded events go.
//!
//! The recorder is wired so that the *disabled* path costs one boolean
//! load per potential event: emitters cache [`TraceSink::enabled`] and
//! skip event construction entirely when it is `false`. Sinks never
//! allocate per event beyond their declared buffer, never read clocks
//! (events arrive pre-stamped with virtual time), and never draw RNG —
//! recording is observation, not behaviour.

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Destination for flight-recorder events.
///
/// `tail` takes `&self` deliberately: the consistency checker runs with
/// a shared borrow and must be able to dump recent history right before
/// it panics.
pub trait TraceSink {
    /// Whether emitters should record at all. Cached by the emitting
    /// layer; a sink's answer must not change on its own.
    fn enabled(&self) -> bool;
    /// Record one event. Called only when [`TraceSink::enabled`] is true.
    fn record(&mut self, ev: TraceEvent);
    /// The most recent `n` events, oldest first, without consuming them.
    fn tail(&self, n: usize) -> Vec<TraceEvent>;
    /// Remove and return everything recorded so far, oldest first.
    fn drain(&mut self) -> Vec<TraceEvent>;
    /// Events discarded because the sink was full (0 for unbounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
    /// The sink's buffer bound, if it has one (`None` for unbounded or
    /// non-recording sinks). Lets diagnostic dumpers size their tail
    /// request to what the sink can actually hold instead of assuming a
    /// fixed window.
    fn capacity(&self) -> Option<usize> {
        None
    }
}

/// The zero-cost default: reports disabled, records nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _ev: TraceEvent) {}
    fn tail(&self, _n: usize) -> Vec<TraceEvent> {
        Vec::new()
    }
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Bounded ring buffer: keeps the last `capacity` events, counts what
/// it sheds. The flight-recorder mode for long runs — memory stays flat
/// and the tail always holds the moments before a failure.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Events currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf.iter().skip(skip).copied().collect()
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn capacity(&self) -> Option<usize> {
        Some(self.capacity)
    }
}

/// Unbounded sink for full-export runs (`--trace <path>`): keeps every
/// event so the whole run can be written as a Chrome trace afterwards.
#[derive(Debug, Default)]
pub struct FullSink {
    buf: Vec<TraceEvent>,
}

impl FullSink {
    /// An empty full-export sink.
    #[must_use]
    pub fn new() -> Self {
        FullSink::default()
    }

    /// Events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for FullSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: TraceEvent) {
        self.buf.push(ev);
    }

    fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.buf.len().saturating_sub(n);
        self.buf[skip..].to_vec()
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.buf)
    }
}

/// How an experiment run wants its flight recorder configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// No recording; emitters skip event construction (the default).
    Off,
    /// Bounded ring of the given capacity (dump-on-failure history).
    Ring(usize),
    /// Record everything for post-run export.
    Full,
}

impl TraceMode {
    /// Build the sink this mode describes.
    #[must_use]
    pub fn make_sink(self) -> Box<dyn TraceSink> {
        match self {
            TraceMode::Off => Box::new(NullSink),
            TraceMode::Ring(cap) => Box::new(RingSink::new(cap)),
            TraceMode::Full => Box::new(FullSink::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use clash_simkernel::time::SimTime;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(seq * 10),
            seq,
            kind: TraceEventKind::ServerJoined { server: seq },
        }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.enabled());
        s.record(ev(0));
        assert!(s.drain().is_empty());
        assert!(s.tail(10).is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn ring_sink_keeps_newest_and_counts_drops() {
        let mut s = RingSink::new(3);
        for i in 0..5 {
            s.record(ev(i));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let tail = s.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[1].seq, 4);
        let all = s.drain();
        assert_eq!(all.iter().map(|e| e.seq).collect::<Vec<_>>(), [2, 3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_accessor_reports_only_bounded_sinks() {
        assert_eq!(RingSink::new(3).capacity(), Some(3));
        assert_eq!(RingSink::new(0).capacity(), Some(1), "capacity clamps to 1");
        assert_eq!(NullSink.capacity(), None);
        assert_eq!(FullSink::new().capacity(), None);
    }

    #[test]
    fn full_sink_keeps_everything_in_order() {
        let mut s = FullSink::new();
        for i in 0..100 {
            s.record(ev(i));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.dropped(), 0);
        assert_eq!(
            s.tail(3).iter().map(|e| e.seq).collect::<Vec<_>>(),
            [97, 98, 99]
        );
        assert_eq!(s.drain().len(), 100);
        assert!(s.is_empty());
    }

    #[test]
    fn trace_mode_builds_matching_sinks() {
        assert!(!TraceMode::Off.make_sink().enabled());
        assert!(TraceMode::Ring(8).make_sink().enabled());
        assert!(TraceMode::Full.make_sink().enabled());
    }
}
