//! Per-phase wall-clock profiling of the load check and batch flush.
//!
//! The protocol crates are bound by the `no-wall-clock` lint policy:
//! they may *name* phases but never read a clock. The split here keeps
//! both sides honest — `clash-core` calls [`PhaseProfiler::begin`] /
//! [`PhaseProfiler::end`] with a [`CheckPhase`], and the one type that
//! actually touches `std::time::Instant` ([`WallProfiler`]) lives in
//! this crate, which the lint registers as a wall-clock crate.
//!
//! Profiling measures *where real milliseconds go*; it never feeds back
//! into protocol decisions, so it cannot perturb the bit-for-bit
//! determinism contract.

use std::time::Instant;

/// The named phases of a load check and of a batched-locate flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPhase {
    /// Re-promotion attempts for recoveries deferred at crash time.
    Recovery,
    /// Dirty-set sweep refreshing overloaded/mergeable candidates.
    CandidateRefresh,
    /// LOAD_REPORT delivery to parent-group owners.
    Reports,
    /// Speculative pre-routing of split placements against the frozen
    /// snapshot (sharded lanes), ahead of the split cursor walk.
    SplitSpeculate,
    /// The split cursor walk (hot groups, one binary level each).
    Splits,
    /// The merge cursor walk (cold siblings back to parents).
    Merges,
    /// Replica synchronisation (dirty and full syncs).
    ReplicaSync,
    /// Batch flush: sequential planning of probe order.
    FlushPlan,
    /// Batch flush: routing against the frozen snapshot (sharded lanes).
    FlushRoute,
    /// Batch flush: charging routed probes in plan order.
    FlushMerge,
}

impl CheckPhase {
    /// Every phase, in report order.
    pub const ALL: [CheckPhase; 10] = [
        CheckPhase::Recovery,
        CheckPhase::CandidateRefresh,
        CheckPhase::Reports,
        CheckPhase::SplitSpeculate,
        CheckPhase::Splits,
        CheckPhase::Merges,
        CheckPhase::ReplicaSync,
        CheckPhase::FlushPlan,
        CheckPhase::FlushRoute,
        CheckPhase::FlushMerge,
    ];

    /// Stable snake_case name, used as the CSV/JSON column suffix.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CheckPhase::Recovery => "recovery",
            CheckPhase::CandidateRefresh => "candidate_refresh",
            CheckPhase::Reports => "reports",
            CheckPhase::SplitSpeculate => "split_speculate",
            CheckPhase::Splits => "splits",
            CheckPhase::Merges => "merges",
            CheckPhase::ReplicaSync => "replica_sync",
            CheckPhase::FlushPlan => "flush_plan",
            CheckPhase::FlushRoute => "flush_route",
            CheckPhase::FlushMerge => "flush_merge",
        }
    }

    /// This phase's slot in [`PhaseProfile::ms`].
    #[must_use]
    pub fn index(self) -> usize {
        CheckPhase::ALL
            .iter()
            .position(|p| *p == self)
            .expect("ALL lists every phase")
    }
}

/// Accumulated wall milliseconds per phase over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseProfile {
    /// Milliseconds spent in each phase, indexed by [`CheckPhase::index`].
    pub ms: [f64; 10],
}

impl PhaseProfile {
    /// Milliseconds accumulated in `phase`.
    #[must_use]
    pub fn get(&self, phase: CheckPhase) -> f64 {
        self.ms[phase.index()]
    }

    /// Total milliseconds across all phases.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.ms.iter().sum()
    }

    /// `phase`'s fraction of the total (0 when nothing was measured).
    #[must_use]
    pub fn share(&self, phase: CheckPhase) -> f64 {
        let total = self.total();
        if total > 0.0 {
            self.get(phase) / total
        } else {
            0.0
        }
    }

    /// Add another profile's accumulations into this one.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (a, b) in self.ms.iter_mut().zip(other.ms.iter()) {
            *a += b;
        }
    }
}

/// Phase-timing hooks the protocol layer calls. Implementations must
/// not affect protocol behaviour in any way.
pub trait PhaseProfiler {
    /// Enter `phase`. Phases may nest; time is charged to each open span.
    fn begin(&mut self, phase: CheckPhase);
    /// Leave `phase` (the innermost open span must match).
    fn end(&mut self, phase: CheckPhase);
    /// Everything accumulated so far.
    fn profile(&self) -> PhaseProfile;
}

/// The no-op profiler: measures nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProfiler;

impl PhaseProfiler for NullProfiler {
    fn begin(&mut self, _phase: CheckPhase) {}
    fn end(&mut self, _phase: CheckPhase) {}
    fn profile(&self) -> PhaseProfile {
        PhaseProfile::default()
    }
}

/// Wall-clock profiler. The only clock reader in the observability
/// stack; lives here because `crates/obs` is a registered wall-clock
/// crate under the `no-wall-clock` lint policy.
#[derive(Debug, Default)]
pub struct WallProfiler {
    acc: PhaseProfile,
    open: Vec<(CheckPhase, Instant)>,
}

impl WallProfiler {
    /// A fresh profiler with all accumulators at zero.
    #[must_use]
    pub fn new() -> Self {
        WallProfiler::default()
    }
}

impl PhaseProfiler for WallProfiler {
    fn begin(&mut self, phase: CheckPhase) {
        self.open.push((phase, Instant::now()));
    }

    fn end(&mut self, phase: CheckPhase) {
        let Some((opened, started)) = self.open.pop() else {
            debug_assert!(false, "end({phase:?}) with no open span");
            return;
        };
        debug_assert_eq!(opened, phase, "phase spans must nest properly");
        self.acc.ms[opened.index()] += started.elapsed().as_secs_f64() * 1e3;
    }

    fn profile(&self) -> PhaseProfile {
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_names_unique() {
        let mut names = std::collections::BTreeSet::new();
        for (i, p) in CheckPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
            assert!(names.insert(p.name()));
        }
        assert_eq!(names.len(), CheckPhase::ALL.len());
    }

    #[test]
    fn profile_accumulates_and_shares_sum_to_one() {
        let mut p = PhaseProfile::default();
        p.ms[CheckPhase::Splits.index()] = 30.0;
        p.ms[CheckPhase::FlushRoute.index()] = 70.0;
        assert!((p.total() - 100.0).abs() < 1e-9);
        assert!((p.share(CheckPhase::Splits) - 0.3).abs() < 1e-9);
        let mut q = PhaseProfile::default();
        q.ms[CheckPhase::Splits.index()] = 10.0;
        p.merge(&q);
        assert!((p.get(CheckPhase::Splits) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn wall_profiler_charges_time_to_the_named_phase() {
        let mut prof = WallProfiler::new();
        prof.begin(CheckPhase::Splits);
        // Busy loop long enough to register on any clock resolution.
        let mut x = 0_u64;
        for i in 0..200_000 {
            x = x.wrapping_add(i);
        }
        assert!(x > 0);
        prof.end(CheckPhase::Splits);
        let p = prof.profile();
        assert!(p.get(CheckPhase::Splits) >= 0.0);
        assert_eq!(p.get(CheckPhase::Merges), 0.0);
    }

    #[test]
    fn null_profiler_reports_nothing() {
        let mut prof = NullProfiler;
        prof.begin(CheckPhase::Reports);
        prof.end(CheckPhase::Reports);
        assert_eq!(prof.profile().total(), 0.0);
    }
}
