//! Chrome trace-event JSON export (the `chrome://tracing` / Perfetto
//! "JSON Array Format").
//!
//! Each [`TraceEvent`] becomes one instant event (`"ph": "i"`) with
//! `ts` in *virtual* microseconds, so the Perfetto timeline is the
//! simulation's timeline. Events attributable to a server are filed
//! under that server's thread lane; ring ids are 64-bit hashes, so the
//! writer assigns dense `tid`s in order of first appearance and names
//! each lane `server <hex id>` via thread-name metadata. Cluster-wide
//! events (flush windows, load checks) share lane 0.
//!
//! The writer is hand-rolled: event names and argument keys are fixed
//! ASCII identifiers, so no string escaping is required, and integers
//! above 2^53 are quoted to survive JSON's double-precision numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::event::{ArgValue, TraceEvent};

/// Largest integer a JSON number can hold exactly.
const MAX_EXACT_JSON_INT: u64 = (1 << 53) - 1;

fn push_arg_value(out: &mut String, v: ArgValue) {
    match v {
        ArgValue::Int(i) if i <= MAX_EXACT_JSON_INT => {
            let _ = write!(out, "{i}");
        }
        // Too wide for an exact JSON number: quote it.
        ArgValue::Int(i) => {
            let _ = write!(out, "\"{i}\"");
        }
        ArgValue::Float(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        ArgValue::Float(_) => out.push_str("null"),
        ArgValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Render `events` as a complete Chrome trace JSON document.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    // Dense thread ids per server, in order of first appearance; lane 0
    // is reserved for cluster-wide events.
    let mut lanes: BTreeMap<u64, u64> = BTreeMap::new();
    let mut order: Vec<u64> = Vec::new();
    for ev in events {
        if let Some(server) = ev.kind.server() {
            lanes.entry(server).or_insert_with(|| {
                order.push(server);
                order.len() as u64
            });
        }
    }

    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"clash-sim\"}},\n",
    );
    out.push_str(
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"cluster\"}},\n",
    );
    for server in &order {
        let tid = lanes[server];
        let _ = writeln!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"server {server:016x}\"}}}},"
        );
    }
    for (i, ev) in events.iter().enumerate() {
        let tid = ev.kind.server().map_or(0, |s| lanes[&s]);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\
             \"tid\":{tid},\"args\":{{\"seq\":{}",
            ev.kind.name(),
            ev.at.as_micros(),
            ev.seq
        );
        for (k, v) in ev.kind.args() {
            let _ = write!(out, ",\"{k}\":");
            push_arg_value(&mut out, v);
        }
        out.push_str("}}");
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Write `events` to `path` as a Perfetto-loadable Chrome trace.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_chrome_trace<P: AsRef<Path>>(path: P, events: &[TraceEvent]) -> io::Result<()> {
    std::fs::write(path, to_chrome_json(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use clash_simkernel::time::SimTime;

    fn ev(seq: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(1000 + seq),
            seq,
            kind,
        }
    }

    #[test]
    fn document_shape_and_lane_assignment() {
        let big_id = u64::MAX - 1;
        let events = vec![
            ev(0, TraceEventKind::ServerJoined { server: big_id }),
            ev(
                1,
                TraceEventKind::FlushBegin {
                    flush_seq: 0,
                    probes: 3,
                    shards: 2,
                },
            ),
            ev(2, TraceEventKind::ServerJoined { server: 7 }),
        ];
        let json = to_chrome_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // First-seen server gets lane 1; the next gets lane 2.
        assert!(json.contains(&format!("\"name\":\"server {big_id:016x}\"")));
        assert!(json.contains("\"name\":\"server 0000000000000007\""));
        // Flush window files under the cluster lane.
        assert!(json.contains(
            "\"name\":\"flush_begin\",\"ph\":\"i\",\"s\":\"t\",\"ts\":1001,\"pid\":1,\"tid\":0"
        ));
        // The wide id is quoted so JSON doubles cannot round it.
        assert!(json.contains(&format!("\"server\":\"{big_id}\"")));
        // Small ints stay numeric.
        assert!(json.contains("\"server\":7"));
    }

    #[test]
    fn json_is_balanced_and_comma_separated() {
        let events: Vec<TraceEvent> = (0..5)
            .map(|i| ev(i, TraceEventKind::ServerCrashed { server: i }))
            .collect();
        let json = to_chrome_json(&events);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
        assert_eq!(
            json.matches("\"ph\":\"i\"").count(),
            5,
            "one instant event per trace event"
        );
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn empty_trace_is_still_valid_shape() {
        let json = to_chrome_json(&[]);
        assert!(json.contains("process_name"));
        assert!(json.trim_end().ends_with("]}"));
    }
}
