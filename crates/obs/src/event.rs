//! The flight recorder's event vocabulary.
//!
//! Every event is stamped with the *virtual* time at which the protocol
//! acted and a monotone sequence number that orders events emitted at
//! the same instant (a load check happens at one sim time but makes many
//! decisions). Events carry raw numbers only — no references into
//! cluster state, no strings built on the hot path — so recording is a
//! bounded memcpy and never draws from any RNG.
//!
//! Server and group identities are plain `u64`s (a server's Chord ring
//! id, a group's key bits); the emitting layer owns the conversion.

use clash_simkernel::time::SimTime;

/// One recorded protocol decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the decision was made.
    pub at: SimTime,
    /// Monotone per-recorder sequence number (orders same-instant events).
    pub seq: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The event taxonomy. See `docs/ARCHITECTURE.md` § Observability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEventKind {
    /// One hop of a locate's depth search, charged to `server`.
    LocateProbe {
        /// The key being located (raw bits).
        key: u64,
        /// Depth probed at this hop.
        depth: u32,
        /// Server that received the ACCEPT_OBJECT probe.
        server: u64,
        /// Whether this hop accepted the object (ends the search).
        accepted: bool,
        /// Hop index within this locate (1-based).
        hop: u32,
    },
    /// A hot group was split one binary level (paper §4).
    Split {
        /// Server that performed the split.
        server: u64,
        /// Bits of the group that split (left-aligned in `u64`).
        group_bits: u64,
        /// Depth of the group that split.
        group_depth: u32,
        /// Measured load that triggered the split (fraction of capacity).
        load: f64,
        /// Load attributed to the left child at decision time.
        left_load: f64,
        /// Load attributed to the right child at decision time.
        right_load: f64,
        /// Server the right child landed on.
        right_child_server: u64,
    },
    /// Two sibling groups merged back to their parent.
    Merge {
        /// Server that initiated the merge.
        server: u64,
        /// Bits of the resulting parent group.
        parent_bits: u64,
        /// Depth of the resulting parent group.
        parent_depth: u32,
        /// Initiator's measured load at decision time.
        load: f64,
        /// Whether the sibling lived on the same server (no network round trip).
        local: bool,
    },
    /// A merge attempt was refused by the sibling's owner (stale report).
    MergeRefused {
        /// Server that initiated the merge.
        server: u64,
        /// Sibling owner that refused.
        sibling_server: u64,
        /// Depth of the parent that would have formed.
        parent_depth: u32,
    },
    /// A crashed server's group was promoted onto a replica holder.
    ReplicaPromoted {
        /// The failed server.
        failed: u64,
        /// Bits of the recovered group.
        group_bits: u64,
        /// Depth of the recovered group.
        group_depth: u32,
        /// The replica holder that took ownership.
        new_owner: u64,
    },
    /// No live replica holder yet — recovery parked for a later check.
    RecoveryDeferred {
        /// The failed server.
        failed: u64,
        /// Bits of the deferred group.
        group_bits: u64,
        /// Depth of the deferred group.
        group_depth: u32,
    },
    /// A group's state was lost (no replicas configured or available).
    RecoveryLost {
        /// The failed server.
        failed: u64,
        /// Bits of the lost group.
        group_bits: u64,
        /// Depth of the lost group.
        group_depth: u32,
        /// Clients dropped with the state.
        clients_dropped: u64,
    },
    /// A deferred recovery was retried during a load check but stayed
    /// blocked — distinguishable in traces from a fresh deferral, and
    /// carrying the partition islands that block it.
    RecoveryRetryBlocked {
        /// The failed server whose group is still waiting.
        failed: u64,
        /// Bits of the still-deferred group.
        group_bits: u64,
        /// Depth of the still-deferred group.
        group_depth: u32,
        /// Partition island of the failed (old owner) server's address,
        /// `u64::MAX` when the network is not partitioned.
        owner_island: u64,
        /// Partition island of the retrying coordinator's address,
        /// `u64::MAX` when the network is not partitioned.
        coordinator_island: u64,
        /// Load checks this entry has waited since it was deferred.
        waited_checks: u64,
    },
    /// A previously deferred group was re-promoted during a load check.
    RecoveryRetried {
        /// Bits of the recovered group.
        group_bits: u64,
        /// Depth of the recovered group.
        group_depth: u32,
        /// The replica holder that finally took ownership.
        new_owner: u64,
    },
    /// A batched-locate flush window opened (sharded plan/route/merge).
    FlushBegin {
        /// Monotone flush sequence number.
        flush_seq: u64,
        /// Probes queued in this window.
        probes: u64,
        /// Ring-arc shards the window routed across (0 = sequential).
        shards: u64,
    },
    /// The matching flush window closed; all probes charged in plan order.
    FlushEnd {
        /// Monotone flush sequence number.
        flush_seq: u64,
    },
    /// A periodic load check started.
    LoadCheckBegin {
        /// 1-based load-check ordinal.
        ordinal: u64,
        /// Servers flagged dirty going in.
        dirty_servers: u64,
    },
    /// The matching load check finished.
    LoadCheckEnd {
        /// 1-based load-check ordinal.
        ordinal: u64,
        /// Splits performed during this check.
        splits: u64,
        /// Merges performed during this check.
        merges: u64,
    },
    /// A server joined the ring.
    ServerJoined {
        /// The new server.
        server: u64,
    },
    /// A server drained and left gracefully.
    ServerLeft {
        /// The departed server.
        server: u64,
    },
    /// A server crashed (state recoverable only via replicas).
    ServerCrashed {
        /// The crashed server.
        server: u64,
    },
}

impl TraceEventKind {
    /// Stable short name, used as the Chrome trace event name and in
    /// dump-on-failure output.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::LocateProbe { .. } => "locate_probe",
            TraceEventKind::Split { .. } => "split",
            TraceEventKind::Merge { .. } => "merge",
            TraceEventKind::MergeRefused { .. } => "merge_refused",
            TraceEventKind::ReplicaPromoted { .. } => "replica_promoted",
            TraceEventKind::RecoveryDeferred { .. } => "recovery_deferred",
            TraceEventKind::RecoveryLost { .. } => "recovery_lost",
            TraceEventKind::RecoveryRetryBlocked { .. } => "recovery_retry_blocked",
            TraceEventKind::RecoveryRetried { .. } => "recovery_retried",
            TraceEventKind::FlushBegin { .. } => "flush_begin",
            TraceEventKind::FlushEnd { .. } => "flush_end",
            TraceEventKind::LoadCheckBegin { .. } => "load_check_begin",
            TraceEventKind::LoadCheckEnd { .. } => "load_check_end",
            TraceEventKind::ServerJoined { .. } => "server_joined",
            TraceEventKind::ServerLeft { .. } => "server_left",
            TraceEventKind::ServerCrashed { .. } => "server_crashed",
        }
    }

    /// The server a Chrome trace viewer should file this event under
    /// (its `tid` lane), if the event is attributable to one.
    #[must_use]
    pub fn server(&self) -> Option<u64> {
        match *self {
            TraceEventKind::LocateProbe { server, .. }
            | TraceEventKind::Split { server, .. }
            | TraceEventKind::Merge { server, .. }
            | TraceEventKind::MergeRefused { server, .. }
            | TraceEventKind::ServerJoined { server }
            | TraceEventKind::ServerLeft { server }
            | TraceEventKind::ServerCrashed { server } => Some(server),
            TraceEventKind::ReplicaPromoted { new_owner, .. }
            | TraceEventKind::RecoveryRetried { new_owner, .. } => Some(new_owner),
            TraceEventKind::RecoveryDeferred { failed, .. }
            | TraceEventKind::RecoveryLost { failed, .. }
            | TraceEventKind::RecoveryRetryBlocked { failed, .. } => Some(failed),
            TraceEventKind::FlushBegin { .. }
            | TraceEventKind::FlushEnd { .. }
            | TraceEventKind::LoadCheckBegin { .. }
            | TraceEventKind::LoadCheckEnd { .. } => None,
        }
    }

    /// The event's payload as `(key, value)` pairs for structured export.
    /// Values are rendered as JSON numbers or booleans.
    #[must_use]
    pub fn args(&self) -> Vec<(&'static str, ArgValue)> {
        use ArgValue::{Bool, Float, Int};
        match *self {
            TraceEventKind::LocateProbe {
                key,
                depth,
                server,
                accepted,
                hop,
            } => vec![
                ("key", Int(key)),
                ("depth", Int(u64::from(depth))),
                ("server", Int(server)),
                ("accepted", Bool(accepted)),
                ("hop", Int(u64::from(hop))),
            ],
            TraceEventKind::Split {
                server,
                group_bits,
                group_depth,
                load,
                left_load,
                right_load,
                right_child_server,
            } => vec![
                ("server", Int(server)),
                ("group_bits", Int(group_bits)),
                ("group_depth", Int(u64::from(group_depth))),
                ("load", Float(load)),
                ("left_load", Float(left_load)),
                ("right_load", Float(right_load)),
                ("right_child_server", Int(right_child_server)),
            ],
            TraceEventKind::Merge {
                server,
                parent_bits,
                parent_depth,
                load,
                local,
            } => vec![
                ("server", Int(server)),
                ("parent_bits", Int(parent_bits)),
                ("parent_depth", Int(u64::from(parent_depth))),
                ("load", Float(load)),
                ("local", Bool(local)),
            ],
            TraceEventKind::MergeRefused {
                server,
                sibling_server,
                parent_depth,
            } => vec![
                ("server", Int(server)),
                ("sibling_server", Int(sibling_server)),
                ("parent_depth", Int(u64::from(parent_depth))),
            ],
            TraceEventKind::ReplicaPromoted {
                failed,
                group_bits,
                group_depth,
                new_owner,
            } => vec![
                ("failed", Int(failed)),
                ("group_bits", Int(group_bits)),
                ("group_depth", Int(u64::from(group_depth))),
                ("new_owner", Int(new_owner)),
            ],
            TraceEventKind::RecoveryDeferred {
                failed,
                group_bits,
                group_depth,
            } => vec![
                ("failed", Int(failed)),
                ("group_bits", Int(group_bits)),
                ("group_depth", Int(u64::from(group_depth))),
            ],
            TraceEventKind::RecoveryLost {
                failed,
                group_bits,
                group_depth,
                clients_dropped,
            } => vec![
                ("failed", Int(failed)),
                ("group_bits", Int(group_bits)),
                ("group_depth", Int(u64::from(group_depth))),
                ("clients_dropped", Int(clients_dropped)),
            ],
            TraceEventKind::RecoveryRetryBlocked {
                failed,
                group_bits,
                group_depth,
                owner_island,
                coordinator_island,
                waited_checks,
            } => vec![
                ("failed", Int(failed)),
                ("group_bits", Int(group_bits)),
                ("group_depth", Int(u64::from(group_depth))),
                ("owner_island", Int(owner_island)),
                ("coordinator_island", Int(coordinator_island)),
                ("waited_checks", Int(waited_checks)),
            ],
            TraceEventKind::RecoveryRetried {
                group_bits,
                group_depth,
                new_owner,
            } => vec![
                ("group_bits", Int(group_bits)),
                ("group_depth", Int(u64::from(group_depth))),
                ("new_owner", Int(new_owner)),
            ],
            TraceEventKind::FlushBegin {
                flush_seq,
                probes,
                shards,
            } => vec![
                ("flush_seq", Int(flush_seq)),
                ("probes", Int(probes)),
                ("shards", Int(shards)),
            ],
            TraceEventKind::FlushEnd { flush_seq } => vec![("flush_seq", Int(flush_seq))],
            TraceEventKind::LoadCheckBegin {
                ordinal,
                dirty_servers,
            } => vec![
                ("ordinal", Int(ordinal)),
                ("dirty_servers", Int(dirty_servers)),
            ],
            TraceEventKind::LoadCheckEnd {
                ordinal,
                splits,
                merges,
            } => vec![
                ("ordinal", Int(ordinal)),
                ("splits", Int(splits)),
                ("merges", Int(merges)),
            ],
            TraceEventKind::ServerJoined { server }
            | TraceEventKind::ServerLeft { server }
            | TraceEventKind::ServerCrashed { server } => vec![("server", Int(server))],
        }
    }
}

/// A structured-export argument value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (ids, counts, bits).
    Int(u64),
    /// A float (loads).
    Float(f64),
    /// A flag.
    Bool(bool),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_names_itself_and_lists_args() {
        let kinds = [
            TraceEventKind::LocateProbe {
                key: 1,
                depth: 2,
                server: 3,
                accepted: true,
                hop: 1,
            },
            TraceEventKind::Split {
                server: 1,
                group_bits: 0b10,
                group_depth: 2,
                load: 1.5,
                left_load: 0.9,
                right_load: 0.6,
                right_child_server: 7,
            },
            TraceEventKind::Merge {
                server: 1,
                parent_bits: 0,
                parent_depth: 1,
                load: 0.1,
                local: false,
            },
            TraceEventKind::MergeRefused {
                server: 1,
                sibling_server: 2,
                parent_depth: 1,
            },
            TraceEventKind::ReplicaPromoted {
                failed: 9,
                group_bits: 0,
                group_depth: 1,
                new_owner: 4,
            },
            TraceEventKind::RecoveryDeferred {
                failed: 9,
                group_bits: 0,
                group_depth: 1,
            },
            TraceEventKind::RecoveryLost {
                failed: 9,
                group_bits: 0,
                group_depth: 1,
                clients_dropped: 12,
            },
            TraceEventKind::RecoveryRetryBlocked {
                failed: 9,
                group_bits: 0,
                group_depth: 1,
                owner_island: 1,
                coordinator_island: 0,
                waited_checks: 3,
            },
            TraceEventKind::RecoveryRetried {
                group_bits: 0,
                group_depth: 1,
                new_owner: 4,
            },
            TraceEventKind::FlushBegin {
                flush_seq: 1,
                probes: 64,
                shards: 4,
            },
            TraceEventKind::FlushEnd { flush_seq: 1 },
            TraceEventKind::LoadCheckBegin {
                ordinal: 1,
                dirty_servers: 3,
            },
            TraceEventKind::LoadCheckEnd {
                ordinal: 1,
                splits: 2,
                merges: 0,
            },
            TraceEventKind::ServerJoined { server: 5 },
            TraceEventKind::ServerLeft { server: 5 },
            TraceEventKind::ServerCrashed { server: 5 },
        ];
        let mut names = std::collections::BTreeSet::new();
        for k in &kinds {
            assert!(!k.args().is_empty(), "{} must carry payload", k.name());
            assert!(names.insert(k.name()), "duplicate name {}", k.name());
        }
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn server_attribution_covers_decision_events() {
        let split = TraceEventKind::Split {
            server: 11,
            group_bits: 0,
            group_depth: 1,
            load: 2.0,
            left_load: 1.0,
            right_load: 1.0,
            right_child_server: 12,
        };
        assert_eq!(split.server(), Some(11));
        assert_eq!(TraceEventKind::FlushEnd { flush_seq: 0 }.server(), None);
        let promoted = TraceEventKind::ReplicaPromoted {
            failed: 1,
            group_bits: 0,
            group_depth: 1,
            new_owner: 2,
        };
        assert_eq!(promoted.server(), Some(2));
    }
}
