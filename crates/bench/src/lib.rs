//! Shared fixtures for the Criterion benchmark harness.
//!
//! The benches mirror the paper's evaluation artifacts:
//!
//! | bench target | what it measures |
//! |---|---|
//! | `keyspace_ops` | `Shape()`, splits, hashing — the §4 primitives |
//! | `chord_lookup` | `Map()` routing cost vs ring size — O(log S) |
//! | `server_table` | `ACCEPT_OBJECT` classification and `d_min` (§5) |
//! | `depth_search` | full client locate, fresh vs depth-hinted (§5) |
//! | `query_index` | continuous-query matching & migration (§6 app) |
//! | `split_merge` | binary splitting / consolidation actions (§4) |
//! | `load_check` | per-period cluster-wide check: steady-state / trickle cost |
//! | `figure_runs` | end-to-end simulation throughput per Figure 4/5 cell |
//!
//! # Quick start
//!
//! ```
//! // A small heated cluster: workload-C traffic forces a deep tree,
//! // the realistic fixture for lookup/search benchmarks.
//! let cluster = clash_bench::heated_cluster(8, 200, 7);
//! assert_eq!(cluster.server_count(), 8);
//! cluster.verify_consistency();
//!
//! // Deterministic benchmark key streams.
//! assert_eq!(clash_bench::key_stream(4, 1), clash_bench::key_stream(4, 1));
//! ```

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_simkernel::rng::DetRng;
use clash_workload::skew::{Workload, WorkloadKind};

/// Builds a cluster heated with workload C so that the logical tree is
/// deep — the realistic state for lookup/search benchmarks.
///
/// # Panics
///
/// Panics on configuration errors (benchmark fixtures are infallible).
pub fn heated_cluster(servers: usize, sources: usize, seed: u64) -> ClashCluster {
    let config = ClashConfig {
        capacity: (sources as f64 * 2.0 / 40.0).max(50.0),
        ..ClashConfig::paper()
    };
    let mut cluster = ClashCluster::new(config, servers, seed).expect("valid config");
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(seed ^ 0xBEEF);
    for i in 0..sources as u64 {
        let key = workload.sample_key(config.key_width, &mut rng);
        cluster.attach_source(i, key, 2.0).expect("attach");
    }
    for _ in 0..6 {
        cluster.run_load_check().expect("load check");
    }
    cluster
}

/// A deterministic stream of workload-C keys for lookup benchmarks.
pub fn key_stream(n: usize, seed: u64) -> Vec<clash_keyspace::key::Key> {
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(seed);
    (0..n)
        .map(|_| workload.sample_key(clash_keyspace::key::KeyWidth::PAPER, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heated_cluster_is_deep_and_consistent() {
        let cluster = heated_cluster(32, 1500, 7);
        let (_, _, max_depth) = cluster.depth_stats().expect("groups exist");
        assert!(max_depth > 6, "expected a deep tree, got {max_depth}");
        cluster.verify_consistency();
    }

    #[test]
    fn key_stream_is_deterministic() {
        assert_eq!(key_stream(10, 3), key_stream(10, 3));
        assert_ne!(key_stream(10, 3), key_stream(10, 4));
    }
}
