//! End-to-end simulation throughput, one cell per figure: a miniature
//! Figure 4 phase (CLASH and DHT(6)) and a miniature Figure 5 overhead
//! cell. These track the cost of regenerating the evaluation, not the
//! protocol itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clash_core::config::ClashConfig;
use clash_sim::driver::SimDriver;
use clash_simkernel::time::SimDuration;
use clash_workload::scenario::{Phase, ScenarioSpec};
use clash_workload::skew::WorkloadKind;

fn mini_spec(workload: WorkloadKind, stream_packets: f64) -> ScenarioSpec {
    ScenarioSpec {
        servers: 24,
        sources: 1200,
        query_clients: 0,
        phases: vec![Phase {
            workload,
            duration: SimDuration::from_mins(10),
        }],
        mean_stream_packets: stream_packets,
        load_check_period: SimDuration::from_mins(1),
        sample_period: SimDuration::from_mins(1),
        ..ScenarioSpec::paper()
    }
}

fn mini_config(splitting: bool) -> ClashConfig {
    if splitting {
        ClashConfig {
            capacity: 250.0,
            ..ClashConfig::paper()
        }
    } else {
        ClashConfig {
            capacity: 250.0,
            ..ClashConfig::dht_baseline(6)
        }
    }
}

fn bench_fig4_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure 4 cell (10 sim-minutes, workload C)");
    group.sample_size(10);
    group.bench_function("CLASH", |b| {
        b.iter(|| {
            let driver = SimDriver::new(mini_config(true), mini_spec(WorkloadKind::C, 1000.0))
                .expect("valid");
            black_box(driver.run().expect("run"))
        })
    });
    group.bench_function("DHT(6)", |b| {
        b.iter(|| {
            let driver = SimDriver::new(mini_config(false), mini_spec(WorkloadKind::C, 1000.0))
                .expect("valid");
            black_box(driver.run().expect("run"))
        })
    });
    group.finish();
}

fn bench_fig5_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure 5 cell (10 sim-minutes, Ld=50)");
    group.sample_size(10);
    group.bench_function("workload B, heavy churn", |b| {
        b.iter(|| {
            let driver =
                SimDriver::new(mini_config(true), mini_spec(WorkloadKind::B, 50.0)).expect("valid");
            black_box(driver.run().expect("run"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4_cell, bench_fig5_cell);
criterion_main!(benches);
