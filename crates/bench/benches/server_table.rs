//! `ServerTable` costs: the §5 `ACCEPT_OBJECT` case analysis (longest
//! prefix match over the entries) and the `d_min` computation, at
//! realistic table sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use clash_core::config::ClashConfig;
use clash_core::server::ClashServer;
use clash_core::ServerId;
use clash_keyspace::key::Key;
use clash_keyspace::prefix::Prefix;

/// Builds a server with a left-spine split chain of the given length
/// (each split adds an inactive parent + active left child — the densest
/// realistic table shape).
fn chained_server(splits: u32) -> ClashServer {
    let config = ClashConfig::paper();
    let id = ServerId::new(1, config.hash_space);
    let mut server = ClashServer::new(id, config);
    let mut group = Prefix::new(0b011010, 6, config.key_width).expect("valid");
    server.bootstrap_root(group).expect("fresh");
    for _ in 0..splits {
        let (left, _right) = server.split_group(group).expect("splittable");
        server.set_right_child(group, id).expect("split");
        group = left;
    }
    server
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("accept_object classification");
    for &splits in &[2u32, 8, 16] {
        let server = chained_server(splits);
        // A key owned by the deepest leaf.
        let owned = Prefix::new(0b011010, 6, ClashConfig::paper().key_width)
            .expect("valid")
            .virtual_key();
        // A key far away (worst-case d_min walk).
        let foreign = Key::from_bits_truncated(!owned.bits(), owned.width());
        group.bench_with_input(BenchmarkId::new("owned", splits), &splits, |b, _| {
            b.iter(|| server.table().classify_object(black_box(owned), 9))
        });
        group.bench_with_input(BenchmarkId::new("foreign", splits), &splits, |b, _| {
            b.iter(|| server.table().classify_object(black_box(foreign), 9))
        });
    }
    group.finish();
}

fn bench_load_computation(c: &mut Criterion) {
    let server = chained_server(16);
    c.bench_function("server load over 17 active groups", |b| {
        b.iter(|| black_box(server.current_load()))
    });
}

criterion_group!(benches, bench_classify, bench_load_computation);
criterion_main!(benches);
