//! Micro-benchmarks for the §4 key-space primitives: `Shape()` (prefix
//! extraction + virtual key), group splitting, and the hash `f()`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clash_keyspace::hash::{HashSpace, KeyHasher, SplitMixHasher};
use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;

fn bench_shape(c: &mut Criterion) {
    let key = Key::from_bits_truncated(0xA5_5A7B, KeyWidth::PAPER);
    c.bench_function("shape: prefix-of-key + virtual key (d=13)", |b| {
        b.iter(|| {
            let group = Prefix::of_key(black_box(key), black_box(13));
            black_box(group.virtual_key())
        })
    });
}

fn bench_split(c: &mut Criterion) {
    let group = Prefix::new(0b011010, 6, KeyWidth::PAPER).expect("valid");
    c.bench_function("prefix split into children", |b| {
        b.iter(|| black_box(group).split().expect("splittable"))
    });
}

fn bench_hash(c: &mut Criterion) {
    let hasher = SplitMixHasher::new(HashSpace::PAPER, 42);
    let key = Key::from_bits_truncated(0xA5_5A7B, KeyWidth::PAPER);
    c.bench_function("hash f(): virtual key -> 24-bit hash", |b| {
        b.iter(|| hasher.hash_key(black_box(key)))
    });
}

fn bench_common_prefix(c: &mut Criterion) {
    let a = Key::from_bits_truncated(0xA5_5A7B, KeyWidth::PAPER);
    let b2 = Key::from_bits_truncated(0xA5_5F00, KeyWidth::PAPER);
    c.bench_function("common prefix length of two keys", |b| {
        b.iter(|| {
            black_box(a)
                .common_prefix_len(black_box(b2))
                .expect("same width")
        })
    });
}

criterion_group!(
    benches,
    bench_shape,
    bench_split,
    bench_hash,
    bench_common_prefix
);
criterion_main!(benches);
