//! The cluster-wide load check — the per-period hot path the
//! dirty-tracking optimization targets.
//!
//! Three regimes:
//!
//! * **steady state** — nothing changed since the last check. Historically
//!   O(cluster) (every server reclassified, every replica group
//!   re-ensured); now O(1).
//! * **trickle** — a few source moves between checks, the realistic
//!   live-system regime: cost scales with the touched servers.
//! * **replicated steady state** — same, with `r = 2` so the replica
//!   sync path is in play.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_simkernel::rng::DetRng;
use clash_workload::skew::{Workload, WorkloadKind};

/// A paper-config ring with a light source population: nothing ever
/// overloads, so the check's cost is pure sweep overhead.
fn idle_cluster(servers: usize, replication: usize) -> ClashCluster {
    let config = ClashConfig::paper().with_replication(replication);
    let mut cluster = ClashCluster::new(config, servers, 11).expect("valid config");
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(0xBE7C);
    for i in 0..(servers / 2) as u64 {
        let key = workload.sample_key(config.key_width, &mut rng);
        cluster.attach_source(i, key, 2.0).expect("attach");
    }
    for _ in 0..3 {
        cluster.run_load_check().expect("settle");
    }
    cluster
}

fn bench_steady_state(c: &mut Criterion) {
    let mut cluster = idle_cluster(1000, 0);
    c.bench_function("load_check: steady state, 1000 servers, r=0", |b| {
        b.iter(|| black_box(cluster.run_load_check().expect("check")))
    });
}

fn bench_steady_state_replicated(c: &mut Criterion) {
    let mut cluster = idle_cluster(1000, 2);
    c.bench_function("load_check: steady state, 1000 servers, r=2", |b| {
        b.iter(|| black_box(cluster.run_load_check().expect("check")))
    });
}

fn bench_trickle(c: &mut Criterion) {
    let mut cluster = idle_cluster(1000, 2);
    let workload = Workload::paper(WorkloadKind::C);
    let mut rng = DetRng::new(0x791C);
    c.bench_function(
        "load_check: 2 source moves + check, 1000 servers, r=2",
        |b| {
            b.iter(|| {
                for _ in 0..2 {
                    let source = rng.next_u64() % 500;
                    if cluster.has_source(source) {
                        let key = workload.sample_key(cluster.config().key_width, &mut rng);
                        cluster.move_source(source, key).expect("move");
                    }
                }
                black_box(cluster.run_load_check().expect("check"))
            })
        },
    );
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_steady_state_replicated,
    bench_trickle
);
criterion_main!(benches);
