//! The DHT substrate cost: `Map()` routing hops and latency vs ring size
//! (Chord's O(log S), which every CLASH probe pays).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use clash_chord::net::SimNet;
use clash_keyspace::hash::HashSpace;
use clash_simkernel::rng::DetRng;

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord find_successor");
    for &n in &[64usize, 256, 1000] {
        let mut rng = DetRng::new(1);
        let mut net = SimNet::with_random_nodes(HashSpace::PAPER, n, &mut rng);
        net.build_stable();
        let starts = net.node_ids();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i = (i + 1) % starts.len();
                let h = (i as u64).wrapping_mul(0x9E37_79B9) & 0xFF_FFFF;
                black_box(net.route(starts[i], h))
            })
        });
    }
    group.finish();
}

fn bench_stabilization_round(c: &mut Criterion) {
    let mut rng = DetRng::new(2);
    let mut net = SimNet::with_random_nodes(HashSpace::PAPER, 256, &mut rng);
    net.build_stable();
    c.bench_function("chord stabilize_round (256 nodes, converged)", |b| {
        b.iter(|| black_box(net.stabilize_round()))
    });
}

criterion_group!(benches, bench_lookup_scaling, bench_stabilization_round);
criterion_main!(benches);
