//! Continuous-query substrate costs: packet matching against the query
//! trie and group extraction for state migration (§6's application work).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;
use clash_simkernel::rng::DetRng;
use clash_streamquery::engine::QueryEngine;
use clash_streamquery::query::ContinuousQuery;

fn engine_with(queries: usize, seed: u64) -> QueryEngine {
    let width = KeyWidth::PAPER;
    let mut engine = QueryEngine::new(width);
    let mut rng = DetRng::new(seed);
    for id in 0..queries as u64 {
        let depth = 4 + rng.uniform_u64(16) as u32;
        let pattern = rng.next_u64() & ((1u64 << depth) - 1);
        let region = Prefix::new(pattern, depth, width).expect("valid");
        engine.register(ContinuousQuery::new(id, region));
    }
    engine
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("query matching per packet");
    for &n in &[100usize, 1000, 10_000] {
        let engine = engine_with(n, 5);
        let mut rng = DetRng::new(9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let key = Key::from_bits_truncated(rng.next_u64(), KeyWidth::PAPER);
                black_box(engine.index().count_matches(key))
            })
        });
    }
    group.finish();
}

fn bench_migration(c: &mut Criterion) {
    c.bench_function("extract+reinsert one key group (1000 queries)", |b| {
        b.iter_batched(
            || engine_with(1000, 6),
            |mut engine| {
                let group = Prefix::new(0b0110, 4, KeyWidth::PAPER).expect("valid");
                let moved = engine.extract_group(group);
                let mut target = QueryEngine::new(KeyWidth::PAPER);
                target.register_all(moved);
                black_box(target.query_count())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_matching, bench_migration);
criterion_main!(benches);
