//! Protocol action costs: one binary split (with ledger repartition and
//! DHT placement of the right child) and one consolidation, through the
//! full cluster path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clash_core::cluster::ClashCluster;
use clash_core::config::ClashConfig;
use clash_keyspace::key::Key;

/// A cluster with one hot group ready to split on every iteration.
fn hot_cluster() -> ClashCluster {
    let config = ClashConfig {
        capacity: 1e9, // never auto-split; the bench drives checks itself
        ..ClashConfig::small_test()
    };
    let mut cluster = ClashCluster::new(config, 16, 3).expect("valid");
    for i in 0..64u64 {
        let key = Key::from_bits_truncated(0b0100_0000 | (i % 64), config.key_width);
        cluster.attach_source(i, key, 2.0).expect("attach");
    }
    cluster
}

fn bench_load_check_cycle(c: &mut Criterion) {
    // Full split-until-nominal followed by merge-back, via run_load_check.
    c.bench_function("heat/cool cycle: split cascade + consolidation", |b| {
        b.iter_batched(
            || {
                let config = ClashConfig {
                    capacity: 40.0,
                    ..ClashConfig::small_test()
                };
                let mut cluster = ClashCluster::new(config, 16, 3).expect("valid");
                for i in 0..64u64 {
                    let key = Key::from_bits_truncated(0b0100_0000 | (i % 64), config.key_width);
                    cluster.attach_source(i, key, 2.0).expect("attach");
                }
                cluster
            },
            |mut cluster| {
                cluster.run_load_check().expect("check");
                for i in 0..64u64 {
                    cluster.detach_source(i).expect("detach");
                }
                for _ in 0..4 {
                    cluster.run_load_check().expect("check");
                }
                black_box(cluster.depth_stats())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_attach_detach(c: &mut Criterion) {
    let mut cluster = hot_cluster();
    let mut id = 1_000u64;
    c.bench_function("attach+detach source (locate + ledger update)", |b| {
        b.iter(|| {
            id += 1;
            let key = Key::from_bits_truncated(id * 37, cluster.config().key_width);
            cluster.attach_source(id, key, 1.0).expect("attach");
            cluster.detach_source(id).expect("detach");
        })
    });
}

criterion_group!(benches, bench_load_check_cycle, bench_attach_detach);
criterion_main!(benches);
