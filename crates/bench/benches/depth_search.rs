//! The §5 client cost: a full locate (depth search + DHT routing per
//! probe) against a realistically deep tree, fresh vs depth-hinted.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use clash_bench::{heated_cluster, key_stream};

fn bench_locate(c: &mut Criterion) {
    let mut cluster = heated_cluster(200, 4000, 11);
    let keys = key_stream(4096, 77);
    let mut i = 0usize;
    c.bench_function("locate: fresh depth search (deep tree)", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cluster.locate(keys[i]).expect("locate"))
        })
    });
    let mut hint = 6;
    let mut j = 0usize;
    c.bench_function("locate: hinted depth search (deep tree)", |b| {
        b.iter(|| {
            j = (j + 1) % keys.len();
            let placement = cluster.locate_hinted(keys[j], Some(hint)).expect("locate");
            hint = placement.depth;
            black_box(placement)
        })
    });
}

fn bench_oracle(c: &mut Criterion) {
    let cluster = heated_cluster(200, 4000, 11);
    let keys = key_stream(4096, 78);
    let mut i = 0usize;
    c.bench_function("oracle locate (no protocol, baseline)", |b| {
        b.iter(|| {
            i = (i + 1) % keys.len();
            black_box(cluster.oracle_locate(keys[i]))
        })
    });
}

criterion_group!(benches, bench_locate, bench_oracle);
criterion_main!(benches);
