//! Hierarchical identifier keys, key groups and hash mapping for CLASH.
//!
//! CLASH (Misra, Castro & Lee, ICDCS 2004, §3–4) assumes every object has an
//! **N-bit identifier key** produced by an application `KeyGen()` function
//! that encodes hierarchical clustering relationships: keys with a common
//! prefix are semantically related (e.g. a quad-tree encoding of geographic
//! position). This crate provides:
//!
//! * [`key::Key`] — an N-bit identifier key (N ≤ 64);
//! * [`prefix::Prefix`] — a key group `(virtual key, depth)`, printed with
//!   the paper's wildcard notation (`0110*`);
//! * [`cover::PrefixCover`] — a prefix-free set of groups partitioning a
//!   subtree of the key space, with longest-prefix-match, split and merge —
//!   the data structure underlying the CLASH `ServerTable`;
//! * [`keygen`] — `KeyGen` implementations: [`keygen::QuadTreeEncoder`] for
//!   2-D grids (the paper's geographic example) and
//!   [`keygen::PathEncoder`] for hierarchical attribute paths;
//! * [`hash`] — the `f()` function hashing virtual keys into an M-bit hash
//!   space, implemented with a SplitMix64 finalizer.
//!
//! # The Shape() function
//!
//! The heart of CLASH is `Shape(k, d)`: take the first `d` bits of `k` and
//! zero-pad to N bits (§4). In this crate that is
//! [`prefix::Prefix::of_key`] followed by [`prefix::Prefix::virtual_key`]:
//!
//! ```
//! use clash_keyspace::key::Key;
//! use clash_keyspace::prefix::Prefix;
//!
//! // The paper's example: the key group "0110*" (depth 4) of 7-bit keys
//! // contains "0110101" and "0110111"; its virtual key is "0110000".
//! let group = Prefix::parse("0110*", 7)?;
//! assert!(group.contains(Key::parse("0110101", 7)?));
//! assert!(group.contains(Key::parse("0110111", 7)?));
//! assert_eq!(group.virtual_key(), Key::parse("0110000", 7)?);
//! # Ok::<(), clash_keyspace::error::KeyError>(())
//! ```

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// lock that in — determinism reasoning assumes no aliasing backdoors.
#![forbid(unsafe_code)]
pub mod cover;
pub mod error;
pub mod hash;
pub mod key;
pub mod keygen;
pub mod prefix;

pub use cover::{PrefixCover, PrefixMap};
pub use error::KeyError;
pub use hash::{HashSpace, KeyHasher, SplitMixHasher};
pub use key::{Key, KeyWidth};
pub use keygen::{KeyGen, PathEncoder, QuadTreeEncoder};
pub use prefix::Prefix;
