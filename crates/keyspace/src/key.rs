//! N-bit identifier keys.

use std::fmt;

use crate::error::KeyError;

/// A validated key width: the `N` in the paper's N-bit identifier keys
/// (1 ≤ N ≤ 64). The paper's experiments use N = 24.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyWidth(u32);

impl KeyWidth {
    /// The width used throughout the paper's evaluation (§6.1).
    pub const PAPER: KeyWidth = KeyWidth(24);

    /// Creates a width, validating `1 ≤ width ≤ 64`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidWidth`] outside that range.
    pub const fn new(width: u32) -> Result<Self, KeyError> {
        if width == 0 || width > 64 {
            Err(KeyError::InvalidWidth { width })
        } else {
            Ok(KeyWidth(width))
        }
    }

    /// The width in bits.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Number of distinct keys of this width, saturating at `u64::MAX`
    /// for width 64.
    pub const fn key_count(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            1u64 << self.0
        }
    }

    /// Bit mask with the low `width` bits set.
    pub const fn mask(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }
}

impl fmt::Display for KeyWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<u32> for KeyWidth {
    type Error = KeyError;
    fn try_from(width: u32) -> Result<Self, KeyError> {
        KeyWidth::new(width)
    }
}

impl From<KeyWidth> for u32 {
    fn from(w: KeyWidth) -> u32 {
        w.get()
    }
}

/// Shifts `bits` right by `n`, defined for `n == 64` (returns 0).
#[inline]
pub(crate) const fn shr64(bits: u64, n: u32) -> u64 {
    if n >= 64 {
        0
    } else {
        bits >> n
    }
}

/// Shifts `bits` left by `n`, defined for `n == 64` (returns 0).
#[inline]
pub(crate) const fn shl64(bits: u64, n: u32) -> u64 {
    if n >= 64 {
        0
    } else {
        bits << n
    }
}

/// An N-bit identifier key.
///
/// The most significant bit of the key is bit index 0 (matching the paper's
/// reading order: "the first d bits of k"). Internally the pattern is stored
/// right-aligned in a `u64`.
///
/// # Example
///
/// ```
/// use clash_keyspace::key::Key;
///
/// let k = Key::parse("0110101", 7)?;
/// assert_eq!(k.bit(0), 0);
/// assert_eq!(k.bit(1), 1);
/// assert_eq!(k.to_string(), "0110101");
/// assert_eq!(k.bits(), 0b0110101);
/// # Ok::<(), clash_keyspace::error::KeyError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    bits: u64,
    width: KeyWidth,
}

impl Key {
    /// Creates a key from a right-aligned bit pattern and a width.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::BitsOutOfRange`] if `bits` has set bits above
    /// the width.
    pub fn new(bits: u64, width: KeyWidth) -> Result<Self, KeyError> {
        if bits & !width.mask() != 0 {
            return Err(KeyError::BitsOutOfRange {
                bits,
                width: width.get(),
            });
        }
        Ok(Key { bits, width })
    }

    /// Creates a key of the given width, masking away any excess high bits.
    /// Useful when deriving keys from hashes or random draws.
    pub fn from_bits_truncated(bits: u64, width: KeyWidth) -> Self {
        Key {
            bits: bits & width.mask(),
            width,
        }
    }

    /// Parses a binary string such as `"0110101"`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::ParseError`] if the string length differs from
    /// `width` or contains characters other than `0`/`1`, and
    /// [`KeyError::InvalidWidth`] for an invalid width.
    pub fn parse(s: &str, width: u32) -> Result<Self, KeyError> {
        let width = KeyWidth::new(width)?;
        if s.len() != width.get() as usize {
            return Err(KeyError::ParseError {
                input: s.to_owned(),
                reason: "length does not match key width",
            });
        }
        let mut bits = 0u64;
        for c in s.chars() {
            bits = (bits << 1)
                | match c {
                    '0' => 0,
                    '1' => 1,
                    _ => {
                        return Err(KeyError::ParseError {
                            input: s.to_owned(),
                            reason: "keys may contain only '0' and '1'",
                        })
                    }
                };
        }
        Ok(Key { bits, width })
    }

    /// The right-aligned bit pattern.
    pub const fn bits(self) -> u64 {
        self.bits
    }

    /// The key width.
    pub const fn width(self) -> KeyWidth {
        self.width
    }

    /// The `i`-th bit counting from the most significant (0-indexed).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(self, i: u32) -> u8 {
        assert!(i < self.width.get(), "bit index {i} out of range");
        ((self.bits >> (self.width.get() - 1 - i)) & 1) as u8
    }

    /// The first `d` bits of the key, right-aligned (`k_d` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `d > width`.
    pub fn top_bits(self, d: u32) -> u64 {
        assert!(d <= self.width.get(), "depth {d} exceeds width");
        shr64(self.bits, self.width.get() - d)
    }

    /// Length of the common prefix with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::WidthMismatch`] if the widths differ.
    pub fn common_prefix_len(self, other: Key) -> Result<u32, KeyError> {
        if self.width != other.width {
            return Err(KeyError::WidthMismatch {
                left: self.width.get(),
                right: other.width.get(),
            });
        }
        let w = self.width.get();
        let diff = self.bits ^ other.bits;
        if diff == 0 {
            return Ok(w);
        }
        // The highest differing bit, counted from the key's MSB.
        Ok(w - (64 - diff.leading_zeros()))
    }

    /// Returns this key with the bit at index `i` (from the MSB) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn with_bit_flipped(self, i: u32) -> Key {
        assert!(i < self.width.get(), "bit index {i} out of range");
        Key {
            bits: self.bits ^ (1u64 << (self.width.get() - 1 - i)),
            width: self.width,
        }
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.width.get() {
            write!(f, "{}", self.bit(i))?;
        }
        Ok(())
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({self})")
    }
}

impl fmt::Binary for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: u32) -> KeyWidth {
        KeyWidth::new(n).unwrap()
    }

    #[test]
    fn width_validation() {
        assert!(KeyWidth::new(0).is_err());
        assert!(KeyWidth::new(65).is_err());
        assert_eq!(KeyWidth::new(24).unwrap().get(), 24);
        assert_eq!(KeyWidth::PAPER.get(), 24);
    }

    #[test]
    fn width_key_count_and_mask() {
        assert_eq!(w(3).key_count(), 8);
        assert_eq!(w(3).mask(), 0b111);
        assert_eq!(w(64).mask(), u64::MAX);
        assert_eq!(w(64).key_count(), u64::MAX);
    }

    #[test]
    fn key_construction_validates_bits() {
        assert!(Key::new(0b111, w(3)).is_ok());
        assert!(Key::new(0b1000, w(3)).is_err());
        assert_eq!(Key::from_bits_truncated(0b1010, w(3)).bits(), 0b010);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let k = Key::parse("0110101", 7).unwrap();
        assert_eq!(k.to_string(), "0110101");
        assert_eq!(format!("{k:b}"), "0110101");
        assert_eq!(format!("{k:?}"), "Key(0110101)");
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Key::parse("012", 3).is_err());
        assert!(Key::parse("01", 3).is_err());
        assert!(Key::parse("0101", 3).is_err());
    }

    #[test]
    fn bit_indexing_is_msb_first() {
        let k = Key::parse("1000001", 7).unwrap();
        assert_eq!(k.bit(0), 1);
        assert_eq!(k.bit(5), 0);
        assert_eq!(k.bit(6), 1);
    }

    #[test]
    fn top_bits_extracts_prefix() {
        let k = Key::parse("0110101", 7).unwrap();
        assert_eq!(k.top_bits(0), 0);
        assert_eq!(k.top_bits(4), 0b0110);
        assert_eq!(k.top_bits(7), 0b0110101);
    }

    #[test]
    fn top_bits_full_width_64() {
        let k = Key::from_bits_truncated(u64::MAX, w(64));
        assert_eq!(k.top_bits(64), u64::MAX);
        assert_eq!(k.top_bits(0), 0);
    }

    #[test]
    fn common_prefix_len_cases() {
        let a = Key::parse("0110101", 7).unwrap();
        let b = Key::parse("0110111", 7).unwrap();
        assert_eq!(a.common_prefix_len(b).unwrap(), 5);
        assert_eq!(a.common_prefix_len(a).unwrap(), 7);
        let c = Key::parse("1110101", 7).unwrap();
        assert_eq!(a.common_prefix_len(c).unwrap(), 0);
    }

    #[test]
    fn common_prefix_len_rejects_width_mismatch() {
        let a = Key::parse("01", 2).unwrap();
        let b = Key::parse("011", 3).unwrap();
        assert!(matches!(
            a.common_prefix_len(b),
            Err(KeyError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn flip_bit() {
        let k = Key::parse("0000", 4).unwrap();
        assert_eq!(k.with_bit_flipped(1).to_string(), "0100");
        assert_eq!(k.with_bit_flipped(3).to_string(), "0001");
    }

    #[test]
    fn shift_helpers_handle_64() {
        assert_eq!(shr64(u64::MAX, 64), 0);
        assert_eq!(shl64(u64::MAX, 64), 0);
        assert_eq!(shr64(0b100, 2), 1);
        assert_eq!(shl64(1, 2), 0b100);
    }

    #[test]
    fn key_ordering_is_numeric_within_width() {
        let a = Key::parse("001", 3).unwrap();
        let b = Key::parse("010", 3).unwrap();
        assert!(a < b);
    }
}
