//! The hash function `f()` mapping identifier keys into the DHT hash space.
//!
//! The paper (§4): "A hash function f() maps the space K of all possible
//! identifier keys to a hash-space H, such that h = f(k) where h is an M-bit
//! hash key." The property CLASH depends on is *determinism on the N-bit
//! virtual key*: two groups whose virtual keys expand to the same N-bit
//! pattern (a group and its left child) must hash identically, so the left
//! half of a split provably stays on the splitting server.
//!
//! We use the SplitMix64 finalizer — a cheap, well-mixed permutation with
//! full avalanche — truncated to M bits.

use std::fmt;

use crate::error::KeyError;
use crate::key::Key;

/// An M-bit hash space (1 ≤ M ≤ 64). The paper's simulations use M = 24.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HashSpace {
    bits: u32,
}

impl HashSpace {
    /// The hash-space size used in the paper's simulations (§6.1).
    pub const PAPER: HashSpace = HashSpace { bits: 24 };

    /// Creates an M-bit hash space.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidWidth`] unless `1 ≤ bits ≤ 64`.
    pub const fn new(bits: u32) -> Result<Self, KeyError> {
        if bits == 0 || bits > 64 {
            Err(KeyError::InvalidWidth { width: bits })
        } else {
            Ok(HashSpace { bits })
        }
    }

    /// Number of bits (M).
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// Bit mask selecting the low M bits.
    pub const fn mask(self) -> u64 {
        if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        }
    }

    /// Size of the space as a `u128` (exact even for M = 64).
    pub const fn size(self) -> u128 {
        1u128 << self.bits
    }
}

impl fmt::Display for HashSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^{}", self.bits)
    }
}

/// A deterministic hash from identifier keys to M-bit hash values.
pub trait KeyHasher {
    /// The target hash space.
    fn space(&self) -> HashSpace;

    /// Hashes a key (typically a *virtual* key) into the hash space.
    fn hash_key(&self, key: Key) -> u64;

    /// Hashes an arbitrary 64-bit value (used for server identifiers).
    fn hash_u64(&self, value: u64) -> u64;
}

/// SplitMix64-based [`KeyHasher`].
///
/// # Example
///
/// ```
/// use clash_keyspace::hash::{HashSpace, KeyHasher, SplitMixHasher};
/// use clash_keyspace::prefix::Prefix;
///
/// let hasher = SplitMixHasher::new(HashSpace::PAPER, 42);
/// let group = Prefix::parse("0110*", 24.try_into()?)?;
/// let (left, right) = group.split()?;
/// // Left child shares the parent's virtual key → identical hash.
/// assert_eq!(
///     hasher.hash_key(group.virtual_key()),
///     hasher.hash_key(left.virtual_key()),
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMixHasher {
    space: HashSpace,
    seed: u64,
}

impl SplitMixHasher {
    /// Creates a hasher targeting `space`, salted with `seed`.
    pub fn new(space: HashSpace, seed: u64) -> Self {
        SplitMixHasher { space, seed }
    }

    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl KeyHasher for SplitMixHasher {
    fn space(&self) -> HashSpace {
        self.space
    }

    fn hash_key(&self, key: Key) -> u64 {
        // Mix in the width so that equal bit patterns of different widths
        // do not collide systematically.
        let input = key
            .bits()
            .wrapping_add(self.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(u64::from(key.width().get()) << 56);
        Self::mix(input) & self.space.mask()
    }

    fn hash_u64(&self, value: u64) -> u64 {
        Self::mix(value ^ self.seed.rotate_left(32)) & self.space.mask()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyWidth;
    use crate::prefix::Prefix;

    fn hasher() -> SplitMixHasher {
        SplitMixHasher::new(HashSpace::PAPER, 7)
    }

    fn w24() -> KeyWidth {
        KeyWidth::PAPER
    }

    #[test]
    fn hash_space_validation() {
        assert!(HashSpace::new(0).is_err());
        assert!(HashSpace::new(65).is_err());
        assert_eq!(HashSpace::new(24).unwrap().mask(), 0xFF_FFFF);
        assert_eq!(HashSpace::new(64).unwrap().mask(), u64::MAX);
        assert_eq!(HashSpace::new(8).unwrap().size(), 256);
        assert_eq!(HashSpace::new(64).unwrap().size(), 1u128 << 64);
    }

    #[test]
    fn hashes_stay_in_space() {
        let h = hasher();
        for bits in 0..1000u64 {
            let key = Key::from_bits_truncated(bits * 7919, w24());
            assert!(h.hash_key(key) <= h.space().mask());
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let h1 = hasher();
        let h2 = hasher();
        let key = Key::from_bits_truncated(123456, w24());
        assert_eq!(h1.hash_key(key), h2.hash_key(key));
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let a = SplitMixHasher::new(HashSpace::PAPER, 1);
        let b = SplitMixHasher::new(HashSpace::PAPER, 2);
        let key = Key::from_bits_truncated(123456, w24());
        assert_ne!(a.hash_key(key), b.hash_key(key));
    }

    #[test]
    fn left_child_virtual_key_hash_invariant() {
        // The CLASH split guarantee (§5): the left child group maps back to
        // the same server because its virtual key is bit-identical.
        let h = hasher();
        let mut group = Prefix::parse("0110*", 24).unwrap();
        for _ in 0..10 {
            let (left, _right) = group.split().unwrap();
            assert_eq!(
                h.hash_key(group.virtual_key()),
                h.hash_key(left.virtual_key())
            );
            group = left;
        }
    }

    #[test]
    fn right_child_usually_hashes_elsewhere() {
        let h = hasher();
        let mut moved = 0;
        let mut total = 0;
        for bits in 0..200u64 {
            let group = Prefix::new(bits, 8, w24()).unwrap();
            let (_, right) = group.split().unwrap();
            total += 1;
            if h.hash_key(group.virtual_key()) != h.hash_key(right.virtual_key()) {
                moved += 1;
            }
        }
        // With a 24-bit space collisions are ~2^-24; all should move.
        assert_eq!(moved, total);
    }

    #[test]
    fn hash_distribution_is_roughly_uniform() {
        let h = SplitMixHasher::new(HashSpace::new(8).unwrap(), 3);
        let mut counts = [0u32; 256];
        let n = 256_000u64;
        for i in 0..n {
            let key = Key::from_bits_truncated(i, w24());
            counts[h.hash_key(key) as usize] += 1;
        }
        let expected = n as f64 / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        // 255 degrees of freedom; mean 255, stddev ~22.6. Allow 5 sigma.
        assert!(chi2 < 255.0 + 5.0 * 22.6, "chi2={chi2}");
    }

    #[test]
    fn width_influences_hash() {
        let h = hasher();
        let a = Key::from_bits_truncated(0b1010, KeyWidth::new(8).unwrap());
        let b = Key::from_bits_truncated(0b1010, KeyWidth::new(16).unwrap());
        assert_ne!(h.hash_key(a), h.hash_key(b));
    }
}
