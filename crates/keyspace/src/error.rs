//! Error types for key-space operations.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or parsing keys and prefixes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyError {
    /// The requested key width is zero or exceeds 64 bits.
    InvalidWidth {
        /// The offending width.
        width: u32,
    },
    /// Key bits do not fit in the declared width.
    BitsOutOfRange {
        /// The offending bit pattern.
        bits: u64,
        /// The declared width.
        width: u32,
    },
    /// A depth exceeds the key width.
    DepthOutOfRange {
        /// The offending depth.
        depth: u32,
        /// The key width it was checked against.
        width: u32,
    },
    /// A textual key/prefix contained a character other than `0`, `1`
    /// or a trailing `*`.
    ParseError {
        /// The input that failed to parse.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// Two keys or prefixes with different widths were combined.
    WidthMismatch {
        /// Width of the left operand.
        left: u32,
        /// Width of the right operand.
        right: u32,
    },
    /// A coordinate was outside the encoder's grid.
    CoordinateOutOfRange {
        /// The offending coordinate value.
        value: u64,
        /// The exclusive bound.
        bound: u64,
    },
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::InvalidWidth { width } => {
                write!(f, "key width must be between 1 and 64, got {width}")
            }
            KeyError::BitsOutOfRange { bits, width } => {
                write!(f, "bit pattern {bits:#x} does not fit in {width} bits")
            }
            KeyError::DepthOutOfRange { depth, width } => {
                write!(f, "depth {depth} exceeds key width {width}")
            }
            KeyError::ParseError { input, reason } => {
                write!(f, "cannot parse {input:?}: {reason}")
            }
            KeyError::WidthMismatch { left, right } => {
                write!(f, "key width mismatch: {left} vs {right}")
            }
            KeyError::CoordinateOutOfRange { value, bound } => {
                write!(f, "coordinate {value} outside grid bound {bound}")
            }
        }
    }
}

impl Error for KeyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(KeyError, &str)> = vec![
            (KeyError::InvalidWidth { width: 65 }, "65"),
            (
                KeyError::BitsOutOfRange {
                    bits: 0xff,
                    width: 4,
                },
                "0xff",
            ),
            (
                KeyError::DepthOutOfRange {
                    depth: 25,
                    width: 24,
                },
                "25",
            ),
            (
                KeyError::ParseError {
                    input: "01x".into(),
                    reason: "bad digit",
                },
                "01x",
            ),
            (KeyError::WidthMismatch { left: 8, right: 24 }, "8"),
            (KeyError::CoordinateOutOfRange { value: 9, bound: 8 }, "9"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{msg:?} should start lowercase"
            );
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<KeyError>();
    }
}
