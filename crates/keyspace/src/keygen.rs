//! `KeyGen()` implementations: encoding application semantics into
//! hierarchical identifier keys (§3 of the paper).
//!
//! "In CLASH, identifier keys encode hierarchical clustering relationships
//! about objects." The paper's running example is a quad-tree encoding of a
//! geographic area: each recursive 4-way split of a rectangle contributes a
//! 2-bit label. [`QuadTreeEncoder`] implements exactly that; keys of nearby
//! grid cells share long prefixes, which is what lets CLASH cluster
//! "similar" objects on one server.
//!
//! [`PathEncoder`] covers the other motivating applications (corporate
//! messaging topics, game shards): fixed-fanout category paths.

use crate::error::KeyError;
use crate::key::{Key, KeyWidth};
use crate::prefix::Prefix;

/// A function producing identifier keys from application inputs — the
/// paper's `KeyGen()`.
pub trait KeyGen {
    /// The application-level input this encoder understands.
    type Input;

    /// Width of the produced keys.
    fn key_width(&self) -> KeyWidth;

    /// Encodes an input into an identifier key.
    ///
    /// # Errors
    ///
    /// Implementations return [`KeyError`] when the input lies outside the
    /// encoder's domain (e.g. a coordinate outside the grid).
    fn encode(&self, input: &Self::Input) -> Result<Key, KeyError>;
}

/// A point on a square 2-D grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridPoint {
    /// Column index, `0 ≤ x < 2^levels`.
    pub x: u64,
    /// Row index, `0 ≤ y < 2^levels`.
    pub y: u64,
}

impl GridPoint {
    /// Creates a grid point.
    pub fn new(x: u64, y: u64) -> Self {
        GridPoint { x, y }
    }
}

/// Quad-tree encoder over a `2^levels × 2^levels` grid, producing
/// `2·levels`-bit keys (§3: "a geographic area can be encoded in a
/// hierarchical N-bit identifier key adopting a quad-tree formulation").
///
/// Each level contributes 2 bits: the y bit (north/south half) followed by
/// the x bit (west/east half). Spatially adjacent cells therefore share
/// long key prefixes at coarse levels.
///
/// # Example
///
/// ```
/// use clash_keyspace::keygen::{GridPoint, KeyGen, QuadTreeEncoder};
///
/// let enc = QuadTreeEncoder::new(12)?; // 4096×4096 grid, 24-bit keys
/// assert_eq!(enc.key_width().get(), 24);
/// let k = enc.encode(&GridPoint::new(17, 1029))?;
/// assert_eq!(enc.decode(k), GridPoint::new(17, 1029));
/// # Ok::<(), clash_keyspace::error::KeyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuadTreeEncoder {
    levels: u32,
    width: KeyWidth,
}

impl QuadTreeEncoder {
    /// Creates an encoder with the given number of quad-tree levels
    /// (1 ≤ levels ≤ 32; the key width is `2·levels`).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidWidth`] outside that range.
    pub fn new(levels: u32) -> Result<Self, KeyError> {
        let width = KeyWidth::new(levels.saturating_mul(2))?;
        Ok(QuadTreeEncoder { levels, width })
    }

    /// Number of quad-tree levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Grid side length (`2^levels`).
    pub fn grid_size(&self) -> u64 {
        1u64 << self.levels
    }

    /// Decodes a key back to its grid cell.
    ///
    /// # Panics
    ///
    /// Panics if the key width differs from the encoder width.
    pub fn decode(&self, key: Key) -> GridPoint {
        assert_eq!(key.width(), self.width, "key width mismatch");
        let mut x = 0u64;
        let mut y = 0u64;
        for level in 0..self.levels {
            let y_bit = u64::from(key.bit(2 * level));
            let x_bit = u64::from(key.bit(2 * level + 1));
            y = (y << 1) | y_bit;
            x = (x << 1) | x_bit;
        }
        GridPoint { x, y }
    }

    /// Encodes normalized coordinates in `[0, 1)` (e.g. scaled longitude/
    /// latitude) by snapping to the enclosing grid cell.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::CoordinateOutOfRange`] if either coordinate is
    /// outside `[0, 1)`.
    pub fn encode_norm(&self, fx: f64, fy: f64) -> Result<Key, KeyError> {
        let size = self.grid_size();
        let to_cell = |f: f64| -> Result<u64, KeyError> {
            if !(0.0..1.0).contains(&f) {
                return Err(KeyError::CoordinateOutOfRange {
                    value: f as u64,
                    bound: 1,
                });
            }
            Ok(((f * size as f64) as u64).min(size - 1))
        };
        self.encode(&GridPoint::new(to_cell(fx)?, to_cell(fy)?))
    }

    /// The rectangular region covered by a key-group prefix, as
    /// `(x0, y0, width, height)` in grid cells. Odd-depth prefixes cover a
    /// half-cell split in y first (the paper's 2-bit labels split y then x).
    pub fn region_of(&self, prefix: Prefix) -> (u64, u64, u64, u64) {
        assert_eq!(prefix.width(), self.width, "prefix width mismatch");
        // The virtual key has zeros in all unspecified bits, so decoding it
        // lands on the region origin. A depth-d prefix fixes d/2 complete
        // levels of both coordinates, plus one extra y bit when d is odd
        // (each 2-bit label is y-bit-then-x-bit).
        let origin = self.decode(prefix.min_key());
        let full_levels = prefix.depth() / 2;
        let extra_y_bit = prefix.depth() % 2;
        let w = 1u64 << (self.levels - full_levels);
        let h = 1u64 << (self.levels - full_levels - extra_y_bit);
        (origin.x, origin.y, w, h)
    }
}

impl KeyGen for QuadTreeEncoder {
    type Input = GridPoint;

    fn key_width(&self) -> KeyWidth {
        self.width
    }

    fn encode(&self, input: &GridPoint) -> Result<Key, KeyError> {
        let size = self.grid_size();
        if input.x >= size {
            return Err(KeyError::CoordinateOutOfRange {
                value: input.x,
                bound: size,
            });
        }
        if input.y >= size {
            return Err(KeyError::CoordinateOutOfRange {
                value: input.y,
                bound: size,
            });
        }
        let mut bits = 0u64;
        for level in (0..self.levels).rev() {
            let y_bit = (input.y >> level) & 1;
            let x_bit = (input.x >> level) & 1;
            bits = (bits << 2) | (y_bit << 1) | x_bit;
        }
        Key::new(bits, self.width)
    }
}

/// Encoder for fixed-fanout hierarchical category paths (topic trees,
/// organizational hierarchies, game-world shards).
///
/// Each path component consumes `bits_per_level` bits; shorter paths are
/// padded with zeros, so a parent category's key is a prefix-extension of
/// its own truncated path — sibling leaves share the parent prefix.
///
/// # Example
///
/// ```
/// use clash_keyspace::keygen::{KeyGen, PathEncoder};
///
/// // 4 levels × 3 bits: up to 8 children per node, 12-bit keys.
/// let enc = PathEncoder::new(4, 3)?;
/// let k = enc.encode(&vec![2, 5, 1, 7])?;
/// assert_eq!(k.to_string(), "010101001111");
/// # Ok::<(), clash_keyspace::error::KeyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathEncoder {
    levels: u32,
    bits_per_level: u32,
    width: KeyWidth,
}

impl PathEncoder {
    /// Creates an encoder with `levels` path components of
    /// `bits_per_level` bits each.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::InvalidWidth`] if the total width is 0 or
    /// exceeds 64 bits.
    pub fn new(levels: u32, bits_per_level: u32) -> Result<Self, KeyError> {
        let width = KeyWidth::new(levels.saturating_mul(bits_per_level))?;
        Ok(PathEncoder {
            levels,
            bits_per_level,
            width,
        })
    }

    /// Maximum fan-out per node (`2^bits_per_level`).
    pub fn fanout(&self) -> u64 {
        1u64 << self.bits_per_level
    }

    /// Number of levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }
}

impl KeyGen for PathEncoder {
    type Input = Vec<u64>;

    fn key_width(&self) -> KeyWidth {
        self.width
    }

    fn encode(&self, path: &Vec<u64>) -> Result<Key, KeyError> {
        if path.len() > self.levels as usize {
            return Err(KeyError::CoordinateOutOfRange {
                value: path.len() as u64,
                bound: u64::from(self.levels),
            });
        }
        let mut bits = 0u64;
        for level in 0..self.levels as usize {
            let component = path.get(level).copied().unwrap_or(0);
            if component >= self.fanout() {
                return Err(KeyError::CoordinateOutOfRange {
                    value: component,
                    bound: self.fanout(),
                });
            }
            bits = (bits << self.bits_per_level) | component;
        }
        Key::new(bits, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadtree_roundtrip_exhaustive_small() {
        let enc = QuadTreeEncoder::new(3).unwrap(); // 8×8 grid
        for x in 0..8 {
            for y in 0..8 {
                let p = GridPoint::new(x, y);
                let k = enc.encode(&p).unwrap();
                assert_eq!(enc.decode(k), p, "roundtrip failed at ({x},{y})");
            }
        }
    }

    #[test]
    fn quadtree_rejects_out_of_range() {
        let enc = QuadTreeEncoder::new(3).unwrap();
        assert!(enc.encode(&GridPoint::new(8, 0)).is_err());
        assert!(enc.encode(&GridPoint::new(0, 8)).is_err());
    }

    #[test]
    fn quadtree_first_two_bits_are_quadrant() {
        let enc = QuadTreeEncoder::new(4).unwrap(); // 16×16
                                                    // North-west quadrant (low x, low y) → prefix 00.
        let k = enc.encode(&GridPoint::new(3, 2)).unwrap();
        assert_eq!(k.bit(0), 0);
        assert_eq!(k.bit(1), 0);
        // South-east quadrant (high x, high y) → prefix 11.
        let k = enc.encode(&GridPoint::new(12, 13)).unwrap();
        assert_eq!(k.bit(0), 1);
        assert_eq!(k.bit(1), 1);
    }

    #[test]
    fn quadtree_nearby_cells_share_prefixes() {
        let enc = QuadTreeEncoder::new(8).unwrap();
        let a = enc.encode(&GridPoint::new(100, 100)).unwrap();
        let b = enc.encode(&GridPoint::new(101, 101)).unwrap();
        let far = enc.encode(&GridPoint::new(200, 30)).unwrap();
        let near_cpl = a.common_prefix_len(b).unwrap();
        let far_cpl = a.common_prefix_len(far).unwrap();
        assert!(
            near_cpl > far_cpl,
            "near cpl {near_cpl} should exceed far cpl {far_cpl}"
        );
    }

    #[test]
    fn quadtree_paper_scale() {
        // 24-bit keys as in §6.1 = 12 levels.
        let enc = QuadTreeEncoder::new(12).unwrap();
        assert_eq!(enc.key_width(), KeyWidth::PAPER);
        assert_eq!(enc.grid_size(), 4096);
    }

    #[test]
    fn quadtree_norm_encoding() {
        let enc = QuadTreeEncoder::new(4).unwrap();
        let k = enc.encode_norm(0.0, 0.0).unwrap();
        assert_eq!(enc.decode(k), GridPoint::new(0, 0));
        let k = enc.encode_norm(0.999, 0.999).unwrap();
        assert_eq!(enc.decode(k), GridPoint::new(15, 15));
        assert!(enc.encode_norm(1.0, 0.5).is_err());
        assert!(enc.encode_norm(-0.1, 0.5).is_err());
    }

    #[test]
    fn quadtree_region_of_whole_space() {
        let enc = QuadTreeEncoder::new(3).unwrap();
        let root = Prefix::root(enc.key_width());
        assert_eq!(enc.region_of(root), (0, 0, 8, 8));
    }

    #[test]
    fn quadtree_region_of_quadrant() {
        let enc = QuadTreeEncoder::new(3).unwrap();
        // Prefix "11*" = south-east quadrant.
        let se = Prefix::parse("11*", 6).unwrap();
        assert_eq!(enc.region_of(se), (4, 4, 4, 4));
        // Odd depth: "1*" = southern half (y split first).
        let south = Prefix::parse("1*", 6).unwrap();
        assert_eq!(enc.region_of(south), (0, 4, 8, 4));
    }

    #[test]
    fn quadtree_invalid_levels() {
        assert!(QuadTreeEncoder::new(0).is_err());
        assert!(QuadTreeEncoder::new(33).is_err());
        assert!(QuadTreeEncoder::new(32).is_ok());
    }

    #[test]
    fn path_encoder_basic() {
        let enc = PathEncoder::new(4, 3).unwrap();
        assert_eq!(enc.key_width().get(), 12);
        assert_eq!(enc.fanout(), 8);
        let k = enc.encode(&vec![2, 5, 1, 7]).unwrap();
        assert_eq!(k.to_string(), "010101001111");
    }

    #[test]
    fn path_encoder_pads_short_paths() {
        let enc = PathEncoder::new(3, 2).unwrap();
        let parent = enc.encode(&vec![1, 2]).unwrap();
        let child = enc.encode(&vec![1, 2, 3]).unwrap();
        // Parent key is the child's prefix with zero padding.
        assert_eq!(parent.common_prefix_len(child).unwrap(), 4);
    }

    #[test]
    fn path_encoder_rejects_bad_input() {
        let enc = PathEncoder::new(3, 2).unwrap();
        assert!(enc.encode(&vec![4]).is_err(), "component beyond fanout");
        assert!(enc.encode(&vec![0, 0, 0, 0]).is_err(), "path too long");
    }

    #[test]
    fn siblings_share_parent_prefix() {
        let enc = PathEncoder::new(3, 2).unwrap();
        let a = enc.encode(&vec![1, 2, 0]).unwrap();
        let b = enc.encode(&vec![1, 2, 3]).unwrap();
        let other = enc.encode(&vec![3, 0, 0]).unwrap();
        assert!(a.common_prefix_len(b).unwrap() >= 4);
        assert_eq!(a.common_prefix_len(other).unwrap(), 0);
    }
}
