//! Prefix-keyed tries: the data structures behind the CLASH `ServerTable`.
//!
//! * [`PrefixMap`] — a binary trie mapping [`Prefix`]es to values. Entries
//!   may be nested (an entry at `011*` can coexist with one at `0110*`),
//!   which is exactly what a `ServerTable` needs: inactive ancestor entries
//!   live alongside active leaves. Supports longest-prefix-match and the
//!   paper's `d_min` ("longest possible prefix match between a key and the
//!   current server entries", §5).
//! * [`PrefixCover`] — a *prefix-free* set of groups with split/merge
//!   operations, used as the global oracle in tests and for client-side
//!   caching: the set of all active key groups in a CLASH system always
//!   forms a prefix-free cover.

use std::fmt;

use crate::error::KeyError;
use crate::key::{Key, KeyWidth};
use crate::prefix::Prefix;

#[derive(Debug, Clone)]
struct Node<V> {
    value: Option<V>,
    children: [Option<Box<Node<V>>>; 2],
}

impl<V> Node<V> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }

    fn is_leaf_shell(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

/// A binary trie keyed by [`Prefix`], allowing nested entries.
///
/// # Example
///
/// ```
/// use clash_keyspace::cover::PrefixMap;
/// use clash_keyspace::key::Key;
/// use clash_keyspace::prefix::Prefix;
///
/// let mut table: PrefixMap<&str> = PrefixMap::new(7.try_into()?);
/// table.insert(Prefix::parse("011*", 7)?, "inactive root");
/// table.insert(Prefix::parse("0110*", 7)?, "active leaf");
///
/// let key = Key::parse("0110101", 7)?;
/// let (prefix, value) = table.longest_prefix_match(key).unwrap();
/// assert_eq!(prefix.to_string(), "0110*");
/// assert_eq!(*value, "active leaf");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct PrefixMap<V> {
    root: Node<V>,
    width: KeyWidth,
    len: usize,
}

impl<V> PrefixMap<V> {
    /// Creates an empty map over keys of the given width.
    pub fn new(width: KeyWidth) -> Self {
        PrefixMap {
            root: Node::new(),
            width,
            len: 0,
        }
    }

    /// The key width this map covers.
    pub fn width(&self) -> KeyWidth {
        self.width
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node_for(&self, prefix: Prefix) -> Option<&Node<V>> {
        let mut node = &self.root;
        for i in 0..prefix.depth() {
            let bit = ((prefix.pattern() >> (prefix.depth() - 1 - i)) & 1) as usize;
            node = node.children[bit].as_deref()?;
        }
        Some(node)
    }

    /// Inserts `value` at `prefix`, returning the previous value if any.
    ///
    /// # Panics
    ///
    /// Panics if the prefix width differs from the map width.
    pub fn insert(&mut self, prefix: Prefix, value: V) -> Option<V> {
        assert_eq!(prefix.width(), self.width, "prefix width mismatch");
        let mut node = &mut self.root;
        for i in 0..prefix.depth() {
            let bit = ((prefix.pattern() >> (prefix.depth() - 1 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns the value stored exactly at `prefix`.
    pub fn get(&self, prefix: Prefix) -> Option<&V> {
        assert_eq!(prefix.width(), self.width, "prefix width mismatch");
        self.node_for(prefix)?.value.as_ref()
    }

    /// Mutable access to the value stored exactly at `prefix`.
    pub fn get_mut(&mut self, prefix: Prefix) -> Option<&mut V> {
        assert_eq!(prefix.width(), self.width, "prefix width mismatch");
        let mut node = &mut self.root;
        for i in 0..prefix.depth() {
            let bit = ((prefix.pattern() >> (prefix.depth() - 1 - i)) & 1) as usize;
            node = node.children[bit].as_deref_mut()?;
        }
        node.value.as_mut()
    }

    /// True if an entry exists exactly at `prefix`.
    pub fn contains(&self, prefix: Prefix) -> bool {
        self.get(prefix).is_some()
    }

    /// Removes and returns the value at `prefix`, pruning empty trie nodes.
    pub fn remove(&mut self, prefix: Prefix) -> Option<V> {
        assert_eq!(prefix.width(), self.width, "prefix width mismatch");
        fn rec<V>(node: &mut Node<V>, prefix: Prefix, i: u32) -> Option<V> {
            if i == prefix.depth() {
                return node.value.take();
            }
            let bit = ((prefix.pattern() >> (prefix.depth() - 1 - i)) & 1) as usize;
            let child = node.children[bit].as_deref_mut()?;
            let out = rec(child, prefix, i + 1);
            if out.is_some() && child.is_leaf_shell() {
                node.children[bit] = None;
            }
            out
        }
        let out = rec(&mut self.root, prefix, 0);
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// Finds the deepest entry whose prefix contains `key`.
    ///
    /// # Panics
    ///
    /// Panics if the key width differs from the map width.
    pub fn longest_prefix_match(&self, key: Key) -> Option<(Prefix, &V)> {
        assert_eq!(key.width(), self.width, "key width mismatch");
        let mut node = &self.root;
        let mut best: Option<(u32, &V)> = node.value.as_ref().map(|v| (0, v));
        for i in 0..self.width.get() {
            let bit = key.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = node.value.as_ref() {
                        best = Some((i + 1, v));
                    }
                }
                None => break,
            }
        }
        best.map(|(depth, v)| (Prefix::of_key(key, depth), v))
    }

    /// The paper's `d_min`: the longest common prefix length between `key`
    /// and *any* stored entry (0 if the map is empty).
    ///
    /// Note this is not the same as the depth of the longest-prefix match:
    /// the entry achieving `d_min` need not contain the key (e.g. entry
    /// `01011*` and key `0101010` share 4 bits).
    pub fn max_common_prefix_len(&self, key: Key) -> u32 {
        assert_eq!(key.width(), self.width, "key width mismatch");
        // Because removal prunes empty nodes, every existing trie node has
        // at least one entry in its subtree; the deepest node reachable
        // along the key's bit path therefore witnesses the longest common
        // prefix with some entry.
        let mut node = &self.root;
        let mut depth = 0;
        for i in 0..self.width.get() {
            let bit = key.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    depth = i + 1;
                }
                None => break,
            }
        }
        depth
    }

    /// Iterates over `(prefix, value)` pairs in binary-string order
    /// (parents before children).
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: vec![(&self.root, Prefix::root(self.width))],
        }
    }

    /// All entries whose prefix *intersects* `range`: the ancestors
    /// containing it plus the whole subtree below it, in binary-string
    /// order. In a prefix-free cover this is exactly the set of groups a
    /// range query over `range` must visit (the paper's §7 range-query
    /// extension).
    pub fn intersecting(&self, range: Prefix) -> Vec<(Prefix, &V)> {
        assert_eq!(range.width(), self.width, "range width mismatch");
        let mut out = Vec::new();
        let mut node = &self.root;
        // Walk down the range's own bit path, collecting ancestors.
        if let Some(v) = node.value.as_ref() {
            out.push((Prefix::root(self.width), v));
        }
        for i in 0..range.depth() {
            let bit = ((range.pattern() >> (range.depth() - 1 - i)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    if let Some(v) = child.value.as_ref() {
                        let p = Prefix::new(
                            range.pattern() >> (range.depth() - 1 - i),
                            i + 1,
                            self.width,
                        )
                        .expect("trie path is a valid prefix");
                        out.push((p, v));
                    }
                }
                None => return out,
            }
        }
        // Collect the entire subtree at the range node (excluding the
        // range entry itself, already collected above).
        let mut stack: Vec<(&Node<V>, Prefix)> = Vec::new();
        for bit in [1u8, 0u8] {
            if let Some(child) = node.children[bit as usize].as_deref() {
                stack.push((child, range.child(bit).expect("below range depth")));
            }
        }
        while let Some((n, p)) = stack.pop() {
            for bit in [1u8, 0u8] {
                if let Some(child) = n.children[bit as usize].as_deref() {
                    stack.push((child, p.child(bit).expect("trie depth bounded")));
                }
            }
            if let Some(v) = n.value.as_ref() {
                out.push((p, v));
            }
        }
        out
    }

    /// Iterates over the stored prefixes in binary-string order.
    pub fn prefixes(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.iter().map(|(p, _)| p)
    }

    /// True if no entry's prefix strictly contains another entry's prefix.
    pub fn is_prefix_free(&self) -> bool {
        fn rec<V>(node: &Node<V>, seen_value_above: bool) -> bool {
            if seen_value_above && node.value.is_some() {
                return false;
            }
            let seen = seen_value_above || node.value.is_some();
            node.children.iter().flatten().all(|child| rec(child, seen))
        }
        rec(&self.root, false)
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.root = Node::new();
        self.len = 0;
    }
}

/// Iterator over `(Prefix, &V)` pairs of a [`PrefixMap`] in binary-string
/// order.
pub struct Iter<'a, V> {
    stack: Vec<(&'a Node<V>, Prefix)>,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (Prefix, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, prefix)) = self.stack.pop() {
            // Push right first so left pops first (binary-string order).
            for bit in [1u8, 0u8] {
                if let Some(child) = node.children[bit as usize].as_deref() {
                    let child_prefix = prefix.child(bit).expect("trie depth bounded by width");
                    self.stack.push((child, child_prefix));
                }
            }
            if let Some(v) = node.value.as_ref() {
                return Some((prefix, v));
            }
        }
        None
    }
}

impl<V: fmt::Debug> fmt::Debug for PrefixMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V> Extend<(Prefix, V)> for PrefixMap<V> {
    fn extend<T: IntoIterator<Item = (Prefix, V)>>(&mut self, iter: T) {
        for (p, v) in iter {
            self.insert(p, v);
        }
    }
}

/// A prefix-free set of key groups with split/merge operations.
///
/// Invariant: no member is a prefix of another. Starting from a set that
/// partitions the key space (e.g. [`PrefixCover::uniform`]), splits and
/// merges preserve the partition — the global shape of a CLASH system's
/// active groups.
///
/// # Example
///
/// ```
/// use clash_keyspace::cover::PrefixCover;
/// use clash_keyspace::key::Key;
///
/// let mut cover = PrefixCover::uniform(7.try_into()?, 2)?; // 00*,01*,10*,11*
/// assert_eq!(cover.len(), 4);
/// let g = cover.group_of(Key::parse("0110101", 7)?).unwrap();
/// assert_eq!(g.to_string(), "01*");
/// cover.split(g)?;
/// assert_eq!(cover.len(), 5);
/// assert!(cover.is_partition());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrefixCover {
    map: PrefixMap<()>,
}

impl PrefixCover {
    /// Creates an empty cover (no groups).
    pub fn new(width: KeyWidth) -> Self {
        PrefixCover {
            map: PrefixMap::new(width),
        }
    }

    /// Creates the uniform cover of all `2^depth` groups at `depth` — the
    /// initial state of a CLASH system (the paper starts at depth 6).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::DepthOutOfRange`] if `depth > width` and
    /// [`KeyError::InvalidWidth`] if `depth > 32` (the uniform cover would
    /// not fit in memory).
    pub fn uniform(width: KeyWidth, depth: u32) -> Result<Self, KeyError> {
        if depth > width.get() {
            return Err(KeyError::DepthOutOfRange {
                depth,
                width: width.get(),
            });
        }
        if depth > 32 {
            return Err(KeyError::InvalidWidth { width: depth });
        }
        let mut cover = PrefixCover::new(width);
        for pattern in 0..(1u64 << depth) {
            let p = Prefix::new(pattern, depth, width).expect("pattern bounded by depth");
            cover.map.insert(p, ());
        }
        Ok(cover)
    }

    /// The key width.
    pub fn width(&self) -> KeyWidth {
        self.map.width()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cover has no groups.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if `group` is a member.
    pub fn contains(&self, group: Prefix) -> bool {
        self.map.contains(group)
    }

    /// The unique group containing `key`, if any.
    pub fn group_of(&self, key: Key) -> Option<Prefix> {
        self.map.longest_prefix_match(key).map(|(p, _)| p)
    }

    /// Inserts a group.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::DepthOutOfRange`] if the group overlaps an
    /// existing member (would break prefix-freeness).
    pub fn insert(&mut self, group: Prefix) -> Result<(), KeyError> {
        let overlaps = self
            .map
            .longest_prefix_match(group.min_key())
            .map(|(p, _)| p.is_prefix_of(group) || group.is_prefix_of(p))
            .unwrap_or(false)
            || self.any_descendant(group);
        if overlaps {
            return Err(KeyError::DepthOutOfRange {
                depth: group.depth(),
                width: group.width().get(),
            });
        }
        self.map.insert(group, ());
        Ok(())
    }

    fn any_descendant(&self, group: Prefix) -> bool {
        self.map
            .iter()
            .any(|(p, _)| group.is_prefix_of(p) && p != group)
    }

    /// Replaces `group` with its two children; returns them.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::DepthOutOfRange`] if `group` is not a member or
    /// is at full depth.
    pub fn split(&mut self, group: Prefix) -> Result<(Prefix, Prefix), KeyError> {
        if !self.map.contains(group) {
            return Err(KeyError::DepthOutOfRange {
                depth: group.depth(),
                width: group.width().get(),
            });
        }
        let (l, r) = group.split()?;
        self.map.remove(group);
        self.map.insert(l, ());
        self.map.insert(r, ());
        Ok((l, r))
    }

    /// Replaces the two children of `parent` with `parent`; the inverse of
    /// [`PrefixCover::split`].
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::DepthOutOfRange`] unless *both* children are
    /// current members.
    pub fn merge(&mut self, parent: Prefix) -> Result<(), KeyError> {
        let (l, r) = parent.split()?;
        if !self.map.contains(l) || !self.map.contains(r) {
            return Err(KeyError::DepthOutOfRange {
                depth: parent.depth(),
                width: parent.width().get(),
            });
        }
        self.map.remove(l);
        self.map.remove(r);
        self.map.insert(parent, ());
        Ok(())
    }

    /// Iterates over the groups in binary-string order.
    pub fn iter(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.map.prefixes()
    }

    /// True if the groups are prefix-free *and* jointly cover the entire
    /// key space — i.e. they form a partition.
    pub fn is_partition(&self) -> bool {
        if !self.map.is_prefix_free() {
            return false;
        }
        // Sum of 2^(N-d) over groups must equal 2^N. Work in units of the
        // deepest group to stay in integer arithmetic.
        let width = self.map.width().get();
        let mut total: u128 = 0;
        for p in self.map.prefixes() {
            total += 1u128 << (width - p.depth());
        }
        total == 1u128 << width
    }

    /// Depth statistics over the groups: `(min, mean, max)`. `None` if
    /// empty. This feeds the Figure 4 "depth variation" panel.
    pub fn depth_stats(&self) -> Option<(u32, f64, u32)> {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut n = 0u64;
        for p in self.map.prefixes() {
            min = min.min(p.depth());
            max = max.max(p.depth());
            sum += u64::from(p.depth());
            n += 1;
        }
        (n > 0).then(|| (min, sum as f64 / n as f64, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(n: u32) -> KeyWidth {
        KeyWidth::new(n).unwrap()
    }

    fn p(s: &str) -> Prefix {
        Prefix::parse(s, 7).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::parse(s, 7).unwrap()
    }

    #[test]
    fn insert_get_remove() {
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        assert_eq!(m.insert(p("011*"), 1), None);
        assert_eq!(m.insert(p("011*"), 2), Some(1));
        assert_eq!(m.get(p("011*")), Some(&2));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(p("011*")), Some(2));
        assert!(m.is_empty());
        assert_eq!(m.remove(p("011*")), None);
    }

    #[test]
    fn nested_entries_coexist() {
        let mut m: PrefixMap<&str> = PrefixMap::new(w(7));
        m.insert(p("011*"), "ancestor");
        m.insert(p("0110*"), "leaf");
        assert_eq!(m.len(), 2);
        assert!(!m.is_prefix_free());
        m.remove(p("011*"));
        assert!(m.is_prefix_free());
    }

    #[test]
    fn longest_prefix_match_picks_deepest() {
        let mut m: PrefixMap<&str> = PrefixMap::new(w(7));
        m.insert(p("011*"), "shallow");
        m.insert(p("0110*"), "deep");
        let (g, v) = m.longest_prefix_match(k("0110101")).unwrap();
        assert_eq!(g, p("0110*"));
        assert_eq!(*v, "deep");
        // A key only covered by the shallow entry.
        let (g, v) = m.longest_prefix_match(k("0111000")).unwrap();
        assert_eq!(g, p("011*"));
        assert_eq!(*v, "shallow");
        assert!(m.longest_prefix_match(k("1111111")).is_none());
    }

    #[test]
    fn lpm_includes_root_entry() {
        let mut m: PrefixMap<&str> = PrefixMap::new(w(7));
        m.insert(Prefix::root(w(7)), "root");
        let (g, v) = m.longest_prefix_match(k("1010101")).unwrap();
        assert_eq!(g.depth(), 0);
        assert_eq!(*v, "root");
    }

    #[test]
    fn dmin_matches_paper_figure2_example() {
        // Figure 2's server table for s25: entries 011*, 01011*, 010110*,
        // 0110*, 01100*. Client sends "0101010": longest match is 4.
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        for (i, s) in ["011*", "01011*", "010110*", "0110*", "01100*"]
            .iter()
            .enumerate()
        {
            m.insert(p(s), i as u32);
        }
        assert_eq!(m.max_common_prefix_len(k("0101010")), 4);
        // A key inside an entry: match equals that entry's depth (6).
        assert_eq!(m.max_common_prefix_len(k("0101100")), 6);
        // Entirely outside: shares just the leading 0 with the 01... entries.
        assert_eq!(m.max_common_prefix_len(k("1000000")), 0);
    }

    #[test]
    fn dmin_on_empty_map_is_zero() {
        let m: PrefixMap<u32> = PrefixMap::new(w(7));
        assert_eq!(m.max_common_prefix_len(k("0101010")), 0);
    }

    #[test]
    fn dmin_exceeds_lpm_depth_when_entry_diverges_late() {
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        m.insert(p("01011*"), 0);
        // Key 0101010 is NOT contained in 01011*, so lpm is None, but dmin=4.
        assert!(m.longest_prefix_match(k("0101010")).is_none());
        assert_eq!(m.max_common_prefix_len(k("0101010")), 4);
    }

    #[test]
    fn iteration_is_binary_string_ordered() {
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        for s in ["1*", "0110*", "011*", "00*", "0111111"] {
            m.insert(p(s), 0);
        }
        let order: Vec<String> = m.prefixes().map(|g| g.to_string()).collect();
        assert_eq!(order, vec!["00*", "011*", "0110*", "0111111", "1*"]);
    }

    #[test]
    fn removal_prunes_nodes_for_dmin() {
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        m.insert(p("0101010"), 0);
        assert_eq!(m.max_common_prefix_len(k("0101011")), 6);
        m.remove(p("0101010"));
        // After pruning, no phantom path should remain.
        assert_eq!(m.max_common_prefix_len(k("0101011")), 0);
    }

    #[test]
    fn intersecting_collects_ancestors_and_subtree() {
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        for (i, s) in ["0*", "01*", "0110*", "0111*", "010*", "1*"]
            .iter()
            .enumerate()
        {
            m.insert(p(s), i as u32);
        }
        // Range 011*: ancestors 0*, 01* plus subtree 0110*, 0111*.
        let hits: Vec<String> = m
            .intersecting(p("011*"))
            .iter()
            .map(|(g, _)| g.to_string())
            .collect();
        assert_eq!(hits, vec!["0*", "01*", "0110*", "0111*"]);
        // A range wholly inside one entry returns just the ancestors.
        let hits: Vec<String> = m
            .intersecting(p("01101*"))
            .iter()
            .map(|(g, _)| g.to_string())
            .collect();
        assert_eq!(hits, vec!["0*", "01*", "0110*"]);
        // A range matching nothing below but one ancestor.
        let hits = m.intersecting(p("100*"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, p("1*"));
    }

    #[test]
    fn intersecting_on_exact_entry_includes_it() {
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        m.insert(p("011*"), 1);
        let hits = m.intersecting(p("011*"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, p("011*"));
    }

    #[test]
    fn extend_collects_pairs() {
        let mut m: PrefixMap<u32> = PrefixMap::new(w(7));
        m.extend([(p("0*"), 1), (p("1*"), 2)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn uniform_cover_is_partition() {
        let c = PrefixCover::uniform(w(7), 3).unwrap();
        assert_eq!(c.len(), 8);
        assert!(c.is_partition());
        assert_eq!(c.depth_stats(), Some((3, 3.0, 3)));
    }

    #[test]
    fn uniform_depth_zero_is_single_root() {
        let c = PrefixCover::uniform(w(7), 0).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.is_partition());
    }

    #[test]
    fn uniform_rejects_depth_beyond_width() {
        assert!(PrefixCover::uniform(w(7), 8).is_err());
    }

    #[test]
    fn split_and_merge_preserve_partition() {
        let mut c = PrefixCover::uniform(w(7), 2).unwrap();
        let g = c.group_of(k("0110101")).unwrap();
        let (l, r) = c.split(g).unwrap();
        assert!(c.is_partition());
        assert!(c.contains(l) && c.contains(r));
        assert!(!c.contains(g));
        c.merge(g).unwrap();
        assert!(c.is_partition());
        assert!(c.contains(g));
    }

    #[test]
    fn merge_requires_both_children() {
        let mut c = PrefixCover::uniform(w(7), 2).unwrap();
        let g = c.group_of(k("0110101")).unwrap();
        c.split(g).unwrap();
        let (l, _r) = g.split().unwrap();
        c.split(l).unwrap(); // left child is now itself split
        assert!(c.merge(g).is_err(), "grandchildren present, cannot merge");
    }

    #[test]
    fn group_of_is_unique_in_partition() {
        let mut c = PrefixCover::uniform(w(7), 2).unwrap();
        for _ in 0..10 {
            let g = c.group_of(k("0110101")).unwrap();
            if g.depth() == 7 {
                break;
            }
            c.split(g).unwrap();
        }
        // Every key still has exactly one group.
        for bits in 0..128u64 {
            let key = Key::from_bits_truncated(bits, w(7));
            assert!(c.group_of(key).is_some(), "key {key} lost its group");
        }
    }

    #[test]
    fn insert_rejects_overlap() {
        let mut c = PrefixCover::new(w(7));
        c.insert(p("01*")).unwrap();
        assert!(c.insert(p("011*")).is_err(), "descendant must be rejected");
        assert!(c.insert(p("0*")).is_err(), "ancestor must be rejected");
        c.insert(p("10*")).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn split_of_nonmember_fails() {
        let mut c = PrefixCover::uniform(w(7), 2).unwrap();
        assert!(c.split(p("0110*")).is_err());
    }
}
