//! Key groups: `(virtual key, depth)` pairs in the paper's wildcard notation.
//!
//! A [`Prefix`] of depth `d` over an N-bit key space names the group of all
//! `2^(N-d)` keys sharing its first `d` bits (§3–4 of the paper). The
//! **virtual key** of the group is the prefix zero-padded to N bits — the
//! value that actually gets hashed and routed through the DHT.
//!
//! The central trick of CLASH lives here: a group's **left child** (appended
//! `0`) has the *same* virtual key, hence the same hash, hence the same
//! server; only the **right child** (appended `1`) moves.

use std::cmp::Ordering;
use std::fmt;

use crate::error::KeyError;
use crate::key::{shl64, shr64, Key, KeyWidth};

/// A key group: all keys of a fixed width sharing a `depth`-bit prefix.
///
/// # Example (the paper's §4 walk-through)
///
/// ```
/// use clash_keyspace::prefix::Prefix;
///
/// // Splitting "0110*" (depth 4, 7-bit space) yields "01100*" and "01101*".
/// let g = Prefix::parse("0110*", 7)?;
/// let (left, right) = g.split()?;
/// assert_eq!(left.to_string(), "01100*");
/// assert_eq!(right.to_string(), "01101*");
///
/// // The left child expands to the same 7-bit virtual key (decimal 48)...
/// assert_eq!(left.virtual_key(), g.virtual_key());
/// assert_eq!(g.virtual_key().bits(), 48);
/// // ...while the right child expands to a different one (decimal 52).
/// assert_eq!(right.virtual_key().bits(), 52);
/// # Ok::<(), clash_keyspace::error::KeyError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prefix {
    /// The first `depth` bits, right-aligned.
    pattern: u64,
    depth: u32,
    width: KeyWidth,
}

impl Prefix {
    /// The root prefix (depth 0): the group of *all* keys of this width.
    pub fn root(width: KeyWidth) -> Self {
        Prefix {
            pattern: 0,
            depth: 0,
            width,
        }
    }

    /// Creates a prefix from a right-aligned pattern and a depth.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::DepthOutOfRange`] if `depth > width`, or
    /// [`KeyError::BitsOutOfRange`] if `pattern` has bits above `depth`.
    pub fn new(pattern: u64, depth: u32, width: KeyWidth) -> Result<Self, KeyError> {
        if depth > width.get() {
            return Err(KeyError::DepthOutOfRange {
                depth,
                width: width.get(),
            });
        }
        let mask = if depth == 64 {
            u64::MAX
        } else {
            (1u64 << depth) - 1
        };
        if pattern & !mask != 0 {
            return Err(KeyError::BitsOutOfRange {
                bits: pattern,
                width: depth,
            });
        }
        Ok(Prefix {
            pattern,
            depth,
            width,
        })
    }

    /// The group containing `key` at the given depth — the paper's
    /// `Shape(k, d)` restricted to its group identity.
    ///
    /// # Panics
    ///
    /// Panics if `depth > key.width()`.
    pub fn of_key(key: Key, depth: u32) -> Self {
        Prefix {
            pattern: key.top_bits(depth),
            depth,
            width: key.width(),
        }
    }

    /// Parses wildcard notation: `"0110*"` (group) or a full-width string
    /// such as `"0110101"` (a singleton group at depth = width).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::ParseError`] for malformed input and
    /// [`KeyError::DepthOutOfRange`] if the prefix is longer than the width.
    pub fn parse(s: &str, width: u32) -> Result<Self, KeyError> {
        let width = KeyWidth::new(width)?;
        let (body, is_group) = match s.strip_suffix('*') {
            Some(b) => (b, true),
            None => (s, false),
        };
        if !is_group && body.len() != width.get() as usize {
            return Err(KeyError::ParseError {
                input: s.to_owned(),
                reason: "full key must match the width (or end with '*')",
            });
        }
        if body.len() > width.get() as usize {
            return Err(KeyError::DepthOutOfRange {
                depth: body.len() as u32,
                width: width.get(),
            });
        }
        let mut pattern = 0u64;
        for c in body.chars() {
            pattern = (pattern << 1)
                | match c {
                    '0' => 0,
                    '1' => 1,
                    _ => {
                        return Err(KeyError::ParseError {
                            input: s.to_owned(),
                            reason: "prefixes may contain only '0', '1' and a trailing '*'",
                        })
                    }
                };
        }
        Prefix::new(pattern, body.len() as u32, width)
    }

    /// The group's depth (`d` in the paper).
    pub const fn depth(self) -> u32 {
        self.depth
    }

    /// The key width (`N` in the paper).
    pub const fn width(self) -> KeyWidth {
        self.width
    }

    /// The first `depth` bits, right-aligned.
    pub const fn pattern(self) -> u64 {
        self.pattern
    }

    /// The virtual key: the prefix zero-padded to the full width (§4).
    /// This is the value that gets hashed and routed through the DHT.
    pub fn virtual_key(self) -> Key {
        let bits = shl64(self.pattern, self.width.get() - self.depth);
        Key::from_bits_truncated(bits, self.width)
    }

    /// Number of distinct keys in this group (`2^(N-d)`), saturating at
    /// `u64::MAX`.
    pub fn key_count(self) -> u64 {
        let free = self.width.get() - self.depth;
        if free >= 64 {
            u64::MAX
        } else {
            1u64 << free
        }
    }

    /// True if `key` belongs to this group.
    ///
    /// # Panics
    ///
    /// Panics if the key width differs from the prefix width.
    pub fn contains(self, key: Key) -> bool {
        assert_eq!(
            key.width(),
            self.width,
            "key width {} does not match prefix width {}",
            key.width(),
            self.width
        );
        key.top_bits(self.depth) == self.pattern
    }

    /// True if this prefix is a (non-strict) ancestor of `other`, i.e. every
    /// key in `other` is also in `self`.
    pub fn is_prefix_of(self, other: Prefix) -> bool {
        self.width == other.width
            && self.depth <= other.depth
            && shr64(other.pattern, other.depth - self.depth) == self.pattern
    }

    /// Length of the common prefix between this group's pattern and `key`
    /// (at most `depth`). This is the per-entry quantity behind the paper's
    /// `d_min` in the `INCORRECT_DEPTH` response.
    pub fn common_prefix_len_with_key(self, key: Key) -> u32 {
        debug_assert_eq!(key.width(), self.width);
        let key_top = key.top_bits(self.depth);
        let diff = key_top ^ self.pattern;
        if diff == 0 {
            self.depth
        } else {
            let significant = 64 - diff.leading_zeros();
            self.depth - significant
        }
    }

    /// The child group extending this prefix with `bit` (0 = left,
    /// 1 = right).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::DepthOutOfRange`] if the prefix is already at
    /// full depth.
    pub fn child(self, bit: u8) -> Result<Prefix, KeyError> {
        debug_assert!(bit <= 1);
        if self.depth == self.width.get() {
            return Err(KeyError::DepthOutOfRange {
                depth: self.depth + 1,
                width: self.width.get(),
            });
        }
        Ok(Prefix {
            pattern: (self.pattern << 1) | u64::from(bit),
            depth: self.depth + 1,
            width: self.width,
        })
    }

    /// Splits this group into its two depth+1 children `(left, right)` —
    /// the paper's binary splitting step. The left child shares this
    /// group's virtual key; the right child does not.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError::DepthOutOfRange`] at full depth.
    pub fn split(self) -> Result<(Prefix, Prefix), KeyError> {
        Ok((self.child(0)?, self.child(1)?))
    }

    /// The parent group (one bit shorter), or `None` at the root.
    pub fn parent(self) -> Option<Prefix> {
        if self.depth == 0 {
            return None;
        }
        Some(Prefix {
            pattern: self.pattern >> 1,
            depth: self.depth - 1,
            width: self.width,
        })
    }

    /// The sibling group (same parent, last bit flipped), or `None` at the
    /// root.
    pub fn sibling(self) -> Option<Prefix> {
        if self.depth == 0 {
            return None;
        }
        Some(Prefix {
            pattern: self.pattern ^ 1,
            depth: self.depth,
            width: self.width,
        })
    }

    /// The last bit of the pattern: 0 if this is a left child, 1 if right.
    /// Returns `None` at the root.
    pub fn last_bit(self) -> Option<u8> {
        if self.depth == 0 {
            None
        } else {
            Some((self.pattern & 1) as u8)
        }
    }

    /// True if this group's virtual key equals its parent's virtual key —
    /// exactly the left children (the "stays on the same server" half of a
    /// split).
    pub fn shares_virtual_key_with_parent(self) -> bool {
        self.last_bit() == Some(0)
    }

    /// An arbitrary representative key in this group (the virtual key
    /// itself).
    pub fn min_key(self) -> Key {
        self.virtual_key()
    }

    /// The largest key in this group (prefix followed by all ones).
    pub fn max_key(self) -> Key {
        let free = self.width.get() - self.depth;
        let ones = if free >= 64 {
            u64::MAX
        } else {
            (1u64 << free) - 1
        };
        Key::from_bits_truncated(self.virtual_key().bits() | ones, self.width)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.depth {
            let bit = (self.pattern >> (self.depth - 1 - i)) & 1;
            write!(f, "{bit}")?;
        }
        if self.depth < self.width.get() {
            write!(f, "*")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self}/{})", self.width)
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Prefixes order like their binary strings ("0" < "00" < "01" < "1"),
/// which matches a pre-order walk of the logical binary tree.
impl Ord for Prefix {
    fn cmp(&self, other: &Self) -> Ordering {
        let common = self.depth.min(other.depth);
        let a = shr64(self.pattern, self.depth - common);
        let b = shr64(other.pattern, other.depth - common);
        a.cmp(&b)
            .then_with(|| self.depth.cmp(&other.depth))
            .then_with(|| self.width.cmp(&other.width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str, w: u32) -> Prefix {
        Prefix::parse(s, w).unwrap()
    }

    fn k(s: &str, w: u32) -> Key {
        Key::parse(s, w).unwrap()
    }

    #[test]
    fn paper_group_membership_example() {
        // §4: "0110*" includes "0110101" and "0110111"; virtual key is
        // "0110000" with depth 4.
        let g = p("0110*", 7);
        assert_eq!(g.depth(), 4);
        assert!(g.contains(k("0110101", 7)));
        assert!(g.contains(k("0110111", 7)));
        assert!(!g.contains(k("0111111", 7)));
        assert_eq!(g.virtual_key(), k("0110000", 7));
    }

    #[test]
    fn paper_split_example_decimal_values() {
        // §4: expanding "0110*" gives "01100*" (= "0110000", decimal 48)
        // and "01101*" (= "0110100", decimal 52).
        let g = p("0110*", 7);
        let (l, r) = g.split().unwrap();
        assert_eq!(l.virtual_key().bits(), 48);
        assert_eq!(r.virtual_key().bits(), 52);
        assert_eq!(l.virtual_key(), g.virtual_key());
        assert_ne!(r.virtual_key(), g.virtual_key());
    }

    #[test]
    fn display_uses_wildcard_notation() {
        assert_eq!(p("0110*", 7).to_string(), "0110*");
        assert_eq!(p("0110101", 7).to_string(), "0110101");
        assert_eq!(Prefix::root(KeyWidth::new(7).unwrap()).to_string(), "*");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Prefix::parse("01x*", 7).is_err());
        assert!(Prefix::parse("01101010", 7).is_err()); // longer than width
        assert!(Prefix::parse("011", 7).is_err()); // not full width, no '*'
    }

    #[test]
    fn full_depth_prefix_is_singleton() {
        let g = p("0110101", 7);
        assert_eq!(g.key_count(), 1);
        assert!(g.contains(k("0110101", 7)));
        assert!(g.split().is_err());
    }

    #[test]
    fn key_count_scales_with_depth() {
        assert_eq!(p("0110*", 7).key_count(), 8);
        assert_eq!(p("*", 7).key_count(), 128);
    }

    #[test]
    fn root_contains_everything() {
        let root = Prefix::root(KeyWidth::new(7).unwrap());
        assert!(root.contains(k("0000000", 7)));
        assert!(root.contains(k("1111111", 7)));
        assert_eq!(root.key_count(), 128);
    }

    #[test]
    fn parent_child_roundtrip() {
        let g = p("0110*", 7);
        let (l, r) = g.split().unwrap();
        assert_eq!(l.parent(), Some(g));
        assert_eq!(r.parent(), Some(g));
        assert_eq!(l.sibling(), Some(r));
        assert_eq!(r.sibling(), Some(l));
        assert_eq!(l.last_bit(), Some(0));
        assert_eq!(r.last_bit(), Some(1));
        assert!(l.shares_virtual_key_with_parent());
        assert!(!r.shares_virtual_key_with_parent());
    }

    #[test]
    fn root_has_no_parent_or_sibling() {
        let root = Prefix::root(KeyWidth::new(7).unwrap());
        assert_eq!(root.parent(), None);
        assert_eq!(root.sibling(), None);
        assert_eq!(root.last_bit(), None);
    }

    #[test]
    fn is_prefix_of_relation() {
        let a = p("011*", 7);
        let b = p("0110*", 7);
        let c = p("0111*", 7);
        assert!(a.is_prefix_of(b));
        assert!(a.is_prefix_of(c));
        assert!(a.is_prefix_of(a));
        assert!(!b.is_prefix_of(a));
        assert!(!b.is_prefix_of(c));
    }

    #[test]
    fn common_prefix_len_with_key_matches_paper_dmin_example() {
        // §5 case (c): client sent "0101010"; entry "01011*" shares "0101"
        // → longest match 4.
        let entry = p("01011*", 7);
        assert_eq!(entry.common_prefix_len_with_key(k("0101010", 7)), 4);
        // Full match is capped at the entry depth.
        assert_eq!(entry.common_prefix_len_with_key(k("0101111", 7)), 5);
        // No match at all.
        assert_eq!(entry.common_prefix_len_with_key(k("1101111", 7)), 0);
    }

    #[test]
    fn of_key_matches_manual_prefix() {
        let key = k("0110101", 7);
        assert_eq!(Prefix::of_key(key, 4), p("0110*", 7));
        assert_eq!(Prefix::of_key(key, 0), Prefix::root(key.width()));
        assert_eq!(Prefix::of_key(key, 7), p("0110101", 7));
    }

    #[test]
    fn min_max_keys_bound_group() {
        let g = p("0110*", 7);
        assert_eq!(g.min_key(), k("0110000", 7));
        assert_eq!(g.max_key(), k("0110111", 7));
    }

    #[test]
    fn ordering_is_binary_string_order() {
        let mut groups = [p("1*", 3), p("01*", 3), p("0*", 3), p("010", 3)];
        groups.sort();
        let strs: Vec<String> = groups.iter().map(|g| g.to_string()).collect();
        assert_eq!(strs, vec!["0*", "01*", "010", "1*"]);
    }

    #[test]
    fn new_validates_pattern_and_depth() {
        let w = KeyWidth::new(7).unwrap();
        assert!(Prefix::new(0b11, 2, w).is_ok());
        assert!(Prefix::new(0b111, 2, w).is_err());
        assert!(Prefix::new(0, 8, w).is_err());
    }

    #[test]
    fn width64_prefixes_work() {
        let w = KeyWidth::new(64).unwrap();
        let root = Prefix::root(w);
        assert_eq!(root.key_count(), u64::MAX);
        let key = Key::from_bits_truncated(u64::MAX, w);
        assert!(root.contains(key));
        let deep = Prefix::of_key(key, 64);
        assert_eq!(deep.key_count(), 1);
        assert_eq!(deep.virtual_key(), key);
    }
}
