//! Property-based tests for the key-space laws CLASH depends on.

use clash_keyspace::cover::{PrefixCover, PrefixMap};
use clash_keyspace::hash::{HashSpace, KeyHasher, SplitMixHasher};
use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::keygen::{GridPoint, KeyGen, QuadTreeEncoder};
use clash_keyspace::prefix::Prefix;
use proptest::prelude::*;

const WIDTH: u32 = 24;

fn w() -> KeyWidth {
    KeyWidth::new(WIDTH).unwrap()
}

fn arb_key() -> impl Strategy<Value = Key> {
    (0u64..(1u64 << WIDTH)).prop_map(|bits| Key::new(bits, w()).unwrap())
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..=WIDTH)
        .prop_flat_map(|depth| {
            let bound = if depth == 0 { 1 } else { 1u64 << depth };
            (Just(depth), 0..bound)
        })
        .prop_map(|(depth, pattern)| Prefix::new(pattern, depth, w()).unwrap())
}

proptest! {
    /// Shape(k, d) always contains k.
    #[test]
    fn group_of_key_contains_key(key in arb_key(), depth in 0u32..=WIDTH) {
        let group = Prefix::of_key(key, depth);
        prop_assert!(group.contains(key));
        prop_assert_eq!(group.depth(), depth);
    }

    /// A group contains exactly the keys matching its pattern, which is
    /// 2^(N-d) of them (checked on a small sample of the complement).
    #[test]
    fn contains_iff_prefix_matches(key in arb_key(), depth in 1u32..=WIDTH, other in arb_key()) {
        let group = Prefix::of_key(key, depth);
        let same = key.common_prefix_len(other).unwrap() >= depth;
        prop_assert_eq!(group.contains(other), same);
    }

    /// Splitting partitions a group: children are disjoint and their union
    /// is the parent.
    #[test]
    fn split_partitions(prefix in arb_prefix(), probe in arb_key()) {
        prop_assume!(prefix.depth() < WIDTH);
        let (l, r) = prefix.split().unwrap();
        prop_assert_eq!(l.key_count() + r.key_count(), prefix.key_count());
        let in_parent = prefix.contains(probe);
        let in_children = l.contains(probe) ^ r.contains(probe);
        // probe in parent ⇔ probe in exactly one child
        prop_assert_eq!(in_parent, in_children || (l.contains(probe) && r.contains(probe)));
        prop_assert!(!(l.contains(probe) && r.contains(probe)));
    }

    /// The left child's virtual key equals the parent's (the CLASH split
    /// guarantee); the right child's differs.
    #[test]
    fn left_child_shares_virtual_key(prefix in arb_prefix()) {
        prop_assume!(prefix.depth() < WIDTH);
        let (l, r) = prefix.split().unwrap();
        prop_assert_eq!(l.virtual_key(), prefix.virtual_key());
        prop_assert_ne!(r.virtual_key(), prefix.virtual_key());
        // And therefore equal/different hashes.
        let h = SplitMixHasher::new(HashSpace::PAPER, 99);
        prop_assert_eq!(h.hash_key(l.virtual_key()), h.hash_key(prefix.virtual_key()));
    }

    /// parent(child(p)) == p for both children.
    #[test]
    fn parent_inverts_child(prefix in arb_prefix()) {
        prop_assume!(prefix.depth() < WIDTH);
        let (l, r) = prefix.split().unwrap();
        prop_assert_eq!(l.parent(), Some(prefix));
        prop_assert_eq!(r.parent(), Some(prefix));
        prop_assert_eq!(l.sibling(), Some(r));
    }

    /// Display/parse roundtrip.
    #[test]
    fn prefix_display_parse_roundtrip(prefix in arb_prefix()) {
        let s = prefix.to_string();
        let back = Prefix::parse(&s, WIDTH).unwrap();
        prop_assert_eq!(back, prefix);
    }

    /// Key display/parse roundtrip.
    #[test]
    fn key_display_parse_roundtrip(key in arb_key()) {
        let s = key.to_string();
        prop_assert_eq!(Key::parse(&s, WIDTH).unwrap(), key);
    }

    /// common_prefix_len is symmetric, bounded, and consistent with
    /// contains().
    #[test]
    fn cpl_laws(a in arb_key(), b in arb_key()) {
        let ab = a.common_prefix_len(b).unwrap();
        let ba = b.common_prefix_len(a).unwrap();
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= WIDTH);
        if ab < WIDTH {
            prop_assert_ne!(a.bit(ab), b.bit(ab));
        }
        for d in 0..=ab {
            prop_assert!(Prefix::of_key(a, d).contains(b));
        }
    }

    /// In a PrefixMap, max_common_prefix_len equals the brute-force maximum
    /// over entries of per-entry common prefix length.
    #[test]
    fn dmin_matches_bruteforce(
        entries in prop::collection::vec(arb_prefix(), 1..20),
        probe in arb_key(),
    ) {
        let mut map = PrefixMap::new(w());
        for (i, e) in entries.iter().enumerate() {
            map.insert(*e, i);
        }
        let expected = entries
            .iter()
            .map(|e| e.common_prefix_len_with_key(probe))
            .max()
            .unwrap();
        prop_assert_eq!(map.max_common_prefix_len(probe), expected);
    }

    /// Longest-prefix-match agrees with a brute-force scan.
    #[test]
    fn lpm_matches_bruteforce(
        entries in prop::collection::vec(arb_prefix(), 1..20),
        probe in arb_key(),
    ) {
        let mut map = PrefixMap::new(w());
        for (i, e) in entries.iter().enumerate() {
            map.insert(*e, i);
        }
        let expected = entries
            .iter()
            .filter(|e| e.contains(probe))
            .map(|e| e.depth())
            .max();
        let got = map.longest_prefix_match(probe).map(|(p, _)| p.depth());
        prop_assert_eq!(got, expected);
    }

    /// Random split/merge sequences on a cover keep it a partition, and
    /// every key keeps exactly one group.
    #[test]
    fn cover_partition_under_random_ops(
        seed_keys in prop::collection::vec(arb_key(), 1..30),
        ops in prop::collection::vec((any::<bool>(), arb_key()), 0..60),
    ) {
        let _ = seed_keys;
        let mut cover = PrefixCover::uniform(w(), 4).unwrap();
        for (do_split, key) in ops {
            let group = cover.group_of(key).unwrap();
            if do_split {
                if group.depth() < WIDTH {
                    cover.split(group).unwrap();
                }
            } else if let Some(parent) = group.parent() {
                // merge only when both children are present
                let (l, r) = parent.split().unwrap();
                if cover.contains(l) && cover.contains(r) {
                    cover.merge(parent).unwrap();
                }
            }
            prop_assert!(cover.is_partition());
        }
    }

    /// Quad-tree encode/decode roundtrip at paper scale (12 levels).
    #[test]
    fn quadtree_roundtrip(x in 0u64..4096, y in 0u64..4096) {
        let enc = QuadTreeEncoder::new(12).unwrap();
        let k = enc.encode(&GridPoint::new(x, y)).unwrap();
        prop_assert_eq!(enc.decode(k), GridPoint::new(x, y));
    }

    /// Quad-tree locality: halving the coarse coordinates preserves the
    /// prefix at one fewer level.
    #[test]
    fn quadtree_prefix_nesting(x in 0u64..4096, y in 0u64..4096, depth in 1u32..12) {
        let enc = QuadTreeEncoder::new(12).unwrap();
        let k = enc.encode(&GridPoint::new(x, y)).unwrap();
        // All cells within the same 2^(12-depth) aligned block share the
        // first 2*depth bits.
        let block = 12 - depth;
        let x2 = (x >> block) << block;
        let y2 = (y >> block) << block;
        let k2 = enc.encode(&GridPoint::new(x2, y2)).unwrap();
        prop_assert!(k.common_prefix_len(k2).unwrap() >= 2 * depth);
    }
}
