//! Continuous-query-over-streams substrate for the CLASH reproduction.
//!
//! The paper's simulation (§6) models "a pseudo-distributed system for
//! supporting long-lived queries over streaming data" — the
//! NiagaraCQ / Mobiscope class of applications its introduction motivates:
//! clients register *continuous queries* over regions of a hierarchical
//! key space (e.g. "all vehicles in this map tile"), and data packets
//! stream through the servers that own the matching key groups.
//!
//! This crate is that application substrate, independent of the CLASH
//! protocol itself:
//!
//! * [`query::ContinuousQuery`] — a long-lived subscription to a key-space
//!   region (a [`clash_keyspace::prefix::Prefix`]);
//! * [`index::QueryIndex`] — a binary trie matching a packet key to every
//!   query region containing it in O(N);
//! * [`engine::QueryEngine`] — the per-server engine: ingest packets,
//!   deliver matches, and hand whole key groups of queries over for CLASH
//!   state migration ([`engine::QueryEngine::extract_group`]).
//!
//! The paper's load model ("linear in the data rate, and logarithmic in
//! the number of queries") is exactly the cost shape of
//! [`engine::QueryEngine::ingest`]: one trie descent per packet,
//! depth-bounded, over an index whose size grows with the query count.
//!
//! # Example
//!
//! ```
//! use clash_keyspace::key::Key;
//! use clash_keyspace::prefix::Prefix;
//! use clash_streamquery::engine::QueryEngine;
//! use clash_streamquery::query::ContinuousQuery;
//!
//! let mut engine = QueryEngine::new(8.try_into()?);
//! engine.register(ContinuousQuery::new(1, Prefix::parse("0110*", 8)?));
//! engine.register(ContinuousQuery::new(2, Prefix::parse("01*", 8)?));
//!
//! // A packet in 0110… matches both subscriptions.
//! let delivered = engine.ingest(Key::parse("01101001", 8)?);
//! assert_eq!(delivered, vec![2, 1]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// lock that in — determinism reasoning assumes no aliasing backdoors.
#![forbid(unsafe_code)]
pub mod engine;
pub mod index;
pub mod query;

pub use engine::QueryEngine;
pub use index::QueryIndex;
pub use query::ContinuousQuery;
