//! The per-server continuous-query engine.

use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;

use crate::index::QueryIndex;
use crate::query::ContinuousQuery;

/// Engine throughput counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Packets ingested.
    pub packets: u64,
    /// Query deliveries (one per matching query per packet).
    pub deliveries: u64,
    /// Packets that matched no query.
    pub unmatched: u64,
}

/// A per-server query engine: an index of resident queries plus
/// throughput accounting, with group-granularity migration support.
///
/// # Example
///
/// ```
/// use clash_keyspace::key::Key;
/// use clash_keyspace::prefix::Prefix;
/// use clash_streamquery::engine::QueryEngine;
/// use clash_streamquery::query::ContinuousQuery;
///
/// let mut a = QueryEngine::new(8.try_into()?);
/// a.register(ContinuousQuery::new(1, Prefix::parse("011*", 8)?));
///
/// // CLASH splits the group "011*" away: migrate its resident queries.
/// let mut b = QueryEngine::new(8.try_into()?);
/// let moved = a.extract_group(Prefix::parse("011*", 8)?);
/// assert_eq!(moved.len(), 1);
/// b.register_all(moved);
/// assert_eq!(b.ingest(Key::parse("01101111", 8)?), vec![1]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryEngine {
    index: QueryIndex,
    stats: EngineStats,
}

impl QueryEngine {
    /// Creates an empty engine for keys of the given width.
    pub fn new(width: KeyWidth) -> Self {
        QueryEngine {
            index: QueryIndex::new(width),
            stats: EngineStats::default(),
        }
    }

    /// The key width.
    pub fn width(&self) -> KeyWidth {
        self.index.width()
    }

    /// Number of resident queries.
    pub fn query_count(&self) -> usize {
        self.index.len()
    }

    /// Throughput counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Registers a query.
    pub fn register(&mut self, query: ContinuousQuery) {
        self.index.insert(query);
    }

    /// Registers a batch of queries (e.g. a migrated group).
    pub fn register_all<I: IntoIterator<Item = ContinuousQuery>>(&mut self, queries: I) {
        for q in queries {
            self.register(q);
        }
    }

    /// Deregisters the query with `id` at `region`. Returns true if
    /// present.
    pub fn deregister(&mut self, region: Prefix, id: u64) -> bool {
        self.index.remove(region, id)
    }

    /// Ingests one packet: returns the ids of all matching queries and
    /// updates throughput counters.
    pub fn ingest(&mut self, key: Key) -> Vec<u64> {
        let mut ids = Vec::new();
        self.index.for_each_match(key, |q| ids.push(q.id()));
        self.stats.packets += 1;
        self.stats.deliveries += ids.len() as u64;
        if ids.is_empty() {
            self.stats.unmatched += 1;
        }
        ids
    }

    /// Removes and returns every query resident in `group` (CLASH state
    /// migration on split/merge).
    pub fn extract_group(&mut self, group: Prefix) -> Vec<ContinuousQuery> {
        self.index.extract_group(group)
    }

    /// True if the query with `id` is registered at `region`.
    pub fn contains(&self, region: Prefix, id: u64) -> bool {
        self.index.contains(region, id)
    }

    /// Read access to the underlying index.
    pub fn index(&self) -> &QueryIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> QueryEngine {
        QueryEngine::new(KeyWidth::new(8).unwrap())
    }

    fn p(s: &str) -> Prefix {
        Prefix::parse(s, 8).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::parse(s, 8).unwrap()
    }

    #[test]
    fn ingest_counts_and_delivers() {
        let mut e = engine();
        e.register(ContinuousQuery::new(1, p("01*")));
        e.register(ContinuousQuery::new(2, p("0110*")));
        assert_eq!(e.ingest(k("01101111")), vec![1, 2]);
        assert_eq!(e.ingest(k("11111111")), Vec::<u64>::new());
        let s = e.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.deliveries, 2);
        assert_eq!(s.unmatched, 1);
    }

    #[test]
    fn deregister_stops_delivery() {
        let mut e = engine();
        e.register(ContinuousQuery::new(1, p("01*")));
        assert!(e.deregister(p("01*"), 1));
        assert_eq!(e.ingest(k("01000000")), Vec::<u64>::new());
        assert_eq!(e.query_count(), 0);
    }

    #[test]
    fn migration_moves_group_queries() {
        let mut a = engine();
        a.register(ContinuousQuery::new(1, p("0110*"))); // resident in 011*
        a.register(ContinuousQuery::new(2, p("00*"))); // resident in 00*
        let moved = a.extract_group(p("011*"));
        assert_eq!(moved.len(), 1);
        assert_eq!(a.query_count(), 1);
        let mut b = engine();
        b.register_all(moved);
        assert_eq!(b.ingest(k("01101111")), vec![1]);
    }
}
