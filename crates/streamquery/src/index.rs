//! A binary trie matching packet keys to every subscribed region
//! containing them.
//!
//! Matching is the hot path of a continuous-query engine (NiagaraCQ,
//! XFilter — the systems the paper's §1 cites for "efficient indices over
//! streams and queries with intersecting attribute values"): one packet
//! must fan out to all queries whose region contains its key. A binary
//! trie keyed by region prefix makes that a single O(N) descent,
//! independent of the number of queries.

use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;

use crate::query::ContinuousQuery;

#[derive(Debug, Default, Clone)]
struct Node {
    /// Queries subscribed exactly at this prefix.
    queries: Vec<ContinuousQuery>,
    children: [Option<Box<Node>>; 2],
}

impl Node {
    fn is_empty_shell(&self) -> bool {
        self.queries.is_empty() && self.children.iter().all(Option::is_none)
    }
}

/// A prefix trie over query subscriptions.
///
/// # Example
///
/// ```
/// use clash_keyspace::key::Key;
/// use clash_keyspace::prefix::Prefix;
/// use clash_streamquery::index::QueryIndex;
/// use clash_streamquery::query::ContinuousQuery;
///
/// let mut idx = QueryIndex::new(8.try_into()?);
/// idx.insert(ContinuousQuery::new(1, Prefix::parse("01*", 8)?));
/// idx.insert(ContinuousQuery::new(2, Prefix::parse("0110*", 8)?));
/// let hits = idx.matches(Key::parse("01101111", 8)?);
/// assert_eq!(hits.len(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct QueryIndex {
    width: KeyWidth,
    root: Node,
    len: usize,
}

impl QueryIndex {
    /// Creates an empty index for keys of the given width.
    pub fn new(width: KeyWidth) -> Self {
        QueryIndex {
            width,
            root: Node::default(),
            len: 0,
        }
    }

    /// The key width.
    pub fn width(&self) -> KeyWidth {
        self.width
    }

    /// Number of stored queries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no queries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a query.
    ///
    /// # Panics
    ///
    /// Panics if the query's region width differs from the index width.
    pub fn insert(&mut self, query: ContinuousQuery) {
        let region = query.region();
        assert_eq!(region.width(), self.width, "region width mismatch");
        let mut node = &mut self.root;
        for i in 0..region.depth() {
            let bit = ((region.pattern() >> (region.depth() - 1 - i)) & 1) as usize;
            node = node.children[bit].get_or_insert_with(Box::default);
        }
        node.queries.push(query);
        self.len += 1;
    }

    /// Removes the query with `id` subscribed at `region`. Returns true if
    /// it was present.
    pub fn remove(&mut self, region: Prefix, id: u64) -> bool {
        fn rec(node: &mut Node, region: Prefix, i: u32, id: u64) -> bool {
            if i == region.depth() {
                let before = node.queries.len();
                node.queries.retain(|q| q.id() != id);
                return node.queries.len() < before;
            }
            let bit = ((region.pattern() >> (region.depth() - 1 - i)) & 1) as usize;
            let Some(child) = node.children[bit].as_deref_mut() else {
                return false;
            };
            let removed = rec(child, region, i + 1, id);
            if removed && child.is_empty_shell() {
                node.children[bit] = None;
            }
            removed
        }
        let removed = rec(&mut self.root, region, 0, id);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// All queries whose region contains `key`, in root-to-leaf order.
    ///
    /// # Panics
    ///
    /// Panics if the key width differs from the index width.
    pub fn matches(&self, key: Key) -> Vec<ContinuousQuery> {
        let mut out = Vec::new();
        self.for_each_match(key, |q| out.push(*q));
        out
    }

    /// Visits every query whose region contains `key` without allocating.
    pub fn for_each_match(&self, key: Key, mut f: impl FnMut(&ContinuousQuery)) {
        assert_eq!(key.width(), self.width, "key width mismatch");
        let mut node = &self.root;
        for q in &node.queries {
            f(q);
        }
        for i in 0..self.width.get() {
            let bit = key.bit(i) as usize;
            match node.children[bit].as_deref() {
                Some(child) => {
                    node = child;
                    for q in &node.queries {
                        f(q);
                    }
                }
                None => break,
            }
        }
    }

    /// Number of queries matching `key` (no allocation).
    pub fn count_matches(&self, key: Key) -> usize {
        let mut n = 0;
        self.for_each_match(key, |_| n += 1);
        n
    }

    /// True if a query with `id` is registered exactly at `region`.
    pub fn contains(&self, region: Prefix, id: u64) -> bool {
        let mut node = &self.root;
        for i in 0..region.depth() {
            let bit = ((region.pattern() >> (region.depth() - 1 - i)) & 1) as usize;
            match node.children[bit].as_deref() {
                Some(child) => node = child,
                None => return false,
            }
        }
        node.queries.iter().any(|q| q.id() == id)
    }

    /// Removes and returns every query whose *identifier key* lies inside
    /// `group` — the unit of CLASH state migration. Note this is the set
    /// of queries placed in the group, not the set of queries overlapping
    /// it: a query subscribed to an ancestor region is placed at its
    /// region's origin and migrates with whichever group owns that origin.
    pub fn extract_group(&mut self, group: Prefix) -> Vec<ContinuousQuery> {
        assert_eq!(group.width(), self.width, "group width mismatch");
        let mut extracted = Vec::new();
        fn rec(node: &mut Node, group: Prefix, depth: u32, extracted: &mut Vec<ContinuousQuery>) {
            // Collect here if this node's prefix origin lies in the group:
            // for nodes above the group depth, the query's identifier key
            // (region origin, zero-padded) is in the group iff the group's
            // remaining pattern bits are all zero along this path — handled
            // by only descending the group's own bit path above its depth.
            node.queries.retain(|q| {
                if group.contains(q.identifier_key()) {
                    extracted.push(*q);
                    false
                } else {
                    true
                }
            });
            if depth < group.depth() {
                // Above the group: only the group's own path can contain
                // identifier keys in the group.
                let bit = ((group.pattern() >> (group.depth() - 1 - depth)) & 1) as usize;
                if let Some(child) = node.children[bit].as_deref_mut() {
                    rec(child, group, depth + 1, extracted);
                    if child.is_empty_shell() {
                        node.children[bit] = None;
                    }
                }
            } else {
                // At or below the group: every descendant's origin is
                // inside the group.
                for bit in 0..2 {
                    if let Some(child) = node.children[bit].as_deref_mut() {
                        rec(child, group, depth + 1, extracted);
                        if child.is_empty_shell() {
                            node.children[bit] = None;
                        }
                    }
                }
            }
        }
        rec(&mut self.root, group, 0, &mut extracted);
        self.len -= extracted.len();
        extracted
    }

    /// Iterates over all stored queries (no particular order guarantees
    /// beyond root-before-descendants).
    pub fn iter(&self) -> impl Iterator<Item = &ContinuousQuery> {
        let mut stack = vec![&self.root];
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            for child in node.children.iter().flatten() {
                stack.push(child);
            }
            if !node.queries.is_empty() {
                return Some(&node.queries);
            }
        })
        .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> QueryIndex {
        QueryIndex::new(KeyWidth::new(8).unwrap())
    }

    fn p(s: &str) -> Prefix {
        Prefix::parse(s, 8).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::parse(s, 8).unwrap()
    }

    #[test]
    fn matches_all_containing_regions() {
        let mut i = idx();
        i.insert(ContinuousQuery::new(1, p("0*")));
        i.insert(ContinuousQuery::new(2, p("01*")));
        i.insert(ContinuousQuery::new(3, p("0110*")));
        i.insert(ContinuousQuery::new(4, p("0111*")));
        let ids: Vec<u64> = i.matches(k("01101010")).iter().map(|q| q.id()).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        assert_eq!(i.count_matches(k("01101010")), 3);
        assert_eq!(i.count_matches(k("10000000")), 0);
    }

    #[test]
    fn root_subscription_matches_everything() {
        let mut i = idx();
        i.insert(ContinuousQuery::new(1, Prefix::root(i.width())));
        assert_eq!(i.count_matches(k("00000000")), 1);
        assert_eq!(i.count_matches(k("11111111")), 1);
    }

    #[test]
    fn full_depth_subscription_matches_single_key() {
        let mut i = idx();
        i.insert(ContinuousQuery::new(1, p("01101010")));
        assert_eq!(i.count_matches(k("01101010")), 1);
        assert_eq!(i.count_matches(k("01101011")), 0);
    }

    #[test]
    fn remove_by_region_and_id() {
        let mut i = idx();
        i.insert(ContinuousQuery::new(1, p("01*")));
        i.insert(ContinuousQuery::new(2, p("01*")));
        assert_eq!(i.len(), 2);
        assert!(i.remove(p("01*"), 1));
        assert!(!i.remove(p("01*"), 1));
        assert!(!i.remove(p("11*"), 2));
        assert_eq!(i.len(), 1);
        assert_eq!(i.count_matches(k("01000000")), 1);
    }

    #[test]
    fn duplicate_ids_in_different_regions_coexist() {
        // The index itself does not police id uniqueness across regions.
        let mut i = idx();
        i.insert(ContinuousQuery::new(1, p("01*")));
        i.insert(ContinuousQuery::new(1, p("10*")));
        assert_eq!(i.len(), 2);
        assert!(i.remove(p("01*"), 1));
        assert_eq!(i.len(), 1);
        assert_eq!(i.count_matches(k("10000000")), 1);
    }

    #[test]
    fn extract_group_takes_resident_queries() {
        let mut i = idx();
        // Origin of "0110*" is 01100000 — inside group "011*".
        i.insert(ContinuousQuery::new(1, p("0110*")));
        // Origin of "01*" is 01000000 — inside group "010*", not "011*".
        i.insert(ContinuousQuery::new(2, p("01*")));
        // Origin of "01111111" — inside "011*".
        i.insert(ContinuousQuery::new(3, p("01111111")));
        let out = i.extract_group(p("011*"));
        let mut ids: Vec<u64> = out.iter().map(|q| q.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(i.len(), 1);
        // The ancestor query (id 2) still matches keys in 011*.
        assert_eq!(i.count_matches(k("01101111")), 1);
    }

    #[test]
    fn extract_then_reinsert_preserves_matching() {
        let mut a = idx();
        for id in 0..20 {
            let depth = 1 + (id % 7) as u32;
            let pattern = (id * 37) % (1 << depth);
            let region = Prefix::new(pattern, depth, a.width()).unwrap();
            a.insert(ContinuousQuery::new(id, region));
        }
        let mut b = idx();
        let moved = a.extract_group(p("01*"));
        for q in moved {
            b.insert(q);
        }
        // Every key's total match count across both engines equals the
        // original index's count.
        let mut original = idx();
        for id in 0..20 {
            let depth = 1 + (id % 7) as u32;
            let pattern = (id * 37) % (1 << depth);
            let region = Prefix::new(pattern, depth, original.width()).unwrap();
            original.insert(ContinuousQuery::new(id, region));
        }
        for bits in 0..256u64 {
            let key = Key::from_bits_truncated(bits, a.width());
            assert_eq!(
                a.count_matches(key) + b.count_matches(key),
                original.count_matches(key),
                "key {key}"
            );
        }
    }

    #[test]
    fn iter_visits_everything() {
        let mut i = idx();
        i.insert(ContinuousQuery::new(1, p("0*")));
        i.insert(ContinuousQuery::new(2, p("0110*")));
        i.insert(ContinuousQuery::new(3, p("11*")));
        let mut ids: Vec<u64> = i.iter().map(|q| q.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn empty_index_behaviour() {
        let mut i = idx();
        assert!(i.is_empty());
        assert!(i.matches(k("00000000")).is_empty());
        assert!(i.extract_group(p("0*")).is_empty());
        assert!(!i.remove(p("0*"), 1));
    }
}
