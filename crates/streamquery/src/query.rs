//! Continuous queries: long-lived subscriptions to key-space regions.

use std::fmt;

use clash_keyspace::key::Key;
use clash_keyspace::prefix::Prefix;

/// A long-lived query subscribing to all data whose identifier key falls
/// in a region of the key space.
///
/// Its *identifier key* — the key CLASH uses to place the query on a
/// server — is the region's virtual key, so a query lives with the data
/// at the top-left of its region. A query whose region is coarser than
/// the current key-group partition will miss packets routed to sibling
/// groups; [`crate::engine::QueryEngine`] exposes that as the *coverage*
/// metric (the replication cost the paper's §1 attributes to plain DHTs
/// and §7 proposes range-query support for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContinuousQuery {
    id: u64,
    region: Prefix,
}

impl ContinuousQuery {
    /// Creates a query with a unique id subscribing to `region`.
    pub fn new(id: u64, region: Prefix) -> Self {
        ContinuousQuery { id, region }
    }

    /// The query's unique identifier.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The subscribed region.
    pub fn region(&self) -> Prefix {
        self.region
    }

    /// The identifier key CLASH hashes to place this query.
    pub fn identifier_key(&self) -> Key {
        self.region.virtual_key()
    }

    /// True if a packet with `key` matches this subscription.
    pub fn matches(&self, key: Key) -> bool {
        self.region.contains(key)
    }
}

impl fmt::Display for ContinuousQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}@{}", self.id, self.region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        Prefix::parse(s, 8).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::parse(s, 8).unwrap()
    }

    #[test]
    fn matches_region_membership() {
        let q = ContinuousQuery::new(1, p("0110*"));
        assert!(q.matches(k("01101111")));
        assert!(!q.matches(k("01111111")));
    }

    #[test]
    fn identifier_key_is_region_origin() {
        let q = ContinuousQuery::new(1, p("0110*"));
        assert_eq!(q.identifier_key(), k("01100000"));
        assert!(q.region().contains(q.identifier_key()));
    }

    #[test]
    fn display_names_query_and_region() {
        let q = ContinuousQuery::new(7, p("01*"));
        assert_eq!(q.to_string(), "q7@01*");
    }
}
