//! Property tests: the query index agrees with brute-force matching, and
//! migration conserves queries.

use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;
use clash_streamquery::index::QueryIndex;
use clash_streamquery::query::ContinuousQuery;
use proptest::prelude::*;

const WIDTH: u32 = 10;

fn w() -> KeyWidth {
    KeyWidth::new(WIDTH).unwrap()
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..=WIDTH)
        .prop_flat_map(|depth| {
            let bound = if depth == 0 { 1 } else { 1u64 << depth };
            (Just(depth), 0..bound)
        })
        .prop_map(|(depth, pattern)| Prefix::new(pattern, depth, w()).unwrap())
}

fn arb_key() -> impl Strategy<Value = Key> {
    (0u64..(1u64 << WIDTH)).prop_map(|bits| Key::new(bits, w()).unwrap())
}

proptest! {
    /// Trie matching equals the brute-force scan over all queries.
    #[test]
    fn matches_equal_bruteforce(
        regions in prop::collection::vec(arb_prefix(), 0..40),
        probe in arb_key(),
    ) {
        let mut index = QueryIndex::new(w());
        let queries: Vec<ContinuousQuery> = regions
            .iter()
            .enumerate()
            .map(|(i, &r)| ContinuousQuery::new(i as u64, r))
            .collect();
        for q in &queries {
            index.insert(*q);
        }
        let mut got: Vec<u64> = index.matches(probe).iter().map(|q| q.id()).collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = queries
            .iter()
            .filter(|q| q.matches(probe))
            .map(|q| q.id())
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// extract_group removes exactly the queries whose identifier key is
    /// in the group, and the union of both sides matches everything the
    /// original did.
    #[test]
    fn extraction_conserves_queries(
        regions in prop::collection::vec(arb_prefix(), 0..40),
        group in arb_prefix(),
        probes in prop::collection::vec(arb_key(), 1..10),
    ) {
        let mut index = QueryIndex::new(w());
        for (i, &r) in regions.iter().enumerate() {
            index.insert(ContinuousQuery::new(i as u64, r));
        }
        let before = index.len();
        let mut rest_counts = Vec::new();
        let moved = index.extract_group(group);
        prop_assert_eq!(index.len() + moved.len(), before);
        for q in &moved {
            prop_assert!(group.contains(q.identifier_key()));
        }
        for q in index.iter() {
            prop_assert!(!group.contains(q.identifier_key()));
        }
        // Matching is conserved across the two sides.
        let mut other = QueryIndex::new(w());
        for q in moved {
            other.insert(q);
        }
        for probe in probes {
            let total = index.count_matches(probe) + other.count_matches(probe);
            rest_counts.push(total);
            let expected = regions
                .iter()
                .filter(|r| r.contains(probe))
                .count();
            prop_assert_eq!(total, expected);
        }
    }

    /// Insert/remove round-trips leave no residue.
    #[test]
    fn insert_remove_roundtrip(regions in prop::collection::vec(arb_prefix(), 1..30)) {
        let mut index = QueryIndex::new(w());
        for (i, &r) in regions.iter().enumerate() {
            index.insert(ContinuousQuery::new(i as u64, r));
        }
        for (i, &r) in regions.iter().enumerate() {
            prop_assert!(index.remove(r, i as u64));
        }
        prop_assert!(index.is_empty());
        // The trie is fully pruned: nothing matches anywhere.
        prop_assert_eq!(index.count_matches(Key::new(0, w()).unwrap()), 0);
    }
}
