//! Property-based tests for the transport's determinism and invariants.

use clash_simkernel::time::SimDuration;
use clash_transport::{Delivery, LatencyModel, LinkPolicy, LinkTransport, MessageClass, Transport};
use proptest::prelude::*;

fn policy(p_permille: u64, retries: u32) -> LinkPolicy {
    LinkPolicy {
        latency: LatencyModel::Wan {
            base_lo: SimDuration::from_millis(5),
            base_hi: SimDuration::from_millis(50),
            jitter_mean: SimDuration::from_millis(3),
        },
        drop_probability: p_permille as f64 / 1000.0,
        retry_timeout: SimDuration::from_millis(200),
        max_retries: retries,
    }
}

proptest! {
    /// Same seed + same policy + same send sequence ⇒ identical outcomes
    /// and stats, regardless of loss rate.
    #[test]
    fn transport_is_deterministic(
        seed in 0u64..10_000,
        p in 0u64..900,
        retries in 0u32..8,
        sends in prop::collection::vec((0u64..16, 0u64..16), 1..200),
    ) {
        let mut a = LinkTransport::new(policy(p, retries), seed);
        let mut b = LinkTransport::new(policy(p, retries), seed);
        for &(src, dst) in &sends {
            prop_assert_eq!(
                a.send(src, dst, MessageClass::Probe),
                b.send(src, dst, MessageClass::Probe)
            );
        }
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Loss never destroys a message, attempts respect the retry budget,
    /// and every retry shows up in the latency charged.
    #[test]
    fn loss_is_bounded_retry_not_destruction(
        seed in 0u64..10_000,
        p in 0u64..900,
        retries in 0u32..8,
        sends in prop::collection::vec((0u64..16, 0u64..16), 1..200),
    ) {
        let pol = policy(p, retries);
        let mut t = LinkTransport::new(pol, seed);
        let mut retransmissions = 0u64;
        for &(src, dst) in &sends {
            match t.send(src, dst, MessageClass::Probe) {
                Delivery::Delivered { latency, attempts } => {
                    prop_assert!(attempts >= 1 && attempts <= retries + 1);
                    prop_assert!(latency >= pol.retry_timeout * u64::from(attempts - 1));
                    retransmissions += u64::from(attempts - 1);
                }
                Delivery::Unreachable { .. } => {
                    prop_assert!(false, "unpartitioned sends must deliver");
                }
            }
        }
        prop_assert_eq!(t.stats().retransmissions, retransmissions);
        prop_assert_eq!(t.stats().messages, sends.len() as u64);
    }

    /// A partition blocks exactly the cross-island pairs; healing restores
    /// full connectivity.
    #[test]
    fn partition_matrix_is_exact(
        seed in 0u64..10_000,
        split in 1usize..15,
        sends in prop::collection::vec((0u64..16, 0u64..16), 1..100),
    ) {
        let mut t = LinkTransport::new(LinkPolicy::lan(), seed);
        let left: Vec<u64> = (0..split as u64).collect();
        let right: Vec<u64> = (split as u64..16).collect();
        t.partition(&[left.clone(), right.clone()]);
        for &(src, dst) in &sends {
            let same_side = (src < split as u64) == (dst < split as u64);
            prop_assert_eq!(
                t.send(src, dst, MessageClass::Probe).is_delivered(),
                same_side,
                "src={} dst={} split={}", src, dst, split
            );
        }
        t.heal();
        for &(src, dst) in &sends {
            prop_assert!(t.send(src, dst, MessageClass::Probe).is_delivered());
        }
    }
}
