//! Virtual-time message transport for the CLASH harness.
//!
//! The paper (§6) evaluates CLASH purely by message *counts*: its C++
//! simulator, like the seed of this reproduction, delivers every message as
//! a synchronous direct call. This crate adds the missing dimension — a
//! [`Transport`] abstraction that charges each message a deterministic
//! virtual-time cost drawn from a per-link [`LinkPolicy`]:
//!
//! * **latency** — a per-link base delay plus per-message jitter, sampled
//!   from [`clash_simkernel::dist`] substreams derived from the transport
//!   seed, so enabling latency never perturbs the protocol's own RNG draws;
//! * **loss** — transient drops repaired by timeout + retransmission, with
//!   a bounded retry count (the transport is *reliable*, like TCP over a
//!   lossy path: loss inflates latency and retransmission counts, it never
//!   destroys a message);
//! * **partitions** — a severable island matrix; messages between islands
//!   are [`Delivery::Unreachable`] until [`Transport::heal`] is called.
//!
//! Two implementations ship:
//!
//! * [`InstantTransport`] — zero latency, no loss, never draws randomness.
//!   A cluster wired to it is bit-for-bit identical to the pre-transport
//!   direct-call semantics (pinned by the `transport_faults` integration
//!   tests).
//! * [`link::LinkTransport`] — the full latency/loss/partition model.
//!
//! Messages are logically synchronous RPCs: the *cluster* stays in charge
//! of protocol state, the transport decides "how long did this take, and
//! did it get through?". That keeps the harness's analytic-aggregation
//! design (`DESIGN.md` §2) while making locate latency CDFs, retry
//! overhead and partition behavior measurable — see the `netfault`
//! experiment in `clash-sim`.

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// lock that in — determinism reasoning assumes no aliasing backdoors.
#![forbid(unsafe_code)]
pub mod link;
pub mod policy;

pub use link::LinkTransport;
pub use policy::{LatencyModel, LinkPolicy};

use clash_simkernel::time::SimDuration;

/// A node address on the transport: the raw ring-identifier value.
///
/// The transport deliberately knows nothing about `ChordId`/`ServerId`
/// (those live higher in the stack); links are keyed by the underlying
/// `u64` the ring identifiers wrap.
pub type NodeAddr = u64;

/// Protocol message classes, for per-class transport accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MessageClass {
    /// A depth-search probe (`ACCEPT_OBJECT`) or DHT routing hop.
    Probe,
    /// A probe response back to the querying node.
    ProbeResponse,
    /// A leaf-to-parent `LOAD_REPORT`.
    LoadReport,
    /// An `ACCEPT_KEYGROUP` placement.
    AcceptKeygroup,
    /// A `RELEASE_KEYGROUP` request or response.
    ReleaseKeygroup,
    /// A membership handoff (join/leave entry transfer).
    Handoff,
    /// A `REPLICATE_KEYGROUP` seed/refresh/invalidate to a ring-successor
    /// replica, or a recovery state fetch from one.
    ReplicateKeygroup,
    /// An `ACK_REPLICA` response (seed acknowledgement or fetched state).
    AckReplica,
}

impl MessageClass {
    /// All classes, in stats order.
    pub const ALL: [MessageClass; 8] = [
        MessageClass::Probe,
        MessageClass::ProbeResponse,
        MessageClass::LoadReport,
        MessageClass::AcceptKeygroup,
        MessageClass::ReleaseKeygroup,
        MessageClass::Handoff,
        MessageClass::ReplicateKeygroup,
        MessageClass::AckReplica,
    ];

    /// Stable index into per-class stats arrays.
    pub fn index(self) -> usize {
        match self {
            MessageClass::Probe => 0,
            MessageClass::ProbeResponse => 1,
            MessageClass::LoadReport => 2,
            MessageClass::AcceptKeygroup => 3,
            MessageClass::ReleaseKeygroup => 4,
            MessageClass::Handoff => 5,
            MessageClass::ReplicateKeygroup => 6,
            MessageClass::AckReplica => 7,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Probe => "probe",
            MessageClass::ProbeResponse => "probe-resp",
            MessageClass::LoadReport => "load-report",
            MessageClass::AcceptKeygroup => "accept-keygroup",
            MessageClass::ReleaseKeygroup => "release-keygroup",
            MessageClass::Handoff => "handoff",
            MessageClass::ReplicateKeygroup => "replicate-keygroup",
            MessageClass::AckReplica => "ack-replica",
        }
    }
}

/// Outcome of one [`Transport::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The message arrived after `latency` of virtual time, on the
    /// `attempts`-th transmission (1 = no retransmission).
    Delivered {
        /// End-to-end virtual-time cost, including retransmission
        /// timeouts.
        latency: SimDuration,
        /// Transmissions used (first try plus retries).
        attempts: u32,
    },
    /// The destination is unreachable (severed by a partition); the
    /// sender gave up after `attempts` transmissions.
    Unreachable {
        /// Transmissions wasted before giving up.
        attempts: u32,
    },
}

impl Delivery {
    /// The latency if delivered, `None` if unreachable.
    pub fn latency(self) -> Option<SimDuration> {
        match self {
            Delivery::Delivered { latency, .. } => Some(latency),
            Delivery::Unreachable { .. } => None,
        }
    }

    /// True if the message arrived.
    pub fn is_delivered(self) -> bool {
        matches!(self, Delivery::Delivered { .. })
    }
}

/// Aggregate transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Envelopes delivered.
    pub messages: u64,
    /// Extra transmissions forced by loss (timeout + retry).
    pub retransmissions: u64,
    /// Sends refused because source and destination were partitioned.
    pub unreachable: u64,
    /// Sum of delivered end-to-end latency, in microseconds.
    pub total_latency_us: u64,
    /// Envelopes delivered, per [`MessageClass::index`].
    pub per_class: [u64; 8],
}

impl TransportStats {
    /// Mean delivered latency in milliseconds (0 when nothing delivered).
    pub fn mean_latency_ms(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency_us as f64 / 1e3 / self.messages as f64
        }
    }

    /// Retransmissions per delivered message (the lossy-link overhead).
    pub fn retry_overhead(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.messages as f64
        }
    }
}

/// One pre-planned message of a batch (see [`Transport::send_batch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendSpec {
    /// Sender address.
    pub src: NodeAddr,
    /// Destination address.
    pub dst: NodeAddr,
    /// Accounting class.
    pub class: MessageClass,
}

/// A virtual-time message transport.
///
/// Implementations must be deterministic: the outcome of a `send` may
/// depend only on the construction seed, the policy, and the sequence of
/// previous calls — never on wall-clock time or global state.
pub trait Transport: Send {
    /// Attempts to deliver one message from `src` to `dst`.
    ///
    /// Local deliveries (`src == dst`) are free and always succeed.
    fn send(&mut self, src: NodeAddr, dst: NodeAddr, class: MessageClass) -> Delivery;

    /// Delivers a pre-planned batch, writing one [`Delivery`] per spec
    /// into `out` (cleared first), in spec order.
    ///
    /// The contract is strict bit-for-bit equivalence with calling
    /// [`Transport::send`] once per spec in order — same deliveries,
    /// same final [`TransportStats`], same internal state afterwards.
    /// The default implementation is exactly that loop; implementations
    /// may override it with a faster schedule (batched lookups, worker
    /// threads over link-disjoint lanes) as long as the equivalence
    /// holds. The flush charge path hands its whole plan-ordered window
    /// to this method.
    fn send_batch(&mut self, sends: &[SendSpec], out: &mut Vec<Delivery>) {
        out.clear();
        out.reserve(sends.len());
        for s in sends {
            let d = self.send(s.src, s.dst, s.class);
            out.push(d);
        }
    }

    /// Advisory worker-thread budget for [`Transport::send_batch`]
    /// (1 = stay on the caller's thread). Purely an execution-strategy
    /// hint: results never depend on it. Default: ignored.
    fn set_batch_workers(&mut self, _workers: usize) {}

    /// Counters accumulated since construction (or the last reset).
    fn stats(&self) -> TransportStats;

    /// Resets the counters (per-measurement-window accounting).
    fn reset_stats(&mut self);

    /// Severs the network into islands: messages between nodes of
    /// different islands become [`Delivery::Unreachable`]. Nodes not
    /// listed in any island belong to island 0. Default: no-op (the
    /// instant transport cannot be partitioned).
    fn partition(&mut self, _islands: &[Vec<NodeAddr>]) {}

    /// Heals any active partition. Default: no-op.
    fn heal(&mut self) {}

    /// Replaces the link policy in force for all *future* sends — the
    /// gray-failure knob: a chaos schedule degrades latency/loss at
    /// runtime without rebuilding the transport. Links that already
    /// carried traffic keep their sampled per-link base delay (a link's
    /// propagation path does not move when queueing conditions change);
    /// the new policy governs jitter, loss, retries, and the bases of
    /// links created afterwards. Default: no-op (the instant transport
    /// has no policy to mutate).
    fn set_policy(&mut self, _policy: LinkPolicy) {}

    /// The partition island `addr` currently belongs to, or `None` while
    /// the network is healed. Side-effect-free, like
    /// [`Transport::reachable`]. Used by recovery diagnostics to name
    /// the islands blocking a deferred recovery. Default: `None` (the
    /// instant transport cannot be partitioned).
    fn island_of(&self, _addr: NodeAddr) -> Option<u32> {
        None
    }

    /// True while a partition is in force.
    fn is_partitioned(&self) -> bool {
        false
    }

    /// True if a message from `src` could currently reach `dst` — a
    /// side-effect-free connectivity probe (no message is charged, no
    /// randomness drawn). Used by soft-state maintenance (replica payload
    /// refresh) to decide whether an update can piggyback on in-flight
    /// data-plane traffic. Default: always reachable.
    fn reachable(&self, _src: NodeAddr, _dst: NodeAddr) -> bool {
        true
    }

    /// True for the zero-latency direct-call transport (lets callers skip
    /// latency bookkeeping they know will be all zeros).
    fn is_instant(&self) -> bool {
        false
    }
}

/// The zero-cost transport: every message is delivered instantly, nothing
/// is ever dropped, and no randomness is drawn. A cluster wired to this
/// transport behaves bit-for-bit like the pre-transport direct-call code.
#[derive(Debug, Default)]
pub struct InstantTransport {
    stats: TransportStats,
}

impl InstantTransport {
    /// Creates the instant transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for InstantTransport {
    fn send(&mut self, _src: NodeAddr, _dst: NodeAddr, class: MessageClass) -> Delivery {
        self.stats.messages += 1;
        self.stats.per_class[class.index()] += 1;
        Delivery::Delivered {
            latency: SimDuration::ZERO,
            attempts: 1,
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TransportStats::default();
    }

    fn is_instant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_transport_is_free_and_counts() {
        let mut t = InstantTransport::new();
        for i in 0..10 {
            let d = t.send(i, i + 1, MessageClass::Probe);
            assert_eq!(
                d,
                Delivery::Delivered {
                    latency: SimDuration::ZERO,
                    attempts: 1
                }
            );
        }
        t.send(1, 2, MessageClass::LoadReport);
        let s = t.stats();
        assert_eq!(s.messages, 11);
        assert_eq!(s.retransmissions, 0);
        assert_eq!(s.unreachable, 0);
        assert_eq!(s.per_class[MessageClass::Probe.index()], 10);
        assert_eq!(s.per_class[MessageClass::LoadReport.index()], 1);
        assert_eq!(s.mean_latency_ms(), 0.0);
        assert!(t.is_instant());
        t.reset_stats();
        assert_eq!(t.stats(), TransportStats::default());
    }

    #[test]
    fn instant_transport_ignores_partitions() {
        let mut t = InstantTransport::new();
        t.partition(&[vec![1], vec![2]]);
        assert!(!t.is_partitioned());
        assert!(t.send(1, 2, MessageClass::Probe).is_delivered());
    }

    #[test]
    fn message_class_indices_are_distinct() {
        let mut seen = [false; 8];
        for c in MessageClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
            assert!(!c.label().is_empty());
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn delivery_accessors() {
        let d = Delivery::Delivered {
            latency: SimDuration::from_millis(5),
            attempts: 2,
        };
        assert_eq!(d.latency(), Some(SimDuration::from_millis(5)));
        assert!(d.is_delivered());
        let u = Delivery::Unreachable { attempts: 3 };
        assert_eq!(u.latency(), None);
        assert!(!u.is_delivered());
    }

    #[test]
    fn stats_ratios() {
        let s = TransportStats {
            messages: 4,
            retransmissions: 2,
            total_latency_us: 8_000,
            ..TransportStats::default()
        };
        assert!((s.mean_latency_ms() - 2.0).abs() < 1e-12);
        assert!((s.retry_overhead() - 0.5).abs() < 1e-12);
        assert_eq!(TransportStats::default().retry_overhead(), 0.0);
    }
}
