//! Link policies: the latency, loss and retry parameters of a simulated
//! network.

use clash_simkernel::dist::Exponential;
use clash_simkernel::rng::DetRng;
use clash_simkernel::time::SimDuration;

/// How per-message latency is generated on a link.
///
/// Every variant is sampled from the link's own deterministic RNG
/// substream, so two links never share draws and adding traffic on one
/// link never changes the latencies seen on another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// No latency at all (useful to isolate loss effects).
    Zero,
    /// The same fixed delay for every message on every link.
    Constant(SimDuration),
    /// Per-message delay uniform in `[lo, hi]` — a homogeneous LAN.
    Uniform {
        /// Minimum one-way delay.
        lo: SimDuration,
        /// Maximum one-way delay.
        hi: SimDuration,
    },
    /// A heterogeneous WAN: each link draws a *base* propagation delay
    /// uniform in `[base_lo, base_hi]` once (lazily, on first use), and
    /// every message adds exponential queueing jitter with the given
    /// mean. This is the model the `netfault` experiment labels "wan".
    Wan {
        /// Minimum per-link propagation delay.
        base_lo: SimDuration,
        /// Maximum per-link propagation delay.
        base_hi: SimDuration,
        /// Mean of the per-message exponential jitter.
        jitter_mean: SimDuration,
    },
}

impl LatencyModel {
    /// Samples the per-link base delay (drawn once per link).
    pub(crate) fn sample_base(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Zero | LatencyModel::Constant(_) | LatencyModel::Uniform { .. } => {
                SimDuration::ZERO
            }
            LatencyModel::Wan {
                base_lo, base_hi, ..
            } => {
                let span = base_hi.as_micros().saturating_sub(base_lo.as_micros());
                let extra = if span == 0 {
                    0
                } else {
                    rng.uniform_u64(span + 1)
                };
                SimDuration::from_micros(base_lo.as_micros() + extra)
            }
        }
    }

    /// Samples the per-message delay on top of `base`.
    pub(crate) fn sample(&self, base: SimDuration, rng: &mut DetRng) -> SimDuration {
        match *self {
            LatencyModel::Zero => SimDuration::ZERO,
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                let span = hi.as_micros().saturating_sub(lo.as_micros());
                let extra = if span == 0 {
                    0
                } else {
                    rng.uniform_u64(span + 1)
                };
                SimDuration::from_micros(lo.as_micros() + extra)
            }
            LatencyModel::Wan { jitter_mean, .. } => {
                let jitter = if jitter_mean.is_zero() {
                    SimDuration::ZERO
                } else {
                    SimDuration::from_secs_f64(
                        Exponential::with_mean(jitter_mean.as_secs_f64()).sample(rng),
                    )
                };
                base + jitter
            }
        }
    }
}

/// The full behavior of every link in a [`crate::LinkTransport`].
///
/// `drop_probability` models *transient* loss repaired by retransmission:
/// each transmission is lost independently with probability `p`; a lost
/// transmission costs `retry_timeout` of latency and one retransmission.
/// After `max_retries` consecutive losses the next transmission is assumed
/// to get through (the retry budget bounds the latency charged, it does
/// not destroy messages — only a partition makes a destination
/// unreachable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkPolicy {
    /// The latency model.
    pub latency: LatencyModel,
    /// Per-transmission loss probability, in `[0, 1)`.
    pub drop_probability: f64,
    /// Latency charged for each lost transmission before the retry.
    pub retry_timeout: SimDuration,
    /// Maximum retransmissions per message.
    pub max_retries: u32,
}

impl LinkPolicy {
    /// Zero latency, no loss — the [`crate::InstantTransport`] semantics
    /// expressed as a policy (useful for differential tests).
    pub fn instant() -> Self {
        LinkPolicy {
            latency: LatencyModel::Zero,
            drop_probability: 0.0,
            retry_timeout: SimDuration::ZERO,
            max_retries: 0,
        }
    }

    /// A homogeneous datacenter LAN: 0.2–2 ms per message, no loss.
    pub fn lan() -> Self {
        LinkPolicy {
            latency: LatencyModel::Uniform {
                lo: SimDuration::from_micros(200),
                hi: SimDuration::from_millis(2),
            },
            drop_probability: 0.0,
            retry_timeout: SimDuration::from_millis(20),
            max_retries: 3,
        }
    }

    /// A heterogeneous internet WAN: per-link base 20–120 ms plus 15 ms
    /// mean jitter, no loss — the regime Gray's *Distributed Computing
    /// Economics* argues dominates utility computing.
    pub fn wan() -> Self {
        LinkPolicy {
            latency: LatencyModel::Wan {
                base_lo: SimDuration::from_millis(20),
                base_hi: SimDuration::from_millis(120),
                jitter_mean: SimDuration::from_millis(15),
            },
            drop_probability: 0.0,
            retry_timeout: SimDuration::from_millis(500),
            max_retries: 5,
        }
    }

    /// [`LinkPolicy::wan`] with per-transmission loss probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn lossy_wan(p: f64) -> Self {
        let policy = LinkPolicy {
            drop_probability: p,
            ..LinkPolicy::wan()
        };
        policy.validate();
        policy
    }

    /// Checks the policy's numeric ranges.
    ///
    /// # Panics
    ///
    /// Panics if `drop_probability` is outside `[0, 1)` or non-finite, or
    /// if a latency model's bounds are inverted (`hi < lo`) — which would
    /// otherwise silently collapse to a constant delay via saturation.
    pub fn validate(&self) {
        assert!(
            self.drop_probability.is_finite() && (0.0..1.0).contains(&self.drop_probability),
            "drop probability must be in [0, 1), got {}",
            self.drop_probability
        );
        match self.latency {
            LatencyModel::Zero | LatencyModel::Constant(_) => {}
            LatencyModel::Uniform { lo, hi } => {
                assert!(lo <= hi, "uniform latency bounds inverted: {lo} > {hi}");
            }
            LatencyModel::Wan {
                base_lo, base_hi, ..
            } => {
                assert!(
                    base_lo <= base_hi,
                    "wan base latency bounds inverted: {base_lo} > {base_hi}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_latency_stays_in_range() {
        let model = LatencyModel::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(3),
        };
        let mut rng = DetRng::new(7);
        let base = model.sample_base(&mut rng);
        assert!(base.is_zero());
        for _ in 0..1000 {
            let d = model.sample(base, &mut rng);
            assert!(d >= SimDuration::from_millis(1) && d <= SimDuration::from_millis(3));
        }
    }

    #[test]
    fn wan_base_is_per_link_and_in_range() {
        let model = LatencyModel::Wan {
            base_lo: SimDuration::from_millis(20),
            base_hi: SimDuration::from_millis(120),
            jitter_mean: SimDuration::from_millis(15),
        };
        let mut rng = DetRng::new(9);
        for _ in 0..100 {
            let base = model.sample_base(&mut rng);
            assert!(base >= SimDuration::from_millis(20));
            assert!(base <= SimDuration::from_millis(120));
            let d = model.sample(base, &mut rng);
            assert!(d >= base, "jitter only adds");
        }
    }

    #[test]
    fn constant_and_zero_models() {
        let mut rng = DetRng::new(1);
        let c = LatencyModel::Constant(SimDuration::from_millis(4));
        assert_eq!(
            c.sample(SimDuration::ZERO, &mut rng),
            SimDuration::from_millis(4)
        );
        let z = LatencyModel::Zero;
        assert!(z.sample(SimDuration::ZERO, &mut rng).is_zero());
    }

    #[test]
    fn presets_are_valid() {
        LinkPolicy::instant().validate();
        LinkPolicy::lan().validate();
        LinkPolicy::wan().validate();
        LinkPolicy::lossy_wan(0.1).validate();
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn certain_loss_rejected() {
        LinkPolicy::lossy_wan(1.0);
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_uniform_bounds_rejected() {
        LinkPolicy {
            latency: LatencyModel::Uniform {
                lo: SimDuration::from_millis(5),
                hi: SimDuration::from_millis(1),
            },
            ..LinkPolicy::lan()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "bounds inverted")]
    fn inverted_wan_bounds_rejected() {
        LinkPolicy {
            latency: LatencyModel::Wan {
                base_lo: SimDuration::from_millis(100),
                base_hi: SimDuration::from_millis(10),
                jitter_mean: SimDuration::ZERO,
            },
            ..LinkPolicy::wan()
        }
        .validate();
    }
}
