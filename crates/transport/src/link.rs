//! The full latency/loss/partition transport.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hasher};

use clash_simkernel::rng::{splitmix64_mix, DetRng};
use clash_simkernel::time::SimDuration;

use crate::policy::LinkPolicy;
use crate::{Delivery, MessageClass, NodeAddr, SendSpec, Transport, TransportStats};

/// A fixed-seed splitmix64 hasher for the link map: the per-send link
/// lookup is on the simulation hot path, and the std `RandomState`
/// would seed differently per process — the map is never iterated, so
/// that could not change results, but a deterministic hasher keeps the
/// whole transport a pure function of its construction seed by
/// inspection rather than by argument.
#[derive(Debug, Clone, Default)]
struct DetBuildHasher;

#[derive(Debug)]
struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix64_mix(self.0 ^ u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64_mix(self.0 ^ v);
    }
}

impl BuildHasher for DetBuildHasher {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher(0x9E37_79B9_7F4A_7C15)
    }
}

/// Lazily created per-directed-link state: an independent RNG substream
/// plus the link's sampled base propagation delay.
#[derive(Debug)]
struct LinkState {
    rng: DetRng,
    base: SimDuration,
}

/// The partition matrix: an assignment of nodes to islands. `None` means
/// fully connected. Nodes not listed in any island belong to island 0.
#[derive(Debug, Default)]
struct PartitionMatrix {
    islands: Option<BTreeMap<NodeAddr, u32>>,
}

impl PartitionMatrix {
    fn sever(&mut self, islands: &[Vec<NodeAddr>]) {
        let mut map = BTreeMap::new();
        for (gi, island) in islands.iter().enumerate() {
            for &node in island {
                map.insert(node, gi as u32);
            }
        }
        self.islands = Some(map);
    }

    fn heal(&mut self) {
        self.islands = None;
    }

    fn is_active(&self) -> bool {
        self.islands.is_some()
    }

    fn connected(&self, a: NodeAddr, b: NodeAddr) -> bool {
        match &self.islands {
            None => true,
            Some(map) => map.get(&a).copied().unwrap_or(0) == map.get(&b).copied().unwrap_or(0),
        }
    }
}

/// One sub-map of per-directed-link state (see [`LinkTransport::links`]).
type LinkMap = HashMap<(NodeAddr, NodeAddr), LinkState, DetBuildHasher>;

/// A deterministic transport applying one [`LinkPolicy`] to every directed
/// link, with independent per-link randomness and a severable partition
/// matrix.
///
/// # Example
///
/// ```
/// use clash_transport::{LinkPolicy, LinkTransport, MessageClass, Transport};
///
/// let mut t = LinkTransport::new(LinkPolicy::wan(), 42);
/// let d = t.send(1, 2, MessageClass::Probe);
/// assert!(d.is_delivered());
/// assert!(d.latency().unwrap().as_secs_f64() >= 0.020); // ≥ 20 ms base
/// ```
#[derive(Debug)]
pub struct LinkTransport {
    policy: LinkPolicy,
    root: DetRng,
    /// Per-directed-link state, hashed (not ordered): the maps are
    /// looked up once per send and never iterated, so an O(1)
    /// deterministic hash beats the tree walk on large rings. The state
    /// is split into [`LINK_SHARDS`] sub-maps by a pure function of the
    /// (src, dst) pair so that [`Transport::send_batch`] worker threads
    /// can own disjoint sub-maps; which sub-map a link lands in is
    /// invisible to callers (a link's state and draw order depend only
    /// on its pair), so the split cannot change any delivery.
    links: Vec<LinkMap>,
    partition: PartitionMatrix,
    stats: TransportStats,
    /// Worker-thread budget for [`Transport::send_batch`] (1 = inline).
    /// Execution strategy only — results are identical for every value.
    batch_workers: usize,
}

/// Fixed sub-map count for the link state (must divide evenly into
/// worker lanes; a power of two keeps the shard pick a mask).
const LINK_SHARDS: usize = 32;

/// Sends per cache-warming window in the batch path: lookups for a
/// window are issued back-to-back (independent loads the CPU overlaps)
/// before the window is charged, turning the per-send dependent-miss
/// chain into memory-level-parallel misses. 64 windows × ~2 lines per
/// link stay comfortably within L1.
const WARM_WINDOW: usize = 64;

/// Below this many sends a batch is charged by the plain sequential
/// loop: thread spawn + scatter overhead would exceed the work.
const PAR_BATCH_MIN: usize = 4096;

/// The derived 64-bit identity of a directed link: seeds the link's RNG
/// substream and (by its low bits) picks the sub-map shard.
fn pair_mix(src: NodeAddr, dst: NodeAddr) -> u64 {
    splitmix64_mix(src.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dst)
}

impl LinkTransport {
    /// Creates a transport over `policy`, with all randomness derived from
    /// `seed`. The seed is independent of the cluster's protocol seed by
    /// construction (callers derive it as a labelled substream).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`LinkPolicy::validate`]).
    pub fn new(policy: LinkPolicy, seed: u64) -> Self {
        policy.validate();
        LinkTransport {
            policy,
            root: DetRng::new(seed).substream("transport"),
            links: (0..LINK_SHARDS).map(|_| HashMap::default()).collect(),
            partition: PartitionMatrix::default(),
            stats: TransportStats::default(),
            batch_workers: 1,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> LinkPolicy {
        self.policy
    }

    /// Creates the per-link state for a first use: one independent RNG
    /// substream per directed link, derived from the pair — stable no
    /// matter in which order links first carry traffic.
    fn make_link(policy: &LinkPolicy, root: &DetRng, pair: u64) -> LinkState {
        let mut rng = root.substream_indexed("link", pair);
        let base = policy.latency.sample_base(&mut rng);
        LinkState { rng, base }
    }

    fn link_state(&mut self, src: NodeAddr, dst: NodeAddr) -> &mut LinkState {
        let policy = self.policy;
        let root = &self.root;
        let pair = pair_mix(src, dst);
        self.links[pair as usize & (LINK_SHARDS - 1)]
            .entry((src, dst))
            .or_insert_with(|| Self::make_link(&policy, root, pair))
    }

    /// Resolves one non-local, non-partitioned send against a link's
    /// state: the loss/retry draws plus the latency sample. Free
    /// function so batch workers can run it against their own sub-maps;
    /// the caller folds the returned delivery into its stats.
    fn resolve_on_link(policy: &LinkPolicy, link: &mut LinkState) -> Delivery {
        // Transient loss: each transmission drops independently; after
        // max_retries losses the final transmission goes through.
        let mut attempts = 1u32;
        while attempts <= policy.max_retries && link.rng.chance(policy.drop_probability) {
            attempts += 1;
        }
        let latency = policy.retry_timeout * u64::from(attempts - 1)
            + policy.latency.sample(link.base, &mut link.rng);
        Delivery::Delivered { latency, attempts }
    }

    /// Folds one delivery outcome into `stats` exactly as the sequential
    /// [`Transport::send`] does. Every field is a sum of non-negative
    /// integers, so the fold order cannot change the totals — which is
    /// what lets the batch path account lane-by-lane.
    fn charge_stats(stats: &mut TransportStats, class: MessageClass, d: Delivery) {
        match d {
            Delivery::Delivered { latency, attempts } => {
                stats.messages += 1;
                stats.per_class[class.index()] += 1;
                stats.retransmissions += u64::from(attempts - 1);
                stats.total_latency_us += latency.as_micros();
            }
            Delivery::Unreachable { .. } => {
                stats.unreachable += 1;
            }
        }
    }

    /// The monomorphic single-send core shared by [`Transport::send`]
    /// and the batch paths.
    #[inline]
    fn send_one(&mut self, src: NodeAddr, dst: NodeAddr, class: MessageClass) -> Delivery {
        if src == dst {
            // Local delivery: free, no randomness drawn.
            self.stats.messages += 1;
            self.stats.per_class[class.index()] += 1;
            return Delivery::Delivered {
                latency: SimDuration::ZERO,
                attempts: 1,
            };
        }
        if !self.partition.connected(src, dst) {
            let attempts = self.policy.max_retries + 1;
            self.stats.unreachable += 1;
            return Delivery::Unreachable { attempts };
        }
        let policy = self.policy;
        let d = Self::resolve_on_link(&policy, self.link_state(src, dst));
        Self::charge_stats(&mut self.stats, class, d);
        d
    }

    /// The inline (no worker threads) batch path: per [`WARM_WINDOW`]
    /// window, first touch every send's link entry in a tight loop —
    /// the lookups are independent, so their cache misses overlap —
    /// then charge the window in order against the now-warm entries.
    /// Draw order per link and stats totals are exactly the sequential
    /// loop's (same calls, same order).
    fn send_batch_inline(&mut self, sends: &[SendSpec], out: &mut Vec<Delivery>) {
        let mut i = 0;
        while i < sends.len() {
            let end = (i + WARM_WINDOW).min(sends.len());
            for s in &sends[i..end] {
                if s.src != s.dst {
                    let shard = pair_mix(s.src, s.dst) as usize & (LINK_SHARDS - 1);
                    if let Some(l) = self.links[shard].get(&(s.src, s.dst)) {
                        std::hint::black_box(l);
                    }
                }
            }
            for s in &sends[i..end] {
                let d = self.send_one(s.src, s.dst, s.class);
                out.push(d);
            }
            i = end;
        }
    }

    /// The worker-thread batch path: sends are split into per-worker
    /// lanes by the link's sub-map shard (a pure function of the pair),
    /// so every link's sends land in exactly one lane *in batch order*
    /// — each link's RNG draws happen in the same order as the
    /// sequential loop's. Local and partitioned sends never touch link
    /// state and are resolved inline. Stats are folded per lane and
    /// summed (integer sums are order-free), and deliveries are
    /// scattered back by batch index, so the result is bit-for-bit the
    /// sequential loop's whatever the worker count or thread timing.
    fn send_batch_workers(&mut self, workers: usize, sends: &[SendSpec], out: &mut Vec<Delivery>) {
        debug_assert!(out.is_empty());
        out.resize(sends.len(), Delivery::Unreachable { attempts: 0 });
        let mut lanes: Vec<Vec<u32>> = vec![Vec::new(); workers];
        for (i, s) in sends.iter().enumerate() {
            if s.src == s.dst {
                self.stats.messages += 1;
                self.stats.per_class[s.class.index()] += 1;
                out[i] = Delivery::Delivered {
                    latency: SimDuration::ZERO,
                    attempts: 1,
                };
            } else if !self.partition.connected(s.src, s.dst) {
                self.stats.unreachable += 1;
                out[i] = Delivery::Unreachable {
                    attempts: self.policy.max_retries + 1,
                };
            } else {
                let shard = pair_mix(s.src, s.dst) as usize & (LINK_SHARDS - 1);
                lanes[shard % workers].push(i as u32);
            }
        }
        // Hand each worker the sub-maps of its lane: round-robin by
        // shard index, so shard `s` sits at position `s / workers` of
        // worker `s % workers`.
        let mut worker_maps: Vec<Vec<&mut LinkMap>> = (0..workers).map(|_| Vec::new()).collect();
        for (shard, map) in self.links.iter_mut().enumerate() {
            worker_maps[shard % workers].push(map);
        }
        let policy = self.policy;
        let root = &self.root;
        let mut lane_results: Vec<Vec<Delivery>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = lanes
                .iter()
                .zip(worker_maps)
                .map(|(lane, mut maps)| {
                    scope.spawn(move || {
                        let mut res: Vec<Delivery> = Vec::with_capacity(lane.len());
                        let mut i = 0;
                        while i < lane.len() {
                            let end = (i + WARM_WINDOW).min(lane.len());
                            for &si in &lane[i..end] {
                                let s = &sends[si as usize];
                                let pair = pair_mix(s.src, s.dst);
                                let shard = pair as usize & (LINK_SHARDS - 1);
                                if let Some(l) = maps[shard / workers].get(&(s.src, s.dst)) {
                                    std::hint::black_box(l);
                                }
                            }
                            for &si in &lane[i..end] {
                                let s = &sends[si as usize];
                                let pair = pair_mix(s.src, s.dst);
                                let shard = pair as usize & (LINK_SHARDS - 1);
                                let link = maps[shard / workers]
                                    .entry((s.src, s.dst))
                                    .or_insert_with(|| Self::make_link(&policy, root, pair));
                                res.push(Self::resolve_on_link(&policy, link));
                            }
                            i = end;
                        }
                        res
                    })
                })
                .collect();
            lane_results = handles
                .into_iter()
                .map(|h| h.join().expect("link batch worker panicked"))
                .collect();
        });
        for (lane, res) in lanes.iter().zip(lane_results) {
            for (&si, d) in lane.iter().zip(res) {
                Self::charge_stats(&mut self.stats, sends[si as usize].class, d);
                out[si as usize] = d;
            }
        }
    }
}

impl Transport for LinkTransport {
    fn send(&mut self, src: NodeAddr, dst: NodeAddr, class: MessageClass) -> Delivery {
        self.send_one(src, dst, class)
    }

    fn send_batch(&mut self, sends: &[SendSpec], out: &mut Vec<Delivery>) {
        out.clear();
        out.reserve(sends.len());
        if self.batch_workers > 1 && sends.len() >= PAR_BATCH_MIN {
            let workers = self.batch_workers.min(LINK_SHARDS);
            self.send_batch_workers(workers, sends, out);
        } else {
            self.send_batch_inline(sends, out);
        }
    }

    fn set_batch_workers(&mut self, workers: usize) {
        self.batch_workers = workers.max(1);
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TransportStats::default();
    }

    fn partition(&mut self, islands: &[Vec<NodeAddr>]) {
        self.partition.sever(islands);
    }

    fn heal(&mut self) {
        self.partition.heal();
    }

    fn is_partitioned(&self) -> bool {
        self.partition.is_active()
    }

    fn reachable(&self, src: NodeAddr, dst: NodeAddr) -> bool {
        self.partition.connected(src, dst)
    }

    fn set_policy(&mut self, policy: LinkPolicy) {
        policy.validate();
        self.policy = policy;
    }

    fn island_of(&self, addr: NodeAddr) -> Option<u32> {
        self.partition
            .islands
            .as_ref()
            .map(|map| map.get(&addr).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LatencyModel;

    fn drain(t: &mut LinkTransport, n: u64) -> Vec<Delivery> {
        (0..n)
            .map(|i| t.send(i % 8, (i + 1) % 8, MessageClass::Probe))
            .collect()
    }

    #[test]
    fn same_seed_same_deliveries() {
        let mut a = LinkTransport::new(LinkPolicy::lossy_wan(0.2), 11);
        let mut b = LinkTransport::new(LinkPolicy::lossy_wan(0.2), 11);
        assert_eq!(drain(&mut a, 500), drain(&mut b, 500));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LinkTransport::new(LinkPolicy::wan(), 1);
        let mut b = LinkTransport::new(LinkPolicy::wan(), 2);
        assert_ne!(drain(&mut a, 100), drain(&mut b, 100));
    }

    #[test]
    fn link_base_is_stable_per_link() {
        // Two messages on the same WAN link share the base propagation
        // delay: both latencies are >= the base, and the base for a given
        // link is the same regardless of traffic order elsewhere.
        let mut t1 = LinkTransport::new(LinkPolicy::wan(), 5);
        let first = t1.send(100, 200, MessageClass::Probe).latency().unwrap();
        let mut t2 = LinkTransport::new(LinkPolicy::wan(), 5);
        t2.send(7, 8, MessageClass::Probe); // unrelated traffic first
        let second = t2.send(100, 200, MessageClass::Probe).latency().unwrap();
        assert_eq!(
            first, second,
            "per-link substream must be order-independent"
        );
    }

    #[test]
    fn self_send_is_free() {
        let mut t = LinkTransport::new(LinkPolicy::wan(), 3);
        let d = t.send(9, 9, MessageClass::LoadReport);
        assert_eq!(d.latency(), Some(SimDuration::ZERO));
        assert_eq!(t.stats().messages, 1);
    }

    #[test]
    fn loss_inflates_latency_and_counts_retries() {
        let policy = LinkPolicy {
            latency: LatencyModel::Zero,
            drop_probability: 0.5,
            retry_timeout: SimDuration::from_millis(100),
            max_retries: 4,
        };
        let mut t = LinkTransport::new(policy, 17);
        let mut max_attempts = 0;
        for i in 0..2000u64 {
            match t.send(i % 4, 1000, MessageClass::Probe) {
                Delivery::Delivered { latency, attempts } => {
                    assert!(attempts <= 5, "retry budget respected");
                    assert_eq!(
                        latency,
                        SimDuration::from_millis(100) * u64::from(attempts - 1),
                        "each retry charges one timeout"
                    );
                    max_attempts = max_attempts.max(attempts);
                }
                Delivery::Unreachable { .. } => panic!("loss never destroys messages"),
            }
        }
        assert!(max_attempts > 1, "p=0.5 must force retransmissions");
        let s = t.stats();
        assert!(
            s.retransmissions > 500,
            "retries counted: {}",
            s.retransmissions
        );
        let overhead = s.retry_overhead();
        assert!(
            (overhead - 1.0).abs() < 0.2,
            "E[retries] ≈ 1 at p=0.5: {overhead}"
        );
    }

    #[test]
    fn partition_severs_and_heals() {
        let mut t = LinkTransport::new(LinkPolicy::lan(), 23);
        t.partition(&[vec![1, 2], vec![3, 4]]);
        assert!(t.is_partitioned());
        assert!(t.send(1, 2, MessageClass::Probe).is_delivered());
        assert!(!t.send(1, 3, MessageClass::Probe).is_delivered());
        assert!(!t.send(4, 2, MessageClass::Probe).is_delivered());
        // Unlisted nodes fall into island 0.
        assert!(t.send(99, 1, MessageClass::Probe).is_delivered());
        assert!(!t.send(99, 3, MessageClass::Probe).is_delivered());
        assert_eq!(t.stats().unreachable, 3);
        // The side-effect-free probe agrees with send() without counting.
        assert!(t.reachable(1, 2));
        assert!(!t.reachable(1, 3));
        assert_eq!(t.stats().unreachable, 3, "reachable() must not count");
        t.heal();
        assert!(!t.is_partitioned());
        assert!(t.reachable(1, 3));
        assert!(t.send(1, 3, MessageClass::Probe).is_delivered());
    }

    /// A mixed batch exercising every send class: plain WAN links (link
    /// state + RNG draws), self-sends (free), and — when `part` is set —
    /// severed pairs (unreachable, no draws).
    fn mixed_batch(n: usize) -> Vec<SendSpec> {
        let mut state = 0xDEAD_BEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        (0..n)
            .map(|_| {
                let r = next();
                let src = r % 97;
                let dst = match r % 13 {
                    0 => src,            // self-send
                    _ => (r >> 16) % 97, // may collide with src too
                };
                SendSpec {
                    src,
                    dst,
                    class: MessageClass::Probe,
                }
            })
            .collect()
    }

    fn assert_batch_matches_sequential(policy: LinkPolicy, workers: usize, partition: bool) {
        let sends = mixed_batch(10_000);
        let mut seq = LinkTransport::new(policy, 77);
        let mut bat = LinkTransport::new(policy, 77);
        bat.set_batch_workers(workers);
        if partition {
            // Nodes 0..48 vs 49..96: plenty of severed pairs in the mix.
            let islands: Vec<Vec<u64>> = vec![(0..49).collect(), (49..97).collect()];
            seq.partition(&islands);
            bat.partition(&islands);
        }
        let expected: Vec<Delivery> = sends
            .iter()
            .map(|s| seq.send(s.src, s.dst, s.class))
            .collect();
        let mut got = Vec::new();
        bat.send_batch(&sends, &mut got);
        assert_eq!(expected, got, "workers={workers} partition={partition}");
        assert_eq!(seq.stats(), bat.stats());
        // Draw order per link must also line up for *future* traffic.
        for s in sends.iter().take(200) {
            assert_eq!(
                seq.send(s.src, s.dst, s.class),
                bat.send(s.src, s.dst, s.class),
                "post-batch link state diverged"
            );
        }
    }

    #[test]
    fn send_batch_matches_sequential_inline() {
        assert_batch_matches_sequential(LinkPolicy::lossy_wan(0.2), 1, false);
    }

    #[test]
    fn send_batch_matches_sequential_workers() {
        for workers in [2, 4, 8] {
            assert_batch_matches_sequential(LinkPolicy::lossy_wan(0.2), workers, false);
        }
    }

    #[test]
    fn send_batch_matches_sequential_partitioned() {
        for workers in [1, 4] {
            assert_batch_matches_sequential(LinkPolicy::wan(), workers, true);
        }
    }

    #[test]
    fn send_batch_small_batches_and_empty() {
        let mut t = LinkTransport::new(LinkPolicy::wan(), 5);
        t.set_batch_workers(4);
        let mut out = vec![Delivery::Unreachable { attempts: 9 }];
        t.send_batch(&[], &mut out);
        assert!(out.is_empty(), "empty batch clears out");
        // Below PAR_BATCH_MIN the inline path runs even with workers set.
        let sends = mixed_batch(63);
        let mut seq = LinkTransport::new(LinkPolicy::wan(), 5);
        let expected: Vec<Delivery> = sends
            .iter()
            .map(|s| seq.send(s.src, s.dst, s.class))
            .collect();
        t.send_batch(&sends, &mut out);
        assert_eq!(expected, out);
    }

    #[test]
    fn rapid_sever_heal_flapping_does_not_double_charge() {
        // Regression for link flapping: a sever → unreachable send →
        // heal cycle must leave every link's state (RNG position, base
        // delay) untouched, so post-heal traffic is charged exactly the
        // latency a never-partitioned twin charges — no double-charged
        // retries, no skipped draws.
        let policy = LinkPolicy::lossy_wan(0.2);
        let mut flappy = LinkTransport::new(policy, 31);
        let mut calm = LinkTransport::new(policy, 31);
        let islands: Vec<Vec<u64>> = vec![(0..4).collect(), (4..8).collect()];
        let mut unreachable = 0u64;
        for round in 0..50u64 {
            flappy.partition(&islands);
            assert_eq!(flappy.island_of(1), Some(0));
            assert_eq!(flappy.island_of(5), Some(1));
            assert_eq!(flappy.island_of(99), Some(0), "unlisted nodes → island 0");
            // Mid-flap: the cross-island send is refused without touching
            // link state or randomness.
            let d = flappy.send(round % 4, 4 + round % 4, MessageClass::Probe);
            assert!(!d.is_delivered());
            unreachable += 1;
            flappy.heal();
            assert_eq!(flappy.island_of(1), None, "healed network has no islands");
            // Post-heal traffic on the very link that was refused must
            // match the never-partitioned twin delivery for delivery.
            for _ in 0..3 {
                let src = round % 4;
                let dst = 4 + round % 4;
                assert_eq!(
                    flappy.send(src, dst, MessageClass::Probe),
                    calm.send(src, dst, MessageClass::Probe),
                    "flapping perturbed link state at round {round}"
                );
            }
        }
        let fs = flappy.stats();
        let cs = calm.stats();
        assert_eq!(fs.unreachable, unreachable);
        assert_eq!(fs.messages, cs.messages);
        assert_eq!(fs.retransmissions, cs.retransmissions);
        assert_eq!(fs.total_latency_us, cs.total_latency_us);
    }

    #[test]
    fn set_policy_governs_future_sends() {
        // Degrade a clean LAN into a lossy link at runtime: the policy
        // swap is visible to future sends (retries appear) and is
        // reversible (restoring the old policy restores clean delivery).
        let clean = LinkPolicy {
            latency: LatencyModel::Zero,
            drop_probability: 0.0,
            retry_timeout: SimDuration::from_millis(100),
            max_retries: 4,
        };
        let mut t = LinkTransport::new(clean, 41);
        for i in 0..100u64 {
            let d = t.send(i % 4, 100, MessageClass::Probe);
            assert_eq!(d.latency(), Some(SimDuration::ZERO));
        }
        assert_eq!(t.stats().retransmissions, 0);
        t.set_policy(LinkPolicy {
            drop_probability: 0.9,
            ..clean
        });
        assert_eq!(t.policy().drop_probability, 0.9);
        for i in 0..100u64 {
            t.send(i % 4, 100, MessageClass::Probe);
        }
        let degraded = t.stats().retransmissions;
        assert!(degraded > 100, "p=0.9 must force retries: {degraded}");
        t.set_policy(clean);
        for i in 0..100u64 {
            let d = t.send(i % 4, 100, MessageClass::Probe);
            assert_eq!(d.latency(), Some(SimDuration::ZERO));
        }
        assert_eq!(t.stats().retransmissions, degraded, "clean again");
    }

    #[test]
    fn set_policy_keeps_existing_wan_link_bases() {
        // A link's base propagation delay is part of its identity: a
        // runtime policy mutation (gray failure) must not resample it.
        let wan = LinkPolicy::wan();
        let mut t = LinkTransport::new(wan, 51);
        let no_jitter = LinkPolicy {
            latency: LatencyModel::Wan {
                base_lo: SimDuration::from_millis(20),
                base_hi: SimDuration::from_millis(120),
                jitter_mean: SimDuration::ZERO,
            },
            ..wan
        };
        t.set_policy(no_jitter);
        let first = t.send(1, 2, MessageClass::Probe).latency().unwrap();
        let again = t.send(1, 2, MessageClass::Probe).latency().unwrap();
        assert_eq!(first, again, "zero jitter exposes the stable base");
        t.set_policy(wan);
        let with_jitter = t.send(1, 2, MessageClass::Probe).latency().unwrap();
        assert!(with_jitter >= first, "same base, jitter only adds");
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn set_policy_validates() {
        let mut t = LinkTransport::new(LinkPolicy::lan(), 1);
        t.set_policy(LinkPolicy {
            drop_probability: 1.5,
            ..LinkPolicy::lan()
        });
    }

    #[test]
    fn instant_policy_matches_instant_transport() {
        use crate::InstantTransport;
        let mut link = LinkTransport::new(LinkPolicy::instant(), 7);
        let mut instant = InstantTransport::new();
        for i in 0..200u64 {
            assert_eq!(
                link.send(i, i + 1, MessageClass::Handoff),
                instant.send(i, i + 1, MessageClass::Handoff)
            );
        }
        assert_eq!(link.stats().messages, instant.stats().messages);
        assert_eq!(link.stats().total_latency_us, 0);
    }
}
