//! The full latency/loss/partition transport.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasher, Hasher};

use clash_simkernel::rng::{splitmix64_mix, DetRng};
use clash_simkernel::time::SimDuration;

use crate::policy::LinkPolicy;
use crate::{Delivery, MessageClass, NodeAddr, Transport, TransportStats};

/// A fixed-seed splitmix64 hasher for the link map: the per-send link
/// lookup is on the simulation hot path, and the std `RandomState`
/// would seed differently per process — the map is never iterated, so
/// that could not change results, but a deterministic hasher keeps the
/// whole transport a pure function of its construction seed by
/// inspection rather than by argument.
#[derive(Debug, Clone, Default)]
struct DetBuildHasher;

#[derive(Debug)]
struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix64_mix(self.0 ^ u64::from(b));
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = splitmix64_mix(self.0 ^ v);
    }
}

impl BuildHasher for DetBuildHasher {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher(0x9E37_79B9_7F4A_7C15)
    }
}

/// Lazily created per-directed-link state: an independent RNG substream
/// plus the link's sampled base propagation delay.
#[derive(Debug)]
struct LinkState {
    rng: DetRng,
    base: SimDuration,
}

/// The partition matrix: an assignment of nodes to islands. `None` means
/// fully connected. Nodes not listed in any island belong to island 0.
#[derive(Debug, Default)]
struct PartitionMatrix {
    islands: Option<BTreeMap<NodeAddr, u32>>,
}

impl PartitionMatrix {
    fn sever(&mut self, islands: &[Vec<NodeAddr>]) {
        let mut map = BTreeMap::new();
        for (gi, island) in islands.iter().enumerate() {
            for &node in island {
                map.insert(node, gi as u32);
            }
        }
        self.islands = Some(map);
    }

    fn heal(&mut self) {
        self.islands = None;
    }

    fn is_active(&self) -> bool {
        self.islands.is_some()
    }

    fn connected(&self, a: NodeAddr, b: NodeAddr) -> bool {
        match &self.islands {
            None => true,
            Some(map) => map.get(&a).copied().unwrap_or(0) == map.get(&b).copied().unwrap_or(0),
        }
    }
}

/// A deterministic transport applying one [`LinkPolicy`] to every directed
/// link, with independent per-link randomness and a severable partition
/// matrix.
///
/// # Example
///
/// ```
/// use clash_transport::{LinkPolicy, LinkTransport, MessageClass, Transport};
///
/// let mut t = LinkTransport::new(LinkPolicy::wan(), 42);
/// let d = t.send(1, 2, MessageClass::Probe);
/// assert!(d.is_delivered());
/// assert!(d.latency().unwrap().as_secs_f64() >= 0.020); // ≥ 20 ms base
/// ```
#[derive(Debug)]
pub struct LinkTransport {
    policy: LinkPolicy,
    root: DetRng,
    /// Per-directed-link state, hashed (not ordered): the map is looked
    /// up once per send and never iterated, so an O(1) deterministic
    /// hash beats the tree walk on large rings.
    links: HashMap<(NodeAddr, NodeAddr), LinkState, DetBuildHasher>,
    partition: PartitionMatrix,
    stats: TransportStats,
}

impl LinkTransport {
    /// Creates a transport over `policy`, with all randomness derived from
    /// `seed`. The seed is independent of the cluster's protocol seed by
    /// construction (callers derive it as a labelled substream).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`LinkPolicy::validate`]).
    pub fn new(policy: LinkPolicy, seed: u64) -> Self {
        policy.validate();
        LinkTransport {
            policy,
            root: DetRng::new(seed).substream("transport"),
            links: HashMap::default(),
            partition: PartitionMatrix::default(),
            stats: TransportStats::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> LinkPolicy {
        self.policy
    }

    fn link_state(&mut self, src: NodeAddr, dst: NodeAddr) -> &mut LinkState {
        let policy = self.policy;
        let root = &self.root;
        self.links.entry((src, dst)).or_insert_with(|| {
            // One independent substream per directed link, derived from the
            // pair — stable no matter in which order links first carry
            // traffic.
            let pair = splitmix64_mix(src.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dst);
            let mut rng = root.substream_indexed("link", pair);
            let base = policy.latency.sample_base(&mut rng);
            LinkState { rng, base }
        })
    }
}

impl Transport for LinkTransport {
    fn send(&mut self, src: NodeAddr, dst: NodeAddr, class: MessageClass) -> Delivery {
        if src == dst {
            // Local delivery: free, no randomness drawn.
            self.stats.messages += 1;
            self.stats.per_class[class.index()] += 1;
            return Delivery::Delivered {
                latency: SimDuration::ZERO,
                attempts: 1,
            };
        }
        if !self.partition.connected(src, dst) {
            let attempts = self.policy.max_retries + 1;
            self.stats.unreachable += 1;
            return Delivery::Unreachable { attempts };
        }
        let policy = self.policy;
        let link = self.link_state(src, dst);
        // Transient loss: each transmission drops independently; after
        // max_retries losses the final transmission goes through.
        let mut attempts = 1u32;
        while attempts <= policy.max_retries && link.rng.chance(policy.drop_probability) {
            attempts += 1;
        }
        let latency = policy.retry_timeout * u64::from(attempts - 1)
            + policy.latency.sample(link.base, &mut link.rng);
        self.stats.messages += 1;
        self.stats.per_class[class.index()] += 1;
        self.stats.retransmissions += u64::from(attempts - 1);
        self.stats.total_latency_us += latency.as_micros();
        Delivery::Delivered { latency, attempts }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TransportStats::default();
    }

    fn partition(&mut self, islands: &[Vec<NodeAddr>]) {
        self.partition.sever(islands);
    }

    fn heal(&mut self) {
        self.partition.heal();
    }

    fn is_partitioned(&self) -> bool {
        self.partition.is_active()
    }

    fn reachable(&self, src: NodeAddr, dst: NodeAddr) -> bool {
        self.partition.connected(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::LatencyModel;

    fn drain(t: &mut LinkTransport, n: u64) -> Vec<Delivery> {
        (0..n)
            .map(|i| t.send(i % 8, (i + 1) % 8, MessageClass::Probe))
            .collect()
    }

    #[test]
    fn same_seed_same_deliveries() {
        let mut a = LinkTransport::new(LinkPolicy::lossy_wan(0.2), 11);
        let mut b = LinkTransport::new(LinkPolicy::lossy_wan(0.2), 11);
        assert_eq!(drain(&mut a, 500), drain(&mut b, 500));
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LinkTransport::new(LinkPolicy::wan(), 1);
        let mut b = LinkTransport::new(LinkPolicy::wan(), 2);
        assert_ne!(drain(&mut a, 100), drain(&mut b, 100));
    }

    #[test]
    fn link_base_is_stable_per_link() {
        // Two messages on the same WAN link share the base propagation
        // delay: both latencies are >= the base, and the base for a given
        // link is the same regardless of traffic order elsewhere.
        let mut t1 = LinkTransport::new(LinkPolicy::wan(), 5);
        let first = t1.send(100, 200, MessageClass::Probe).latency().unwrap();
        let mut t2 = LinkTransport::new(LinkPolicy::wan(), 5);
        t2.send(7, 8, MessageClass::Probe); // unrelated traffic first
        let second = t2.send(100, 200, MessageClass::Probe).latency().unwrap();
        assert_eq!(
            first, second,
            "per-link substream must be order-independent"
        );
    }

    #[test]
    fn self_send_is_free() {
        let mut t = LinkTransport::new(LinkPolicy::wan(), 3);
        let d = t.send(9, 9, MessageClass::LoadReport);
        assert_eq!(d.latency(), Some(SimDuration::ZERO));
        assert_eq!(t.stats().messages, 1);
    }

    #[test]
    fn loss_inflates_latency_and_counts_retries() {
        let policy = LinkPolicy {
            latency: LatencyModel::Zero,
            drop_probability: 0.5,
            retry_timeout: SimDuration::from_millis(100),
            max_retries: 4,
        };
        let mut t = LinkTransport::new(policy, 17);
        let mut max_attempts = 0;
        for i in 0..2000u64 {
            match t.send(i % 4, 1000, MessageClass::Probe) {
                Delivery::Delivered { latency, attempts } => {
                    assert!(attempts <= 5, "retry budget respected");
                    assert_eq!(
                        latency,
                        SimDuration::from_millis(100) * u64::from(attempts - 1),
                        "each retry charges one timeout"
                    );
                    max_attempts = max_attempts.max(attempts);
                }
                Delivery::Unreachable { .. } => panic!("loss never destroys messages"),
            }
        }
        assert!(max_attempts > 1, "p=0.5 must force retransmissions");
        let s = t.stats();
        assert!(
            s.retransmissions > 500,
            "retries counted: {}",
            s.retransmissions
        );
        let overhead = s.retry_overhead();
        assert!(
            (overhead - 1.0).abs() < 0.2,
            "E[retries] ≈ 1 at p=0.5: {overhead}"
        );
    }

    #[test]
    fn partition_severs_and_heals() {
        let mut t = LinkTransport::new(LinkPolicy::lan(), 23);
        t.partition(&[vec![1, 2], vec![3, 4]]);
        assert!(t.is_partitioned());
        assert!(t.send(1, 2, MessageClass::Probe).is_delivered());
        assert!(!t.send(1, 3, MessageClass::Probe).is_delivered());
        assert!(!t.send(4, 2, MessageClass::Probe).is_delivered());
        // Unlisted nodes fall into island 0.
        assert!(t.send(99, 1, MessageClass::Probe).is_delivered());
        assert!(!t.send(99, 3, MessageClass::Probe).is_delivered());
        assert_eq!(t.stats().unreachable, 3);
        // The side-effect-free probe agrees with send() without counting.
        assert!(t.reachable(1, 2));
        assert!(!t.reachable(1, 3));
        assert_eq!(t.stats().unreachable, 3, "reachable() must not count");
        t.heal();
        assert!(!t.is_partitioned());
        assert!(t.reachable(1, 3));
        assert!(t.send(1, 3, MessageClass::Probe).is_delivered());
    }

    #[test]
    fn instant_policy_matches_instant_transport() {
        use crate::InstantTransport;
        let mut link = LinkTransport::new(LinkPolicy::instant(), 7);
        let mut instant = InstantTransport::new();
        for i in 0..200u64 {
            assert_eq!(
                link.send(i, i + 1, MessageClass::Handoff),
                instant.send(i, i + 1, MessageClass::Handoff)
            );
        }
        assert_eq!(link.stats().messages, instant.stats().messages);
        assert_eq!(link.stats().total_latency_us, 0);
    }
}
