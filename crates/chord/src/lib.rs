//! Chord DHT substrate for the CLASH reproduction.
//!
//! CLASH (Misra, Castro & Lee, ICDCS 2004) is a redirection layer that
//! "leaves the base DHT protocol unchanged" (§2) and consumes exactly two
//! things from it: the `Map()` function (which server currently owns a hash
//! value) and its O(log S) lookup cost. The paper's simulator extends the
//! MIT Chord simulator; this crate is the equivalent from-scratch Chord
//! ([Stoica et al., SIGCOMM 2001]) built for deterministic in-process
//! simulation:
//!
//! * [`id::ChordId`] — M-bit ring identifiers with wrapping interval
//!   arithmetic;
//! * [`node::ChordNode`] — per-node state: successor list, predecessor,
//!   finger table;
//! * [`net::SimNet`] — the in-process network: iterative
//!   `find_successor` with per-hop counting, node join/leave/fail,
//!   stabilization and finger repair;
//! * [`virtual_nodes::VirtualRing`] — CFS-style virtual servers (used by
//!   the ablation experiments).
//!
//! # Example
//!
//! ```
//! use clash_chord::net::SimNet;
//! use clash_keyspace::hash::HashSpace;
//! use clash_simkernel::rng::DetRng;
//!
//! let mut rng = DetRng::new(7);
//! let mut net = SimNet::with_random_nodes(HashSpace::PAPER, 64, &mut rng);
//! net.build_stable();
//!
//! // Look up an arbitrary hash from an arbitrary node: the result is the
//! // ring successor, reached in O(log S) hops.
//! let start = net.node_ids()[0];
//! let result = net.find_successor(start, 0x123456);
//! assert_eq!(Some(result.owner), net.owner_of(0x123456));
//! assert!(result.hops <= 12);
//! ```

// The grep audit at PR 7 found zero `unsafe` in the protocol crates;
// lock that in — determinism reasoning assumes no aliasing backdoors.
#![forbid(unsafe_code)]
pub mod id;
pub mod net;
pub mod node;
pub mod snapshot;
pub mod virtual_nodes;

pub use id::ChordId;
pub use net::{LookupResult, SimNet};
pub use node::ChordNode;
pub use snapshot::RouteSnapshot;
pub use virtual_nodes::VirtualRing;
