//! The in-process Chord network: routing, membership and maintenance.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;

use clash_keyspace::hash::HashSpace;
use clash_simkernel::rng::DetRng;

use crate::id::ChordId;
use crate::node::ChordNode;
use crate::snapshot::RouteSnapshot;

/// Result of one `find_successor` lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The node owning the target hash.
    pub owner: ChordId,
    /// Inter-node messages used to resolve the lookup (0 when the start
    /// node already owns the target).
    pub hops: u32,
}

/// Aggregate lookup statistics (feeds the O(log S) validation and the
/// Figure 5 message accounting).
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Number of lookups performed.
    pub lookups: u64,
    /// Total hops across all lookups.
    pub total_hops: u64,
    /// Largest single-lookup hop count.
    pub max_hops: u32,
}

impl NetStats {
    /// Mean hops per lookup (0 when no lookups were made).
    pub fn mean_hops(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.lookups as f64
        }
    }
}

/// A simulated Chord ring.
///
/// All nodes live in one process; "messages" are method calls with hop
/// counting. Failed nodes keep their (stale) state but are invisible to
/// routing, exactly as a crashed host would be; [`SimNet::stabilize_round`]
/// and [`SimNet::fix_fingers_round`] implement the Chord maintenance
/// protocol that repairs pointers around failures and joins.
pub struct SimNet {
    space: HashSpace,
    nodes: BTreeMap<u64, ChordNode>,
    succ_list_len: usize,
    stats: NetStats,
    /// Worker threads the ground-truth stabilization paths
    /// ([`SimNet::build_stable`], [`SimNet::stabilize_direct`]) may
    /// partition their per-node table computation over. The computed
    /// tables are a pure function of the alive-id vector, so the result
    /// is bit-for-bit identical for every value; 1 (the default) stays
    /// inline.
    stabilize_workers: usize,
    /// Memoized first *alive* successor per node. Routing consults this
    /// once per hop of every lookup; between membership/maintenance
    /// events successor lists and liveness are static, so the walk down
    /// the successor list is paid once per node instead of once per hop.
    /// Any mutation that can change the answer (join, fail, removal,
    /// stabilization, `build_stable`) clears the whole cache — those
    /// events are rare next to lookups.
    succ_cache: RefCell<BTreeMap<u64, ChordId>>,
    /// Memoized alive node ids in ring order — what
    /// [`SimNet::random_alive`] indexes into. Rebuilding this vector per
    /// client entry-point draw was an O(ring) cost on *every* probe;
    /// the cache is invalidated together with `succ_cache`, and the
    /// indexing (same sorted order, same single `uniform_index` draw)
    /// picks bit-for-bit the same node the rebuild would have.
    alive_cache: RefCell<Option<Vec<ChordId>>>,
}

impl SimNet {
    /// Creates an empty ring over the given hash space with the Chord
    /// default successor-list length (`⌈log₂ expected-nodes⌉` is typical;
    /// we default to 8).
    pub fn new(space: HashSpace) -> Self {
        SimNet {
            space,
            nodes: BTreeMap::new(),
            succ_list_len: 8,
            stats: NetStats::default(),
            stabilize_workers: 1,
            succ_cache: RefCell::new(BTreeMap::new()),
            alive_cache: RefCell::new(None),
        }
    }

    /// Drops every memoized first-alive-successor entry and the alive-id
    /// vector. Called by every mutation that can change liveness or a
    /// successor list.
    fn invalidate_succ_cache(&self) {
        self.succ_cache.borrow_mut().clear();
        *self.alive_cache.borrow_mut() = None;
    }

    /// Sets the successor-list length (fault-tolerance depth).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn set_successor_list_len(&mut self, len: usize) {
        assert!(len > 0, "successor list length must be positive");
        self.succ_list_len = len;
    }

    /// Sets the worker count for the partitioned ground-truth
    /// stabilization paths (see the field doc). Purely an execution
    /// hint: every value computes identical tables.
    pub fn set_stabilize_workers(&mut self, workers: usize) {
        self.stabilize_workers = workers.max(1);
    }

    /// Creates a ring with `n` distinct random node identifiers (not yet
    /// stabilized — call [`SimNet::build_stable`] or run the maintenance
    /// protocol).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the hash-space size.
    pub fn with_random_nodes(space: HashSpace, n: usize, rng: &mut DetRng) -> Self {
        assert!(
            (n as u128) <= space.size(),
            "cannot place {n} nodes in a {space} hash space"
        );
        let mut net = SimNet::new(space);
        while net.nodes.len() < n {
            let id = ChordId::new(rng.next_u64(), space);
            net.add_node(id);
        }
        net
    }

    /// The ring's hash space.
    pub fn space(&self) -> HashSpace {
        self.space
    }

    /// Adds a solitary (unwired) node. Returns false if the identifier is
    /// already taken.
    pub fn add_node(&mut self, id: ChordId) -> bool {
        debug_assert_eq!(id.space(), self.space);
        if self.nodes.contains_key(&id.value()) {
            return false;
        }
        self.nodes.insert(id.value(), ChordNode::solitary(id));
        self.invalidate_succ_cache();
        true
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.values().filter(|n| n.is_alive()).count()
    }

    /// Identifiers of all alive nodes, in ring order.
    pub fn node_ids(&self) -> Vec<ChordId> {
        self.nodes
            .values()
            .filter(|n| n.is_alive())
            .map(|n| n.id())
            .collect()
    }

    /// Immutable access to a node's state.
    pub fn node(&self, id: ChordId) -> Option<&ChordNode> {
        self.nodes.get(&id.value())
    }

    /// True if `id` names an alive node.
    pub fn is_alive(&self, id: ChordId) -> bool {
        self.nodes.get(&id.value()).is_some_and(|n| n.is_alive())
    }

    /// A uniformly random alive node (for client entry points).
    ///
    /// # Panics
    ///
    /// Panics if the ring has no alive nodes.
    pub fn random_alive(&self, rng: &mut DetRng) -> ChordId {
        let mut cache = self.alive_cache.borrow_mut();
        let ids = cache.get_or_insert_with(|| self.node_ids());
        assert!(!ids.is_empty(), "ring has no alive nodes");
        ids[rng.uniform_index(ids.len())]
    }

    /// Ground truth: the alive node owning hash `h` (its ring successor),
    /// or `None` on an empty ring. O(log S) on the in-memory map; used for
    /// bootstrap and validation, not by the routed protocol.
    pub fn owner_of(&self, h: u64) -> Option<ChordId> {
        let h = h & self.space.mask();
        self.nodes
            .range(h..)
            .chain(self.nodes.range(..h))
            .find(|(_, n)| n.is_alive())
            .map(|(_, n)| n.id())
    }

    /// Ground truth: the alive node strictly preceding `h` on the ring.
    pub fn predecessor_of(&self, h: u64) -> Option<ChordId> {
        let h = h & self.space.mask();
        self.nodes
            .range(..h)
            .rev()
            .chain(self.nodes.range(h..).rev())
            .find(|(_, n)| n.is_alive())
            .map(|(_, n)| n.id())
    }

    /// Installs exact routing state on every alive node: perfect fingers,
    /// successor lists and predecessors. Equivalent to running the
    /// maintenance protocol to convergence, in O(S·M·log S) time.
    pub fn build_stable(&mut self) {
        let ids: Vec<ChordId> = self.node_ids();
        if ids.is_empty() {
            return;
        }
        let r = self.succ_list_len.min(ids.len());
        self.install_tables(&ids, r);
    }

    /// Owner of `h` among the sorted alive ids — binary search plus
    /// wrap-around. Identical to [`SimNet::owner_of`] whenever `ids`
    /// holds exactly the alive nodes in ring order (the stabilization
    /// paths' precondition), without the per-query tree walk over dead
    /// nodes' corpses.
    fn owner_in(ids: &[ChordId], h: u64) -> ChordId {
        let i = ids.partition_point(|id| id.value() < h);
        ids[if i == ids.len() { 0 } else { i }]
    }

    /// The ground-truth routing tables of the node at ring position
    /// `pos`: successor list of length `r` (`[self]` on a one-node
    /// ring), predecessor, and all `m` fingers. A pure function of the
    /// sorted alive-id slice — which is what lets
    /// [`SimNet::install_tables`] partition the computation over worker
    /// threads without any risk to determinism.
    fn tables_for(
        ids: &[ChordId],
        pos: usize,
        r: usize,
        m: usize,
    ) -> (Vec<ChordId>, Option<ChordId>, Vec<ChordId>) {
        let n = ids.len();
        let id = ids[pos];
        let succ_list: Vec<ChordId> = if n == 1 {
            vec![id]
        } else {
            (1..=r).map(|k| ids[(pos + k) % n]).collect()
        };
        let pred = (n > 1).then(|| ids[(pos + n - 1) % n]);
        let fingers = (0..m)
            .map(|k| Self::owner_in(ids, id.add_power_of_two(k as u32).value()))
            .collect();
        (succ_list, pred, fingers)
    }

    /// Computes every alive node's ground-truth tables — partitioned
    /// over `stabilize_workers` contiguous ring chunks when the ring is
    /// big enough to pay for the threads — then installs them in ring
    /// order. Bit-for-bit identical for every worker count: the chunks
    /// are disjoint, the computation is pure, and installation happens
    /// on one thread in one order.
    fn install_tables(&mut self, ids: &[ChordId], r: usize) {
        const PAR_STABILIZE_MIN: usize = 1024;
        let m = self.space.bits() as usize;
        let workers = self.stabilize_workers;
        let compute_range = |lo: usize, hi: usize| {
            (lo..hi)
                .map(|pos| Self::tables_for(ids, pos, r, m))
                .collect()
        };
        let all: Vec<(Vec<ChordId>, Option<ChordId>, Vec<ChordId>)> =
            if workers > 1 && ids.len() >= PAR_STABILIZE_MIN {
                let chunk = ids.len().div_ceil(workers);
                let mut out = Vec::with_capacity(ids.len());
                std::thread::scope(|scope| {
                    let compute = &compute_range;
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let lo = (w * chunk).min(ids.len());
                            let hi = ((w + 1) * chunk).min(ids.len());
                            scope.spawn(move || compute(lo, hi))
                        })
                        .collect();
                    for h in handles {
                        let part: Vec<_> = h.join().expect("stabilize worker panicked");
                        out.extend(part);
                    }
                });
                out
            } else {
                compute_range(0, ids.len())
            };
        for (pos, (succ_list, pred, fingers)) in all.into_iter().enumerate() {
            let node = self
                .nodes
                .get_mut(&ids[pos].value())
                .expect("id from node_ids");
            node.set_successor_list(succ_list);
            node.set_predecessor(pred);
            for (k, f) in fingers.into_iter().enumerate() {
                node.set_finger(k, f);
            }
        }
        self.invalidate_succ_cache();
    }

    /// Pure routed lookup: resolves the successor of `h` starting at
    /// `start` using only per-node state, counting hops. Does not touch
    /// statistics; see [`SimNet::find_successor`].
    ///
    /// # Panics
    ///
    /// Panics if `start` is not an alive node, or if routing degenerates
    /// into a cycle (only possible when maintenance has never run after
    /// severe membership changes).
    pub fn route(&self, start: ChordId, h: u64) -> LookupResult {
        self.route_visit(start, h, |_, _| ())
    }

    /// [`SimNet::route`], additionally returning the per-hop path as
    /// `(from, to)` pairs — one pair per inter-node message — so callers
    /// can charge each hop its own link cost (latency, loss) through a
    /// transport. `path.len()` always equals the returned hop count.
    pub fn route_with_path(
        &self,
        start: ChordId,
        h: u64,
    ) -> (LookupResult, Vec<(ChordId, ChordId)>) {
        let mut path = Vec::new();
        let result = self.route_visit(start, h, |from, to| path.push((from, to)));
        debug_assert_eq!(path.len(), result.hops as usize);
        (result, path)
    }

    /// The routing engine: `visit(from, to)` fires once per inter-node
    /// hop, in order. Monomorphized with a no-op visitor this is exactly
    /// the old allocation-free `route`.
    fn route_visit<F: FnMut(ChordId, ChordId)>(
        &self,
        start: ChordId,
        h: u64,
        mut visit: F,
    ) -> LookupResult {
        assert!(self.is_alive(start), "lookup must start at an alive node");
        let target = ChordId::new(h, self.space);
        let mut current = start;
        let mut hops = 0u32;
        let hop_limit = 4 * self.space.bits() + self.nodes.len() as u32 + 8;
        loop {
            if target.value() == current.value() {
                return LookupResult {
                    owner: current,
                    hops,
                };
            }
            let node = &self.nodes[&current.value()];
            let succ = self.first_alive_successor(node);
            if succ == current {
                // Solitary (or fully isolated) node owns everything.
                return LookupResult {
                    owner: current,
                    hops,
                };
            }
            if target.in_half_open_interval(current, succ) {
                visit(current, succ);
                return LookupResult {
                    owner: succ,
                    hops: hops + 1,
                };
            }
            let next = node.closest_preceding(target, |c| self.is_alive(c));
            let next = if next == current { succ } else { next };
            visit(current, next);
            current = next;
            hops += 1;
            assert!(
                hops <= hop_limit,
                "routing cycle: {start:?} -> {h:#x} exceeded {hop_limit} hops"
            );
        }
    }

    fn first_alive_successor(&self, node: &ChordNode) -> ChordId {
        if let Some(&cached) = self.succ_cache.borrow().get(&node.id().value()) {
            return cached;
        }
        let succ = node
            .successor_list()
            .iter()
            .copied()
            .find(|&s| self.is_alive(s))
            .unwrap_or_else(|| node.id());
        self.succ_cache.borrow_mut().insert(node.id().value(), succ);
        succ
    }

    /// The first `r` distinct *alive* ring successors of `id`, in
    /// successor-list order (nearest first), excluding `id` itself. This
    /// is the node's own routing state — the replica set CLASH's
    /// successor-list replication places key-group state on — so it can
    /// lag ground truth between maintenance rounds, exactly as a real
    /// deployment's would. Returns fewer than `r` entries on small rings
    /// and an empty vector for unknown nodes.
    pub fn alive_successors(&self, id: ChordId, r: usize) -> Vec<ChordId> {
        if r == 0 {
            return Vec::new();
        }
        let Some(node) = self.nodes.get(&id.value()) else {
            return Vec::new();
        };
        let mut out: Vec<ChordId> = Vec::with_capacity(r);
        for &s in node.successor_list() {
            if s != id && self.is_alive(s) && !out.contains(&s) {
                out.push(s);
                if out.len() == r {
                    break;
                }
            }
        }
        out
    }

    /// Routed lookup with statistics recording — the `Map()` operation
    /// CLASH builds on (§4 of the paper).
    pub fn find_successor(&mut self, start: ChordId, h: u64) -> LookupResult {
        let result = self.route(start, h);
        self.record_lookup(result);
        result
    }

    /// [`SimNet::find_successor`] returning the per-hop path (see
    /// [`SimNet::route_with_path`]). Statistics are recorded identically.
    pub fn find_successor_path(
        &mut self,
        start: ChordId,
        h: u64,
    ) -> (LookupResult, Vec<(ChordId, ChordId)>) {
        let (result, path) = self.route_with_path(start, h);
        self.record_lookup(result);
        (result, path)
    }

    fn record_lookup(&mut self, result: LookupResult) {
        self.record_routed_lookup(result.hops);
    }

    /// Records the statistics of one lookup that was already routed
    /// elsewhere — the sharded batch path resolves probes against a
    /// [`RouteSnapshot`] on worker threads and replays the accounting
    /// here in plan order, so [`SimNet::stats`] stays bit-for-bit what
    /// the sequential [`SimNet::find_successor_path`] calls would have
    /// produced.
    pub fn record_routed_lookup(&mut self, hops: u32) {
        self.stats.lookups += 1;
        self.stats.total_hops += u64::from(hops);
        self.stats.max_hops = self.stats.max_hops.max(hops);
    }

    /// Lookup statistics accumulated by [`SimNet::find_successor`].
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Clears lookup statistics.
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Joins a new node through `bootstrap`: routes a lookup for its own
    /// identifier to find its successor, then seeds the new node's routing
    /// state *from that successor* — its successor list is inherited and
    /// every finger is resolved by routing from the successor — so that
    /// lookups starting at the freshly joined node are O(log S)
    /// immediately instead of successor-walking until the first
    /// [`SimNet::fix_fingers_round`]. Fingers covering the arc the new
    /// node takes over still name the old owner until stabilization runs,
    /// which is exactly Chord's transient.
    ///
    /// Returns the total inter-node messages spent (the join lookup plus
    /// the finger-seeding lookups), or `None` if the identifier is already
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics if `bootstrap` is not alive.
    pub fn join(&mut self, new_id: ChordId, bootstrap: ChordId) -> Option<u32> {
        assert!(self.is_alive(bootstrap), "bootstrap node must be alive");
        if !self.add_node(new_id) {
            return None;
        }
        let lookup = self.route(bootstrap, new_id.value());
        let succ = lookup.owner;
        let mut messages = lookup.hops;
        let m = self.space.bits() as usize;
        let mut fingers = Vec::with_capacity(m);
        for k in 0..m {
            let target = new_id.add_power_of_two(k as u32);
            let r = self.route(succ, target.value());
            fingers.push(r.owner);
            messages = messages.saturating_add(r.hops);
        }
        let mut succ_list = vec![succ];
        succ_list.extend(
            self.nodes[&succ.value()]
                .successor_list()
                .iter()
                .copied()
                .filter(|&s| s != new_id && s != succ && self.is_alive_raw(s)),
        );
        succ_list.truncate(self.succ_list_len);
        let node = self
            .nodes
            .get_mut(&new_id.value())
            .expect("node just added");
        node.set_successor_list(succ_list);
        node.set_predecessor(None);
        for (k, f) in fingers.into_iter().enumerate() {
            node.set_finger(k, f);
        }
        self.invalidate_succ_cache();
        Some(messages)
    }

    /// Marks a node failed (crash model: no goodbye messages).
    ///
    /// Returns false if the node was missing or already dead.
    pub fn fail(&mut self, id: ChordId) -> bool {
        match self.nodes.get_mut(&id.value()) {
            Some(n) if n.is_alive() => {
                n.mark_failed();
                self.invalidate_succ_cache();
                true
            }
            _ => false,
        }
    }

    /// Removes failed nodes' state entirely (garbage collection).
    pub fn remove_failed(&mut self) {
        self.nodes.retain(|_, n| n.is_alive());
        self.invalidate_succ_cache();
    }

    /// Removes a node's state entirely — the graceful-departure model: the
    /// node announced, handed its keys off, and left, so no corpse remains
    /// (contrast with [`SimNet::fail`], which leaves stale state behind the
    /// way a crashed host would). Survivors' pointers to it are repaired by
    /// the maintenance protocol. Returns false if the id is unknown.
    pub fn remove_node(&mut self, id: ChordId) -> bool {
        let removed = self.nodes.remove(&id.value()).is_some();
        if removed {
            self.invalidate_succ_cache();
        }
        removed
    }

    /// One round of Chord stabilization over every alive node (in ring
    /// order): repair successor pointers, notify successors, refresh
    /// successor lists. Returns true if any state changed.
    pub fn stabilize_round(&mut self) -> bool {
        let ids = self.node_ids();
        let mut changed = false;
        for id in ids {
            changed |= self.stabilize_one(id);
        }
        changed
    }

    fn stabilize_one(&mut self, id: ChordId) -> bool {
        if !self.is_alive(id) {
            return false;
        }
        let mut changed = false;
        let node = &self.nodes[&id.value()];
        let mut succ = self.first_alive_successor(node);
        if succ == id && self.alive_count() > 1 {
            // Lost all successors: re-discover via ground truth (models
            // out-of-band rejoin, needed only after catastrophic failures).
            succ = self
                .owner_of(id.value().wrapping_add(1) & self.space.mask())
                .expect("ring has alive nodes");
        }
        // successor's predecessor may be a closer successor for us.
        if succ != id {
            if let Some(x) = self.nodes[&succ.value()].predecessor() {
                if self.is_alive(x) && x.in_open_interval(id, succ) {
                    succ = x;
                }
            }
        }
        // Refresh our successor list from succ's list.
        let mut list = vec![succ];
        if succ != id {
            let succ_node = &self.nodes[&succ.value()];
            list.extend(
                succ_node
                    .successor_list()
                    .iter()
                    .copied()
                    .filter(|&s| self.is_alive(s) && s != id),
            );
        }
        list.dedup();
        list.truncate(self.succ_list_len);
        let list_changed = {
            let node = self.nodes.get_mut(&id.value()).expect("alive node");
            if node.successor_list() != list.as_slice() {
                node.set_successor_list(list);
                true
            } else {
                false
            }
        };
        if list_changed {
            self.invalidate_succ_cache();
            changed = true;
        }
        // Drop a dead predecessor.
        if let Some(p) = self.nodes[&id.value()].predecessor() {
            if !self.nodes.get(&p.value()).is_some_and(|n| n.is_alive()) {
                self.nodes
                    .get_mut(&id.value())
                    .expect("alive node")
                    .set_predecessor(None);
                changed = true;
            }
        }
        // Notify: tell succ about us.
        if succ != id {
            let current_pred = self.nodes[&succ.value()].predecessor();
            let adopt = match current_pred {
                None => true,
                Some(p) => !self.is_alive_raw(p) || id.in_open_interval(p, succ),
            };
            if adopt && current_pred != Some(id) {
                self.nodes
                    .get_mut(&succ.value())
                    .expect("alive succ")
                    .set_predecessor(Some(id));
                changed = true;
            }
        }
        changed
    }

    fn is_alive_raw(&self, id: ChordId) -> bool {
        self.nodes.get(&id.value()).is_some_and(|n| n.is_alive())
    }

    /// One round of finger repair on every alive node: recompute each
    /// finger by routing from the node itself. Returns true if any finger
    /// changed.
    pub fn fix_fingers_round(&mut self) -> bool {
        let ids = self.node_ids();
        let m = self.space.bits() as usize;
        let mut changed = false;
        for id in ids {
            for k in 0..m {
                let target = id.add_power_of_two(k as u32);
                let owner = self.route(id, target.value()).owner;
                let node = self.nodes.get_mut(&id.value()).expect("alive node");
                if node.fingers()[k] != owner {
                    node.set_finger(k, owner);
                    changed = true;
                }
            }
        }
        changed
    }

    /// Runs stabilization and finger repair until quiescent or the round
    /// budget is exhausted. Returns the number of rounds used.
    pub fn stabilize_until_converged(&mut self, max_rounds: usize) -> usize {
        for round in 1..=max_rounds {
            let a = self.stabilize_round();
            let b = self.fix_fingers_round();
            if !a && !b {
                return round;
            }
        }
        max_rounds
    }

    /// Installs the maintenance protocol's convergence fixpoint directly,
    /// in O(S·M) instead of O(rounds·S·M·log S): every alive node gets
    /// the successor list, predecessor and fingers that iterating
    /// [`SimNet::stabilize_round`] + [`SimNet::fix_fingers_round`] to
    /// quiescence produces (pinned state-for-state by the
    /// `stabilize_direct_*` differential tests). Dead nodes keep their
    /// stale state untouched, exactly as the round-based protocol leaves
    /// them. Returns the round count to report (always 1 — one logical
    /// maintenance round).
    ///
    /// The fixpoint differs from [`SimNet::build_stable`] only on rings
    /// smaller than the successor-list length: stabilization's list
    /// refresh excludes the node itself, so lists hold
    /// `min(r, S − 1)` entries (`[self]` on a one-node ring), while
    /// `build_stable` pads with `self` — which is why the membership path
    /// must use this method, not `build_stable`.
    pub fn stabilize_direct(&mut self) -> usize {
        let ids = self.node_ids();
        if ids.is_empty() {
            return 1;
        }
        let r = self.succ_list_len.min(ids.len() - 1);
        self.install_tables(&ids, r);
        1
    }

    /// Freezes the current routing state into a `Sync`
    /// [`RouteSnapshot`] whose `route_with_path` is bit-for-bit
    /// [`SimNet::route_with_path`] — for routing batched lookups on
    /// worker threads between membership events.
    pub fn snapshot(&self) -> RouteSnapshot {
        let m = self.space.bits() as usize;
        let hop_limit = 4 * self.space.bits() + self.nodes.len() as u32 + 8;
        let alive: Vec<&ChordNode> = self.nodes.values().filter(|n| n.is_alive()).collect();
        let mut values = Vec::with_capacity(alive.len());
        let mut first_succ = Vec::with_capacity(alive.len());
        let mut fingers = Vec::with_capacity(alive.len() * m);
        let mut succs = Vec::new();
        let mut succ_offsets = Vec::with_capacity(alive.len() + 1);
        succ_offsets.push(0u32);
        for node in alive {
            values.push(node.id().value());
            first_succ.push(self.first_alive_successor(node).value());
            fingers.extend(
                node.fingers()
                    .iter()
                    .map(|&f| (f.value(), self.is_alive_raw(f))),
            );
            succs.extend(
                node.successor_list()
                    .iter()
                    .map(|&s| (s.value(), self.is_alive_raw(s))),
            );
            succ_offsets.push(succs.len() as u32);
        }
        RouteSnapshot {
            space: self.space,
            hop_limit,
            values,
            first_succ,
            fingers,
            succs,
            succ_offsets,
        }
    }

    /// True if every alive node's successor, predecessor and fingers match
    /// ground truth — the post-condition of successful maintenance.
    pub fn is_fully_stabilized(&self) -> bool {
        let ids = self.node_ids();
        if ids.is_empty() {
            return true;
        }
        for (pos, &id) in ids.iter().enumerate() {
            let node = &self.nodes[&id.value()];
            let true_succ = ids[(pos + 1) % ids.len()];
            if ids.len() > 1 && self.first_alive_successor(node) != true_succ {
                return false;
            }
            let true_pred = ids[(pos + ids.len() - 1) % ids.len()];
            if ids.len() > 1 && node.predecessor() != Some(true_pred) {
                return false;
            }
            for k in 0..self.space.bits() as usize {
                let target = id.add_power_of_two(k as u32);
                let owner = self.owner_of(target.value()).expect("non-empty");
                if node.fingers()[k] != owner {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("space", &self.space)
            .field("nodes", &self.nodes.len())
            .field("alive", &self.alive_count())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> HashSpace {
        HashSpace::new(16).unwrap()
    }

    fn stable_net(n: usize, seed: u64) -> SimNet {
        let mut rng = DetRng::new(seed);
        let mut net = SimNet::with_random_nodes(space(), n, &mut rng);
        net.build_stable();
        net
    }

    #[test]
    fn owner_of_matches_sorted_order() {
        let mut net = SimNet::new(space());
        for v in [100u64, 200, 300] {
            net.add_node(ChordId::new(v, space()));
        }
        assert_eq!(net.owner_of(150).unwrap().value(), 200);
        assert_eq!(net.owner_of(200).unwrap().value(), 200);
        assert_eq!(net.owner_of(301).unwrap().value(), 100); // wraps
        assert_eq!(net.owner_of(50).unwrap().value(), 100);
    }

    #[test]
    fn predecessor_of_matches_sorted_order() {
        let mut net = SimNet::new(space());
        for v in [100u64, 200, 300] {
            net.add_node(ChordId::new(v, space()));
        }
        assert_eq!(net.predecessor_of(150).unwrap().value(), 100);
        assert_eq!(net.predecessor_of(100).unwrap().value(), 300); // wraps
    }

    #[test]
    fn empty_ring_owner_is_none() {
        let net = SimNet::new(space());
        assert_eq!(net.owner_of(1), None);
    }

    #[test]
    fn lookups_agree_with_ground_truth() {
        let mut net = stable_net(100, 1);
        let starts = net.node_ids();
        let mut rng = DetRng::new(2);
        for _ in 0..500 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            let result = net.find_successor(start, h);
            assert_eq!(Some(result.owner), net.owner_of(h), "h={h:#x}");
        }
    }

    #[test]
    fn lookup_hops_are_logarithmic() {
        let mut net = stable_net(256, 3);
        let starts = net.node_ids();
        let mut rng = DetRng::new(4);
        for _ in 0..2000 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            net.find_successor(start, h);
        }
        let stats = net.stats();
        // Chord: mean ~ (1/2)·log2(S) = 4; max ~ log2(S) + slack.
        assert!(stats.mean_hops() < 6.0, "mean hops {}", stats.mean_hops());
        assert!(stats.max_hops <= 16, "max hops {}", stats.max_hops);
    }

    #[test]
    fn lookup_scaling_with_ring_size() {
        // Mean hops must grow roughly logarithmically, not linearly.
        let mut means = Vec::new();
        for &n in &[32usize, 256] {
            let mut net = stable_net(n, 5);
            let starts = net.node_ids();
            let mut rng = DetRng::new(6);
            for _ in 0..1000 {
                let h = rng.next_u64() & space().mask();
                let start = starts[rng.uniform_index(starts.len())];
                net.find_successor(start, h);
            }
            means.push(net.stats().mean_hops());
        }
        // 8× more nodes → ~3 extra hops (log2 8), definitely < 3× increase.
        assert!(
            means[1] < means[0] * 3.0,
            "hops scaled super-logarithmically: {means:?}"
        );
        assert!(means[1] > means[0], "more nodes should cost more hops");
    }

    #[test]
    fn single_node_owns_everything() {
        let mut net = SimNet::new(space());
        let id = ChordId::new(42, space());
        net.add_node(id);
        net.build_stable();
        let r = net.find_successor(id, 9999);
        assert_eq!(r.owner, id);
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn lookup_of_own_id_is_free() {
        let mut net = stable_net(50, 7);
        let id = net.node_ids()[10];
        let r = net.find_successor(id, id.value());
        assert_eq!(r.owner, id);
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn duplicate_add_rejected() {
        let mut net = SimNet::new(space());
        let id = ChordId::new(1, space());
        assert!(net.add_node(id));
        assert!(!net.add_node(id));
    }

    #[test]
    fn join_then_stabilize_converges() {
        let mut net = stable_net(20, 8);
        let bootstrap = net.node_ids()[0];
        let mut rng = DetRng::new(9);
        for _ in 0..10 {
            let id = ChordId::new(rng.next_u64(), space());
            net.join(id, bootstrap);
        }
        let rounds = net.stabilize_until_converged(64);
        assert!(rounds < 64, "did not converge");
        assert!(net.is_fully_stabilized());
        assert_eq!(net.alive_count(), 30);
    }

    #[test]
    fn joins_route_correctly_after_convergence() {
        let mut net = stable_net(20, 10);
        let bootstrap = net.node_ids()[0];
        net.join(ChordId::new(0xBEEF, space()), bootstrap);
        net.stabilize_until_converged(64);
        let start = net.node_ids()[3];
        let r = net.find_successor(start, 0xBEEF);
        assert_eq!(r.owner.value(), 0xBEEF);
    }

    #[test]
    fn failures_are_routed_around() {
        let mut net = stable_net(64, 11);
        let ids = net.node_ids();
        // Fail 10 spread-out nodes.
        for &id in ids.iter().step_by(6).take(10) {
            net.fail(id);
        }
        net.stabilize_until_converged(64);
        assert!(net.is_fully_stabilized());
        let starts = net.node_ids();
        let mut rng = DetRng::new(12);
        for _ in 0..300 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            let r = net.find_successor(start, h);
            assert_eq!(Some(r.owner), net.owner_of(h));
            assert!(net.is_alive(r.owner));
        }
    }

    #[test]
    fn routing_survives_failures_even_before_stabilization() {
        // Successor lists give immediate fault tolerance: kill nodes and
        // look up *without* running maintenance; owners must still be
        // alive nodes (possibly not the exact ground-truth successor for
        // keys owned by the dead node's range — but never a dead one).
        let mut net = stable_net(64, 13);
        let ids = net.node_ids();
        for &id in ids.iter().take(5) {
            net.fail(id);
        }
        let starts = net.node_ids();
        let mut rng = DetRng::new(14);
        for _ in 0..200 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            let r = net.find_successor(start, h);
            assert!(net.is_alive(r.owner), "routed to a dead node");
        }
    }

    #[test]
    fn mass_failure_recovery() {
        let mut net = stable_net(40, 15);
        let ids = net.node_ids();
        for &id in ids.iter().take(20) {
            net.fail(id);
        }
        net.stabilize_until_converged(128);
        assert!(net.is_fully_stabilized());
        assert_eq!(net.alive_count(), 20);
    }

    #[test]
    fn join_seeds_fingers_from_successor() {
        // A freshly joined node must route at full Chord efficiency
        // *before* any fix_fingers_round: its fingers were seeded from its
        // successor at join time, so no lookup degenerates into a
        // successor walk around the 256-node ring.
        let mut net = stable_net(256, 20);
        let bootstrap = net.node_ids()[0];
        let new_id = ChordId::new(0xF00D, space());
        let messages = net.join(new_id, bootstrap).expect("id free");
        assert!(messages > 0, "join lookup and finger seeding cost messages");
        let fingers = net.node(new_id).unwrap().fingers();
        assert!(
            fingers.iter().any(|&f| f != new_id),
            "fingers must be seeded, not left pointing at self"
        );
        let mut rng = DetRng::new(21);
        let mut max_hops = 0;
        for _ in 0..300 {
            let h = rng.next_u64() & space().mask();
            let r = net.route(new_id, h);
            max_hops = max_hops.max(r.hops);
        }
        // Chord bound: ~log2(257) + slack. A successor walk would need
        // O(256) hops for far targets.
        assert!(max_hops <= 16, "post-join max hops {max_hops}");
    }

    #[test]
    fn join_rejects_taken_id() {
        let mut net = stable_net(8, 22);
        let existing = net.node_ids()[3];
        let bootstrap = net.node_ids()[0];
        assert_eq!(net.join(existing, bootstrap), None);
    }

    #[test]
    fn remove_node_departs_cleanly() {
        let mut net = stable_net(30, 23);
        let leaver = net.node_ids()[7];
        assert!(net.remove_node(leaver));
        assert!(!net.remove_node(leaver), "already gone");
        assert!(net.node(leaver).is_none());
        net.stabilize_until_converged(64);
        assert!(net.is_fully_stabilized());
        assert_eq!(net.alive_count(), 29);
        // Lookups route around the departed node.
        let starts = net.node_ids();
        let mut rng = DetRng::new(24);
        for _ in 0..200 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            let r = net.find_successor(start, h);
            assert_eq!(Some(r.owner), net.owner_of(h));
            assert_ne!(r.owner, leaver);
        }
    }

    #[test]
    fn alive_successors_follow_ring_order_and_skip_corpses() {
        let mut net = stable_net(12, 29);
        let ids = net.node_ids();
        let id = ids[4];
        let succs = net.alive_successors(id, 3);
        assert_eq!(succs, vec![ids[5], ids[6], ids[7]]);
        // Kill the immediate successor: it drops out, the list extends.
        net.fail(ids[5]);
        let succs = net.alive_successors(id, 3);
        assert_eq!(succs, vec![ids[6], ids[7], ids[8]]);
        // r = 0 asks for nothing and gets nothing.
        assert!(net.alive_successors(id, 0).is_empty());
        // Small rings cap the list; unknown nodes get nothing.
        let mut tiny = stable_net(2, 30);
        let a = tiny.node_ids()[0];
        assert_eq!(tiny.alive_successors(a, 4).len(), 1);
        tiny.fail(tiny.node_ids()[1]);
        assert!(tiny.alive_successors(a, 4).is_empty());
    }

    #[test]
    fn remove_failed_garbage_collects() {
        let mut net = stable_net(10, 16);
        let victim = net.node_ids()[0];
        net.fail(victim);
        net.remove_failed();
        assert_eq!(net.alive_count(), 9);
        assert!(net.node(victim).is_none());
    }

    #[test]
    fn build_stable_matches_maintenance_protocol() {
        // Starting from solitary nodes, pure maintenance must reach the
        // same state build_stable computes directly.
        let mut rng = DetRng::new(17);
        let net = SimNet::with_random_nodes(space(), 12, &mut rng);
        let ids = net.node_ids();
        // Build a second ring by joining everyone through ids[0].
        let mut net2 = SimNet::new(space());
        net2.add_node(ids[0]);
        for &id in &ids[1..] {
            net2.join(id, ids[0]);
            net2.stabilize_until_converged(32);
        }
        assert!(net2.is_fully_stabilized());
    }

    #[test]
    fn route_with_path_matches_route() {
        let net = stable_net(128, 25);
        let starts = net.node_ids();
        let mut rng = DetRng::new(26);
        for _ in 0..500 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            let plain = net.route(start, h);
            let (routed, path) = net.route_with_path(start, h);
            assert_eq!(plain, routed);
            assert_eq!(path.len(), routed.hops as usize);
            // The path is a connected chain from start to the owner.
            let mut at = start;
            for &(from, to) in &path {
                assert_eq!(from, at, "hops must chain");
                assert!(net.is_alive(to), "hops only touch alive nodes");
                at = to;
            }
            assert_eq!(at, routed.owner, "path ends at the owner");
        }
    }

    #[test]
    fn find_successor_path_records_stats() {
        let mut net = stable_net(32, 27);
        let start = net.node_ids()[0];
        let (r, path) = net.find_successor_path(start, 0x1234);
        assert_eq!(net.stats().lookups, 1);
        assert_eq!(net.stats().total_hops, u64::from(r.hops));
        assert_eq!(path.len(), r.hops as usize);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut net = stable_net(32, 18);
        let start = net.node_ids()[0];
        net.find_successor(start, 1);
        net.find_successor(start, 2);
        assert_eq!(net.stats().lookups, 2);
        net.reset_stats();
        assert_eq!(net.stats().lookups, 0);
        assert_eq!(net.stats().mean_hops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alive node")]
    fn lookup_from_dead_node_panics() {
        let mut net = stable_net(5, 19);
        let id = net.node_ids()[0];
        net.fail(id);
        net.route(id, 1);
    }

    /// Asserts both nets hold identical per-node routing state (fingers,
    /// successor lists, predecessors) for every node, alive or dead.
    fn assert_same_routing_state(a: &SimNet, b: &SimNet, label: &str) {
        let ids_a = a.node_ids();
        assert_eq!(ids_a, b.node_ids(), "{label}: membership diverged");
        for id in ids_a {
            let na = a.node(id).unwrap();
            let nb = b.node(id).unwrap();
            assert_eq!(na.fingers(), nb.fingers(), "{label}: fingers of {id}");
            assert_eq!(
                na.successor_list(),
                nb.successor_list(),
                "{label}: successor list of {id}"
            );
            assert_eq!(
                na.predecessor(),
                nb.predecessor(),
                "{label}: predecessor of {id}"
            );
        }
    }

    /// `stabilize_direct` must land on exactly the state the round-based
    /// maintenance protocol converges to — across ring sizes, fresh
    /// joins, graceful departures and unrepaired failures.
    #[test]
    fn stabilize_direct_matches_converged_protocol() {
        for (n, seed) in [(1usize, 40u64), (2, 41), (3, 42), (9, 43), (64, 44)] {
            let mut rng = DetRng::new(seed);
            let proto = SimNet::with_random_nodes(space(), n, &mut rng);
            let mut direct = SimNet::new(space());
            for id in proto.node_ids() {
                direct.add_node(id);
            }
            let mut proto = proto;
            // Perturb both identically: joins, a departure, failures.
            let bootstrap_pool = proto.node_ids();
            let bootstrap = bootstrap_pool[0];
            proto.build_stable();
            direct.build_stable();
            for j in 0..3u64 {
                let id = ChordId::new(rng.next_u64().wrapping_add(j), space());
                proto.join(id, bootstrap);
                direct.join(id, bootstrap);
            }
            if n > 4 {
                let leaver = proto.node_ids()[2];
                proto.remove_node(leaver);
                direct.remove_node(leaver);
                let victim = proto.node_ids()[4];
                proto.fail(victim);
                direct.fail(victim);
            }
            let rounds = proto.stabilize_until_converged(256);
            assert!(rounds < 256, "protocol did not converge");
            direct.stabilize_direct();
            assert_same_routing_state(&proto, &direct, &format!("n={n}"));
            assert!(direct.is_fully_stabilized());
        }
    }

    #[test]
    fn stabilize_direct_matches_protocol_after_mass_failure() {
        let mut rng = DetRng::new(55);
        let mut proto = SimNet::with_random_nodes(space(), 40, &mut rng);
        proto.build_stable();
        let mut direct = SimNet::new(space());
        for id in proto.node_ids() {
            direct.add_node(id);
        }
        direct.build_stable();
        let ids = proto.node_ids();
        for &id in ids.iter().take(20) {
            proto.fail(id);
            direct.fail(id);
        }
        proto.stabilize_until_converged(256);
        direct.stabilize_direct();
        assert_same_routing_state(&proto, &direct, "mass failure");
        // Dead nodes keep stale state in both worlds.
        for &id in ids.iter().take(20) {
            assert!(proto.node(id).is_some() && direct.node(id).is_some());
        }
    }

    /// The partitioned stabilization paths are a pure execution choice:
    /// every worker count must install bit-identical routing state, on
    /// rings both above and below the parallel threshold, with corpses
    /// present.
    #[test]
    fn partitioned_stabilize_matches_sequential() {
        for workers in [2usize, 3, 8] {
            let mut seq = stable_net(1500, 77);
            let mut par = stable_net(1500, 77);
            par.set_stabilize_workers(workers);
            // Exercise both entry points: a rebuild from scratch and a
            // post-membership stabilization with failures behind.
            par.build_stable();
            seq.build_stable();
            let ids = seq.node_ids();
            for &victim in ids.iter().step_by(97).take(5) {
                seq.fail(victim);
                par.fail(victim);
            }
            let joiner = ChordId::new(0x1234_5678, space());
            seq.join(joiner, ids[1]);
            par.join(joiner, ids[1]);
            seq.stabilize_direct();
            par.stabilize_direct();
            assert_same_routing_state(&seq, &par, &format!("workers={workers}"));
        }
    }

    #[test]
    fn stabilize_direct_reports_one_round_and_routes_correctly() {
        let mut net = stable_net(30, 60);
        let bootstrap = net.node_ids()[0];
        net.join(ChordId::new(0xABCD, space()), bootstrap);
        assert_eq!(net.stabilize_direct(), 1);
        assert!(net.is_fully_stabilized());
        let starts = net.node_ids();
        let mut rng = DetRng::new(61);
        for _ in 0..200 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            assert_eq!(Some(net.route(start, h).owner), net.owner_of(h));
        }
    }
}
