//! Ring identifiers and wrapping interval arithmetic.

use std::fmt;

use clash_keyspace::hash::HashSpace;

/// An identifier on the Chord ring: a point in an M-bit circular space.
///
/// # Example
///
/// ```
/// use clash_chord::id::ChordId;
/// use clash_keyspace::hash::HashSpace;
///
/// let space = HashSpace::new(8)?;
/// let a = ChordId::new(250, space);
/// let b = ChordId::new(5, space);
/// // Distance wraps around the ring.
/// assert_eq!(a.distance_to(b), 11);
/// assert_eq!(a.add_power_of_two(3).value(), 2); // 250 + 8 mod 256
/// # Ok::<(), clash_keyspace::error::KeyError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChordId {
    value: u64,
    space: HashSpace,
}

impl ChordId {
    /// Creates an identifier, masking `value` into the space.
    pub fn new(value: u64, space: HashSpace) -> Self {
        ChordId {
            value: value & space.mask(),
            space,
        }
    }

    /// The numeric position on the ring.
    pub const fn value(self) -> u64 {
        self.value
    }

    /// The ring's hash space.
    pub const fn space(self) -> HashSpace {
        self.space
    }

    /// Clockwise distance from `self` to `other` (0 when equal).
    pub fn distance_to(self, other: ChordId) -> u64 {
        debug_assert_eq!(self.space, other.space);
        other.value.wrapping_sub(self.value) & self.space.mask()
    }

    /// `self + 2^k` on the ring — the start of the k-th finger interval.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not less than the space's bit count.
    pub fn add_power_of_two(self, k: u32) -> ChordId {
        assert!(k < self.space.bits(), "finger index {k} out of range");
        ChordId::new(self.value.wrapping_add(1u64 << k), self.space)
    }

    /// True if `self` lies in the open interval `(a, b)` on the ring.
    ///
    /// When `a == b` the interval is the whole ring excluding `a` (the
    /// standard Chord convention for a one-node ring).
    pub fn in_open_interval(self, a: ChordId, b: ChordId) -> bool {
        debug_assert_eq!(self.space, a.space);
        debug_assert_eq!(self.space, b.space);
        if a.value == b.value {
            return self.value != a.value;
        }
        // Map everything to distance from a: (a, b) becomes (0, d(a,b)).
        let d_end = a.distance_to(b);
        let d_self = a.distance_to(self);
        d_self > 0 && d_self < d_end
    }

    /// True if `self` lies in the half-open interval `(a, b]` on the ring
    /// (the successor-ownership test).
    ///
    /// When `a == b` the interval is the whole ring (everything is owned).
    pub fn in_half_open_interval(self, a: ChordId, b: ChordId) -> bool {
        debug_assert_eq!(self.space, a.space);
        debug_assert_eq!(self.space, b.space);
        if a.value == b.value {
            return true;
        }
        let d_end = a.distance_to(b);
        let d_self = a.distance_to(self);
        d_self > 0 && d_self <= d_end
    }
}

impl fmt::Display for ChordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:0width$x}",
            self.value,
            width = (self.space.bits() as usize).div_ceil(4)
        )
    }
}

impl fmt::Debug for ChordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChordId({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> HashSpace {
        HashSpace::new(8).unwrap()
    }

    fn id(v: u64) -> ChordId {
        ChordId::new(v, sp())
    }

    #[test]
    fn construction_masks_value() {
        assert_eq!(ChordId::new(300, sp()).value(), 300 & 0xFF);
    }

    #[test]
    fn distance_wraps() {
        assert_eq!(id(10).distance_to(id(20)), 10);
        assert_eq!(id(250).distance_to(id(5)), 11);
        assert_eq!(id(7).distance_to(id(7)), 0);
    }

    #[test]
    fn add_power_of_two_wraps() {
        assert_eq!(id(250).add_power_of_two(3).value(), 2);
        assert_eq!(id(0).add_power_of_two(7).value(), 128);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_power_of_two_bounds() {
        id(0).add_power_of_two(8);
    }

    #[test]
    fn open_interval_no_wrap() {
        assert!(id(5).in_open_interval(id(1), id(10)));
        assert!(!id(1).in_open_interval(id(1), id(10)));
        assert!(!id(10).in_open_interval(id(1), id(10)));
        assert!(!id(11).in_open_interval(id(1), id(10)));
    }

    #[test]
    fn open_interval_wrapping() {
        assert!(id(254).in_open_interval(id(250), id(5)));
        assert!(id(2).in_open_interval(id(250), id(5)));
        assert!(!id(5).in_open_interval(id(250), id(5)));
        assert!(!id(100).in_open_interval(id(250), id(5)));
    }

    #[test]
    fn open_interval_degenerate_is_ring_minus_point() {
        assert!(id(3).in_open_interval(id(7), id(7)));
        assert!(!id(7).in_open_interval(id(7), id(7)));
    }

    #[test]
    fn half_open_interval_includes_end() {
        assert!(id(10).in_half_open_interval(id(1), id(10)));
        assert!(!id(1).in_half_open_interval(id(1), id(10)));
        assert!(id(5).in_half_open_interval(id(250), id(5)));
        assert!(!id(250).in_half_open_interval(id(250), id(5)));
    }

    #[test]
    fn half_open_degenerate_is_whole_ring() {
        assert!(id(3).in_half_open_interval(id(7), id(7)));
        assert!(id(7).in_half_open_interval(id(7), id(7)));
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(id(5).to_string(), "05");
        let wide = ChordId::new(0xABCDEF, HashSpace::new(24).unwrap());
        assert_eq!(wide.to_string(), "abcdef");
    }
}
