//! An immutable, thread-shareable snapshot of the ring's routing state.
//!
//! The sharded simulation path routes batched locate probes on worker
//! threads. `SimNet` itself cannot cross threads (it memoizes through
//! `RefCell` caches), so [`crate::net::SimNet::snapshot`] flattens every
//! alive node's routing state — first alive successor, finger table,
//! successor list, each entry pre-resolved to "usable" (present *and*
//! alive) — into this `Sync` structure. [`RouteSnapshot::route_with_path`]
//! then replays the exact `route_visit` algorithm over the flat arrays:
//! same hop sequence, same owner, same path, same hop-limit panic, pinned
//! by the differential tests below. Between membership events the routing
//! state is static, so one snapshot serves every probe of a batch.

use clash_keyspace::hash::HashSpace;

use crate::id::ChordId;
use crate::net::LookupResult;

/// A frozen copy of every alive node's routing state, indexed by ring
/// position. Safe to share across threads (`&self` routing only).
#[derive(Debug, Clone)]
pub struct RouteSnapshot {
    pub(crate) space: HashSpace,
    /// `4 * bits + total node count (incl. corpses) + 8`, mirroring
    /// `route_visit`'s cycle guard exactly.
    pub(crate) hop_limit: u32,
    /// Alive node values in ring order; binary-searched to map a value to
    /// its row in the arrays below.
    pub(crate) values: Vec<u64>,
    /// Per node: first *alive* entry of its successor list (itself when
    /// none) — the memoized `first_alive_successor`.
    pub(crate) first_succ: Vec<u64>,
    /// Flattened finger tables, `bits` entries per node, each entry the
    /// raw finger value plus whether that node is present and alive.
    pub(crate) fingers: Vec<(u64, bool)>,
    /// Flattened successor lists (variable length per node).
    pub(crate) succs: Vec<(u64, bool)>,
    /// `succs` row boundaries: node `i` owns `succs[offsets[i]..offsets[i+1]]`.
    pub(crate) succ_offsets: Vec<u32>,
}

/// Wrapping ring distance from `a` to `x` (the `ChordId::distance_to`
/// arithmetic on raw values).
#[inline]
fn dist(a: u64, x: u64, mask: u64) -> u64 {
    x.wrapping_sub(a) & mask
}

/// `x ∈ (a, b)` on the ring; `a == b` means "everything but `a`".
#[inline]
fn in_open(x: u64, a: u64, b: u64, mask: u64) -> bool {
    if a == b {
        return x != a;
    }
    let d_self = dist(a, x, mask);
    d_self > 0 && d_self < dist(a, b, mask)
}

/// `x ∈ (a, b]` on the ring; `a == b` means the whole ring.
#[inline]
fn in_half_open(x: u64, a: u64, b: u64, mask: u64) -> bool {
    if a == b {
        return true;
    }
    let d_self = dist(a, x, mask);
    d_self > 0 && d_self <= dist(a, b, mask)
}

impl RouteSnapshot {
    /// The hash space the snapshot was taken over.
    pub fn space(&self) -> HashSpace {
        self.space
    }

    /// Number of alive nodes captured.
    pub fn alive_count(&self) -> usize {
        self.values.len()
    }

    fn index_of(&self, value: u64) -> Option<usize> {
        self.values.binary_search(&value).ok()
    }

    /// The row index of the alive node owning hash `h` (its ring
    /// successor) — ground truth over the frozen membership.
    fn owner_index_of(&self, h: u64) -> usize {
        debug_assert!(!self.values.is_empty());
        let h = h & self.space.mask();
        match self.values.binary_search(&h) {
            Ok(i) => i,
            Err(i) => i % self.values.len(),
        }
    }

    /// Ground truth over the frozen membership: the alive node owning
    /// hash `h`. Mirrors `SimNet::owner_of` (always `Some` here — a
    /// snapshot of an empty ring routes nothing).
    pub fn owner_of(&self, h: u64) -> Option<ChordId> {
        if self.values.is_empty() {
            return None;
        }
        Some(ChordId::new(
            self.values[self.owner_index_of(h)],
            self.space,
        ))
    }

    /// `closest_preceding` over the flat arrays: farthest usable finger in
    /// `(current, target)`, else farthest such successor-list entry, else
    /// the first usable successor-list entry, else `current`.
    fn closest_preceding(&self, idx: usize, current: u64, target: u64) -> u64 {
        let mask = self.space.mask();
        let m = self.space.bits() as usize;
        for &(f, usable) in self.fingers[idx * m..(idx + 1) * m].iter().rev() {
            if in_open(f, current, target, mask) && usable {
                return f;
            }
        }
        let row = &self.succs[self.succ_offsets[idx] as usize..self.succ_offsets[idx + 1] as usize];
        for &(s, usable) in row.iter().rev() {
            if in_open(s, current, target, mask) && usable {
                return s;
            }
        }
        row.iter()
            .copied()
            .find_map(|(s, usable)| usable.then_some(s))
            .unwrap_or(current)
    }

    /// The routed lookup, bit-for-bit identical to
    /// [`crate::net::SimNet::route_with_path`] on the network the snapshot
    /// was taken from: same owner, same hop count, same per-hop path.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not an alive node of the snapshot, or if
    /// routing exceeds the hop limit (same cycle guard as the live net).
    pub fn route_with_path(
        &self,
        start: ChordId,
        h: u64,
    ) -> (LookupResult, Vec<(ChordId, ChordId)>) {
        let mask = self.space.mask();
        let target = h & mask;
        let mut idx = self
            .index_of(start.value())
            .expect("lookup must start at an alive node");
        let mut hops = 0u32;
        let mut path: Vec<(ChordId, ChordId)> = Vec::new();
        let id = |v: u64| ChordId::new(v, self.space);
        loop {
            let current = self.values[idx];
            if target == current {
                return (
                    LookupResult {
                        owner: id(current),
                        hops,
                    },
                    path,
                );
            }
            let succ = self.first_succ[idx];
            if succ == current {
                // Solitary (or fully isolated) node owns everything.
                return (
                    LookupResult {
                        owner: id(current),
                        hops,
                    },
                    path,
                );
            }
            if in_half_open(target, current, succ, mask) {
                path.push((id(current), id(succ)));
                return (
                    LookupResult {
                        owner: id(succ),
                        hops: hops + 1,
                    },
                    path,
                );
            }
            let next = self.closest_preceding(idx, current, target);
            let next = if next == current { succ } else { next };
            path.push((id(current), id(next)));
            idx = self
                .index_of(next)
                .expect("routing only visits alive nodes");
            hops += 1;
            assert!(
                hops <= self.hop_limit,
                "routing cycle: {start:?} -> {h:#x} exceeded {} hops",
                self.hop_limit
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::SimNet;
    use clash_simkernel::rng::DetRng;

    fn space() -> HashSpace {
        HashSpace::new(16).unwrap()
    }

    fn assert_snapshot_matches(net: &SimNet, label: &str) {
        let snap = net.snapshot();
        assert_eq!(snap.alive_count(), net.alive_count(), "{label}");
        let starts = net.node_ids();
        let mut rng = DetRng::new(0xD1FF);
        for _ in 0..400 {
            let h = rng.next_u64() & space().mask();
            let start = starts[rng.uniform_index(starts.len())];
            let (live, live_path) = net.route_with_path(start, h);
            let (snapped, snap_path) = snap.route_with_path(start, h);
            assert_eq!(live, snapped, "{label}: owner/hops diverged for {h:#x}");
            assert_eq!(live_path, snap_path, "{label}: path diverged for {h:#x}");
            assert_eq!(snap.owner_of(h), net.owner_of(h), "{label}: ground truth");
        }
    }

    #[test]
    fn snapshot_routes_match_live_net_on_stable_ring() {
        for (n, seed) in [(3usize, 1u64), (32, 2), (200, 3)] {
            let mut rng = DetRng::new(seed);
            let mut net = SimNet::with_random_nodes(space(), n, &mut rng);
            net.build_stable();
            assert_snapshot_matches(&net, &format!("stable n={n}"));
        }
    }

    #[test]
    fn snapshot_routes_match_live_net_with_unstabilized_failures() {
        // Kill nodes and do NOT run maintenance: successor lists carry
        // corpses, fingers name dead nodes — the snapshot's usable flags
        // must reproduce the live net's skipping behaviour exactly.
        let mut rng = DetRng::new(7);
        let mut net = SimNet::with_random_nodes(space(), 96, &mut rng);
        net.build_stable();
        let ids = net.node_ids();
        for &id in ids.iter().step_by(5).take(12) {
            net.fail(id);
        }
        assert_snapshot_matches(&net, "failed, pre-maintenance");
        // Then partially stabilize and re-check.
        net.stabilize_round();
        assert_snapshot_matches(&net, "failed, one round");
        net.stabilize_until_converged(64);
        assert_snapshot_matches(&net, "failed, converged");
    }

    #[test]
    fn snapshot_routes_match_after_joins_and_departures() {
        let mut rng = DetRng::new(11);
        let mut net = SimNet::with_random_nodes(space(), 40, &mut rng);
        net.build_stable();
        let bootstrap = net.node_ids()[0];
        for _ in 0..6 {
            let id = ChordId::new(rng.next_u64(), space());
            net.join(id, bootstrap);
        }
        let leaver = net.node_ids()[9];
        net.remove_node(leaver);
        // Transient state: fresh joins unstabilized, one node vanished
        // (fingers still name it — "usable" must be false for a removed
        // node, not just a dead one).
        assert_snapshot_matches(&net, "post-join/departure transient");
    }

    #[test]
    fn snapshot_single_node_ring() {
        let mut net = SimNet::new(space());
        let id = ChordId::new(42, space());
        net.add_node(id);
        net.build_stable();
        let snap = net.snapshot();
        let (r, path) = snap.route_with_path(id, 9999);
        assert_eq!(r.owner, id);
        assert_eq!(r.hops, 0);
        assert!(path.is_empty());
    }

    #[test]
    fn snapshot_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<RouteSnapshot>();
    }
}
