//! CFS-style virtual servers: multiple ring identifiers per physical node.
//!
//! The related-work baselines in the paper (§2): Chord "proposes the use of
//! log(S) virtual servers per physical server node … to significantly
//! reduce the probability of non-uniform address allocation", and CFS
//! "allocates the number of virtual servers in proportion to the actual
//! processing capacity". This module provides that layer for the ablation
//! experiments, mapping virtual ring identifiers back to physical servers.

use std::collections::BTreeMap;

use clash_keyspace::hash::HashSpace;
use clash_simkernel::rng::DetRng;

use crate::id::ChordId;
use crate::net::{LookupResult, SimNet};

/// Identifier of a physical server hosting one or more virtual nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PhysicalId(pub usize);

/// A Chord ring whose nodes are virtual servers owned by physical servers.
///
/// # Example
///
/// ```
/// use clash_chord::virtual_nodes::VirtualRing;
/// use clash_keyspace::hash::HashSpace;
/// use clash_simkernel::rng::DetRng;
///
/// let mut rng = DetRng::new(1);
/// // 10 physical servers × 4 virtual nodes each.
/// let ring = VirtualRing::new(HashSpace::PAPER, 10, 4, &mut rng);
/// let phys = ring.physical_owner_of(0x42).unwrap();
/// assert!(phys.0 < 10);
/// ```
#[derive(Debug)]
pub struct VirtualRing {
    net: SimNet,
    virt_to_phys: BTreeMap<u64, PhysicalId>,
    physical_count: usize,
}

impl VirtualRing {
    /// Creates a stabilized ring of `physical × vnodes_per` virtual nodes.
    ///
    /// # Panics
    ///
    /// Panics if `physical == 0` or `vnodes_per == 0`.
    pub fn new(space: HashSpace, physical: usize, vnodes_per: usize, rng: &mut DetRng) -> Self {
        assert!(physical > 0, "need at least one physical server");
        assert!(vnodes_per > 0, "need at least one virtual node each");
        let mut net = SimNet::new(space);
        let mut virt_to_phys = BTreeMap::new();
        for p in 0..physical {
            let mut placed = 0;
            while placed < vnodes_per {
                let id = ChordId::new(rng.next_u64(), space);
                if net.add_node(id) {
                    virt_to_phys.insert(id.value(), PhysicalId(p));
                    placed += 1;
                }
            }
        }
        net.build_stable();
        VirtualRing {
            net,
            virt_to_phys,
            physical_count: physical,
        }
    }

    /// Number of physical servers.
    pub fn physical_count(&self) -> usize {
        self.physical_count
    }

    /// The underlying virtual-node ring.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Mutable access to the underlying ring (for failure injection).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// The physical server owning a virtual node identifier.
    pub fn physical_of(&self, virt: ChordId) -> Option<PhysicalId> {
        self.virt_to_phys.get(&virt.value()).copied()
    }

    /// Ground-truth physical owner of hash `h`.
    pub fn physical_owner_of(&self, h: u64) -> Option<PhysicalId> {
        self.net.owner_of(h).and_then(|virt| self.physical_of(virt))
    }

    /// Routed lookup returning the physical owner and hop count.
    pub fn lookup_physical(&mut self, start: ChordId, h: u64) -> (PhysicalId, LookupResult) {
        let result = self.net.find_successor(start, h);
        let phys = self
            .physical_of(result.owner)
            .expect("owner is a registered virtual node");
        (phys, result)
    }

    /// Fails every virtual node of a physical server (whole-machine crash).
    pub fn fail_physical(&mut self, p: PhysicalId) {
        let victims: Vec<ChordId> = self
            .virt_to_phys
            .iter()
            .filter(|&(_, &owner)| owner == p)
            .map(|(&v, _)| ChordId::new(v, self.net.space()))
            .collect();
        for v in victims {
            self.net.fail(v);
        }
    }

    /// Fraction of the hash space owned by each physical server — the
    /// balance metric the virtual-server technique improves.
    pub fn ownership_fractions(&self) -> Vec<f64> {
        let ids = self.net.node_ids();
        let mut owned = vec![0u128; self.physical_count];
        if ids.is_empty() {
            return vec![0.0; self.physical_count];
        }
        for (pos, &id) in ids.iter().enumerate() {
            let pred = ids[(pos + ids.len() - 1) % ids.len()];
            let arc = pred.distance_to(id);
            let arc = if ids.len() == 1 {
                self.net.space().size()
            } else {
                arc as u128
            };
            if let Some(p) = self.physical_of(id) {
                owned[p.0] += arc;
            }
        }
        let total = self.net.space().size();
        owned.iter().map(|&a| a as f64 / total as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_simkernel::stats;

    fn ring(physical: usize, vnodes: usize, seed: u64) -> VirtualRing {
        let mut rng = DetRng::new(seed);
        VirtualRing::new(HashSpace::new(24).unwrap(), physical, vnodes, &mut rng)
    }

    #[test]
    fn every_hash_has_a_physical_owner() {
        let r = ring(8, 4, 1);
        let mut rng = DetRng::new(2);
        for _ in 0..200 {
            let h = rng.next_u64() & 0xFF_FFFF;
            let p = r.physical_owner_of(h).unwrap();
            assert!(p.0 < 8);
        }
    }

    #[test]
    fn lookup_physical_matches_ground_truth() {
        let mut r = ring(8, 4, 3);
        let start = r.net().node_ids()[0];
        let mut rng = DetRng::new(4);
        for _ in 0..100 {
            let h = rng.next_u64() & 0xFF_FFFF;
            let expected = r.physical_owner_of(h).unwrap();
            let (got, _) = r.lookup_physical(start, h);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn more_vnodes_balance_ownership() {
        // Variance of per-physical ownership must drop with vnode count.
        let few = ring(16, 1, 5).ownership_fractions();
        let many = ring(16, 16, 5).ownership_fractions();
        assert!((few.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((many.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            stats::stddev(&many) < stats::stddev(&few),
            "vnodes should reduce imbalance: {} vs {}",
            stats::stddev(&many),
            stats::stddev(&few)
        );
    }

    #[test]
    fn physical_failure_removes_all_vnodes() {
        let mut r = ring(4, 8, 6);
        let before = r.net().alive_count();
        r.fail_physical(PhysicalId(2));
        assert_eq!(r.net().alive_count(), before - 8);
        r.net_mut().stabilize_until_converged(64);
        // Remaining hashes all land on surviving servers.
        let mut rng = DetRng::new(7);
        for _ in 0..100 {
            let h = rng.next_u64() & 0xFF_FFFF;
            let p = r.physical_owner_of(h).unwrap();
            assert_ne!(p, PhysicalId(2));
        }
    }

    #[test]
    #[should_panic(expected = "at least one physical")]
    fn zero_physical_rejected() {
        let mut rng = DetRng::new(0);
        VirtualRing::new(HashSpace::new(8).unwrap(), 0, 1, &mut rng);
    }
}
