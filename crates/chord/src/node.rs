//! Per-node Chord state.

use std::fmt;

use crate::id::ChordId;

/// The state one Chord node maintains: its successor list, predecessor and
/// finger table (Stoica et al., SIGCOMM 2001, §4).
///
/// Nodes do not own network behaviour — [`crate::net::SimNet`] drives the
/// protocol — but all routing state lives here, sized exactly as in the
/// Chord paper: M fingers and an r-entry successor list.
#[derive(Clone)]
pub struct ChordNode {
    id: ChordId,
    /// `fingers[k]` routes toward `id + 2^k`; entry 0 is the successor.
    fingers: Vec<ChordId>,
    /// The first `r` nodes following this one on the ring.
    successor_list: Vec<ChordId>,
    predecessor: Option<ChordId>,
    alive: bool,
}

impl ChordNode {
    /// Creates a solitary node: all routing state points at itself.
    pub fn solitary(id: ChordId) -> Self {
        let m = id.space().bits() as usize;
        ChordNode {
            id,
            fingers: vec![id; m],
            successor_list: vec![id],
            predecessor: None,
            alive: true,
        }
    }

    /// This node's ring identifier.
    pub fn id(&self) -> ChordId {
        self.id
    }

    /// The immediate successor (first live entry of the successor list
    /// falls to [`crate::net::SimNet`]; this returns the raw head).
    pub fn successor(&self) -> ChordId {
        self.successor_list[0]
    }

    /// The successor list, nearest first.
    pub fn successor_list(&self) -> &[ChordId] {
        &self.successor_list
    }

    /// Replaces the successor list.
    ///
    /// # Panics
    ///
    /// Panics if `list` is empty — a node always knows at least one
    /// successor (possibly itself).
    pub fn set_successor_list(&mut self, list: Vec<ChordId>) {
        assert!(!list.is_empty(), "successor list must be non-empty");
        self.successor_list = list;
    }

    /// The predecessor, if known.
    pub fn predecessor(&self) -> Option<ChordId> {
        self.predecessor
    }

    /// Sets or clears the predecessor pointer.
    pub fn set_predecessor(&mut self, p: Option<ChordId>) {
        self.predecessor = p;
    }

    /// The finger table; entry `k` is the node this one believes succeeds
    /// `id + 2^k`.
    pub fn fingers(&self) -> &[ChordId] {
        &self.fingers
    }

    /// Sets finger `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn set_finger(&mut self, k: usize, target: ChordId) {
        self.fingers[k] = target;
    }

    /// Whether the node is alive (failed nodes keep their state for
    /// post-mortem inspection but are skipped by routing).
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Marks the node failed.
    pub fn mark_failed(&mut self) {
        self.alive = false;
    }

    /// The best local route toward `target`: the closest finger (or
    /// successor-list entry) that lies strictly between this node and the
    /// target, among nodes accepted by `is_usable`. Falls back to the first
    /// usable successor, then to `self`.
    pub fn closest_preceding(
        &self,
        target: ChordId,
        is_usable: impl Fn(ChordId) -> bool,
    ) -> ChordId {
        for &f in self.fingers.iter().rev() {
            if f.in_open_interval(self.id, target) && is_usable(f) {
                return f;
            }
        }
        // Successor-list entries can be closer than any usable finger
        // after failures.
        for &s in self.successor_list.iter().rev() {
            if s.in_open_interval(self.id, target) && is_usable(s) {
                return s;
            }
        }
        self.successor_list
            .iter()
            .copied()
            .find(|&s| is_usable(s))
            .unwrap_or(self.id)
    }
}

impl fmt::Debug for ChordNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChordNode")
            .field("id", &self.id)
            .field("successor", &self.successor())
            .field("predecessor", &self.predecessor)
            .field("alive", &self.alive)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_keyspace::hash::HashSpace;

    fn id(v: u64) -> ChordId {
        ChordId::new(v, HashSpace::new(8).unwrap())
    }

    #[test]
    fn solitary_points_to_self() {
        let n = ChordNode::solitary(id(42));
        assert_eq!(n.successor(), id(42));
        assert_eq!(n.fingers().len(), 8);
        assert!(n.fingers().iter().all(|&f| f == id(42)));
        assert_eq!(n.predecessor(), None);
        assert!(n.is_alive());
    }

    #[test]
    fn closest_preceding_picks_farthest_usable_finger() {
        let mut n = ChordNode::solitary(id(0));
        n.set_finger(0, id(1));
        n.set_finger(3, id(8));
        n.set_finger(6, id(64));
        n.set_finger(7, id(128));
        // Routing toward 100: finger 64 is the closest preceding.
        assert_eq!(n.closest_preceding(id(100), |_| true), id(64));
        // Routing toward 200: finger 128 precedes it.
        assert_eq!(n.closest_preceding(id(200), |_| true), id(128));
    }

    #[test]
    fn closest_preceding_skips_unusable() {
        let mut n = ChordNode::solitary(id(0));
        n.set_finger(6, id(64));
        n.set_finger(7, id(128));
        n.set_successor_list(vec![id(1)]);
        let dead = id(128);
        assert_eq!(n.closest_preceding(id(200), |c| c != dead), id(64));
    }

    #[test]
    fn closest_preceding_falls_back_to_successor() {
        let mut n = ChordNode::solitary(id(10));
        n.set_successor_list(vec![id(20)]);
        // Target just after self; no finger strictly inside (10, 12).
        assert_eq!(n.closest_preceding(id(12), |c| c != id(10)), id(20));
    }

    #[test]
    fn mark_failed() {
        let mut n = ChordNode::solitary(id(1));
        n.mark_failed();
        assert!(!n.is_alive());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_successor_list_rejected() {
        let mut n = ChordNode::solitary(id(1));
        n.set_successor_list(vec![]);
    }
}
