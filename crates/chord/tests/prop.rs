//! Property-based tests for ring arithmetic and routing correctness.

use clash_chord::id::ChordId;
use clash_chord::net::SimNet;
use clash_keyspace::hash::HashSpace;
use clash_simkernel::rng::DetRng;
use proptest::prelude::*;

fn sp() -> HashSpace {
    HashSpace::new(16).unwrap()
}

proptest! {
    /// Exactly one of: x ∈ (a,b), x == a, x == b, x ∈ (b,a) — the ring is
    /// partitioned by any two distinct points.
    #[test]
    fn ring_partition_by_two_points(x in 0u64..65536, a in 0u64..65536, b in 0u64..65536) {
        prop_assume!(a != b);
        let (x, a, b) = (ChordId::new(x, sp()), ChordId::new(a, sp()), ChordId::new(b, sp()));
        let cases = [
            x.in_open_interval(a, b),
            x == a,
            x == b,
            x.in_open_interval(b, a),
        ];
        prop_assert_eq!(cases.iter().filter(|&&c| c).count(), 1);
    }

    /// (a, b] = (a, b) ∪ {b}.
    #[test]
    fn half_open_is_open_plus_endpoint(x in 0u64..65536, a in 0u64..65536, b in 0u64..65536) {
        prop_assume!(a != b);
        let (x, a, b) = (ChordId::new(x, sp()), ChordId::new(a, sp()), ChordId::new(b, sp()));
        prop_assert_eq!(
            x.in_half_open_interval(a, b),
            x.in_open_interval(a, b) || x == b
        );
    }

    /// Distance is a ring metric: d(a,b) + d(b,a) == ring size (for a ≠ b),
    /// and d(a,a) == 0.
    #[test]
    fn distance_antisymmetry(a in 0u64..65536, b in 0u64..65536) {
        let (ia, ib) = (ChordId::new(a, sp()), ChordId::new(b, sp()));
        prop_assert_eq!(ia.distance_to(ia), 0);
        if a != b {
            prop_assert_eq!(
                u128::from(ia.distance_to(ib)) + u128::from(ib.distance_to(ia)),
                sp().size()
            );
        }
    }

    /// On a stabilized ring, routed lookups from any start agree with the
    /// ground-truth successor, within the Chord hop bound.
    #[test]
    fn routed_lookup_matches_ground_truth(
        seed in 0u64..1000,
        n in 2usize..80,
        hashes in prop::collection::vec(0u64..65536, 1..20),
    ) {
        let mut rng = DetRng::new(seed);
        let mut net = SimNet::with_random_nodes(sp(), n, &mut rng);
        net.build_stable();
        let starts = net.node_ids();
        for (i, h) in hashes.into_iter().enumerate() {
            let start = starts[i % starts.len()];
            let r = net.find_successor(start, h);
            prop_assert_eq!(Some(r.owner), net.owner_of(h));
            // Perfect fingers: hops ≤ log2(n) + small constant.
            let bound = (n as f64).log2().ceil() as u32 + 3;
            prop_assert!(r.hops <= bound, "hops {} > bound {}", r.hops, bound);
        }
    }

    /// After arbitrary failures plus maintenance, routing still matches
    /// ground truth among survivors.
    #[test]
    fn routing_correct_after_failures(
        seed in 0u64..500,
        n in 4usize..40,
        kill_pattern in prop::collection::vec(any::<bool>(), 40),
    ) {
        let mut rng = DetRng::new(seed);
        let mut net = SimNet::with_random_nodes(sp(), n, &mut rng);
        net.build_stable();
        let ids = net.node_ids();
        let mut alive = n;
        for (i, &kill) in kill_pattern.iter().take(n).enumerate() {
            if kill && alive > 1 {
                net.fail(ids[i]);
                alive -= 1;
            }
        }
        net.stabilize_until_converged(128);
        prop_assert!(net.is_fully_stabilized());
        let starts = net.node_ids();
        for h in [0u64, 1000, 30000, 65535] {
            let start = starts[h as usize % starts.len()];
            let r = net.find_successor(start, h);
            prop_assert_eq!(Some(r.owner), net.owner_of(h));
        }
    }
}
