//! Successor-list replication state (beyond the paper's evaluation).
//!
//! The paper delegates fault tolerance to "the DHT's replication" and
//! never specifies it; this module supplies the missing mechanism. With
//! [`crate::config::ClashConfig::replication_factor`] `r > 0`, every
//! *active* key-group entry — together with its ledger (which sources and
//! queries live in the group, at what rate) — is replicated on the first
//! `r` alive ring successors of its owner, the classic Chord/DHash
//! placement. A server therefore keeps two pieces of replication state:
//!
//! * **held replicas** — key-group state this server stores on behalf of
//!   ring predecessors. These are what crash recovery promotes: when an
//!   owner dies, the new ring owner of the group's hash fetches the state
//!   from the first live replica instead of consulting any global oracle.
//! * **placement registry** — for each group this server *owns*, the set
//!   of holders it has successfully seeded. The owner uses it to refresh
//!   payloads, to invalidate replicas when a split/merge/handoff retires
//!   a group, and to know which holders still need seeding after a
//!   partition deferred a `REPLICATE_KEYGROUP`.
//!
//! Both structures are plain data; all message movement (and its
//! accounting) lives in `ClashCluster`, keeping the server I/O-free like
//! the rest of the protocol state.

use std::sync::Arc;

use clash_keyspace::cover::PrefixMap;
use clash_keyspace::key::KeyWidth;
use clash_keyspace::prefix::Prefix;

use crate::ServerId;

/// One replicated key-group: the owner it was seeded by plus the ledger
/// membership needed to resume service (stream clients reconnect to
/// exactly this state after a promotion; rates and loads are recomputed
/// from the surviving client registry at promotion time, so they are
/// deliberately not carried).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaRecord {
    /// The server that owned the group when this replica was last
    /// refreshed. Recovery only ever promotes records whose owner is the
    /// crashed server that actively held the group — a stale record left
    /// behind by a deferred invalidation can never be promoted.
    pub owner: ServerId,
    /// Source ids attached to the group. Shared-snapshot semantics: the
    /// owner's write-through hands every holder the same `Arc`, so
    /// seeding `r` replicas never deep-clones the ledger (the ledger
    /// copies-on-write at its next mutation instead).
    pub sources: Arc<Vec<u64>>,
    /// Continuous-query ids attached to the group (same sharing).
    pub queries: Arc<Vec<u64>>,
}

/// A server's replication state: replicas held for peers, plus the
/// placement registry for its own groups (see the module docs).
#[derive(Debug, Clone)]
pub struct ReplicaStore {
    held: PrefixMap<ReplicaRecord>,
    placed: PrefixMap<Vec<ServerId>>,
}

impl ReplicaStore {
    /// Creates an empty store for groups of `width`-bit keys.
    pub fn new(width: KeyWidth) -> Self {
        ReplicaStore {
            held: PrefixMap::new(width),
            placed: PrefixMap::new(width),
        }
    }

    // ----- held replicas (this server as a successor holder) -----------

    /// The replica held for `group`, if any.
    pub fn held(&self, group: Prefix) -> Option<&ReplicaRecord> {
        self.held.get(group)
    }

    /// Stores (or refreshes) a replica for `group`.
    pub fn store(&mut self, group: Prefix, record: ReplicaRecord) {
        self.held.insert(group, record);
    }

    /// Drops the replica held for `group`. Returns it if present.
    pub fn drop_held(&mut self, group: Prefix) -> Option<ReplicaRecord> {
        self.held.remove(group)
    }

    /// Number of replicas held for peers.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Groups whose held replica names `owner` as its owner.
    pub fn held_owned_by(&self, owner: ServerId) -> Vec<Prefix> {
        self.held
            .iter()
            .filter(|(_, r)| r.owner == owner)
            .map(|(g, _)| g)
            .collect()
    }

    /// Drops held replicas failing `keep(group, owner)` — the local lease
    /// expiry run during periodic maintenance. Returns how many expired.
    pub fn expire_held<F: Fn(Prefix, ServerId) -> bool>(&mut self, keep: F) -> usize {
        let stale: Vec<Prefix> = self
            .held
            .iter()
            .filter(|(g, r)| !keep(*g, r.owner))
            .map(|(g, _)| g)
            .collect();
        for g in &stale {
            self.held.remove(*g);
        }
        stale.len()
    }

    // ----- placement registry (this server as an owner) ----------------

    /// The holders this owner has successfully seeded for `group`.
    pub fn placed(&self, group: Prefix) -> &[ServerId] {
        self.placed.get(group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Replaces the seeded-holder set of `group` (empty clears it).
    pub fn set_placed(&mut self, group: Prefix, holders: Vec<ServerId>) {
        if holders.is_empty() {
            self.placed.remove(group);
        } else {
            self.placed.insert(group, holders);
        }
    }

    /// Removes and returns the seeded-holder set of `group`.
    pub fn take_placed(&mut self, group: Prefix) -> Vec<ServerId> {
        self.placed.remove(group).unwrap_or_default()
    }

    /// Groups this owner currently has replicas placed for.
    pub fn placed_groups(&self) -> Vec<Prefix> {
        self.placed.prefixes().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_keyspace::hash::HashSpace;

    fn sid(v: u64) -> ServerId {
        ServerId::new(v, HashSpace::new(16).unwrap())
    }

    fn p(s: &str) -> Prefix {
        Prefix::parse(s, 8).unwrap()
    }

    fn rec(owner: u64) -> ReplicaRecord {
        ReplicaRecord {
            owner: sid(owner),
            sources: Arc::new(vec![1, 2]),
            queries: Arc::new(vec![9]),
        }
    }

    #[test]
    fn held_replica_roundtrip() {
        let mut store = ReplicaStore::new(KeyWidth::new(8).unwrap());
        assert_eq!(store.held_count(), 0);
        store.store(p("01*"), rec(5));
        store.store(p("10*"), rec(7));
        assert_eq!(store.held_count(), 2);
        assert_eq!(store.held(p("01*")).unwrap().owner, sid(5));
        assert_eq!(store.held_owned_by(sid(7)), vec![p("10*")]);
        assert_eq!(store.held_owned_by(sid(99)), Vec::<Prefix>::new());
        // A refresh overwrites in place.
        store.store(p("01*"), rec(6));
        assert_eq!(store.held(p("01*")).unwrap().owner, sid(6));
        assert_eq!(store.held_count(), 2);
        assert!(store.drop_held(p("01*")).is_some());
        assert!(store.drop_held(p("01*")).is_none());
    }

    #[test]
    fn expire_held_applies_lease_predicate() {
        let mut store = ReplicaStore::new(KeyWidth::new(8).unwrap());
        store.store(p("01*"), rec(5));
        store.store(p("10*"), rec(7));
        store.store(p("11*"), rec(5));
        let expired = store.expire_held(|_, owner| owner == sid(7));
        assert_eq!(expired, 2);
        assert_eq!(store.held_count(), 1);
        assert!(store.held(p("10*")).is_some());
    }

    #[test]
    fn placement_registry_roundtrip() {
        let mut store = ReplicaStore::new(KeyWidth::new(8).unwrap());
        assert!(store.placed(p("01*")).is_empty());
        store.set_placed(p("01*"), vec![sid(3), sid(4)]);
        assert_eq!(store.placed(p("01*")), &[sid(3), sid(4)]);
        assert_eq!(store.placed_groups(), vec![p("01*")]);
        assert_eq!(store.take_placed(p("01*")), vec![sid(3), sid(4)]);
        assert!(store.placed_groups().is_empty());
        // Setting an empty holder set clears the entry.
        store.set_placed(p("01*"), vec![sid(3)]);
        store.set_placed(p("01*"), Vec::new());
        assert!(store.placed_groups().is_empty());
    }
}
