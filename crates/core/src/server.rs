//! The CLASH server: a pure protocol state machine around a
//! [`ServerTable`].
//!
//! The server owns no I/O — the cluster harness (or the full simulator)
//! delivers [`crate::messages::ClashRequest`]s and routes the responses.
//! This keeps every
//! protocol decision unit-testable: overload detection, the choice of the
//! group to shed ("hottest"), the choice to consolidate ("coldest eligible
//! parent"), and the three-way `ACCEPT_OBJECT` case analysis.

use clash_keyspace::key::{Key, KeyWidth};
use clash_keyspace::prefix::Prefix;

use crate::config::{ClashConfig, SplitPolicy};
use crate::error::ClashError;
use crate::load::{GroupLoad, LoadLevel};
use crate::messages::{AcceptObjectResponse, ReleaseResponse};
use crate::replication::ReplicaStore;
use crate::table::{ChildReport, ParentRef, ServerTable, TableEntry};
use crate::ServerId;

/// Counters for one server's protocol activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// `ACCEPT_OBJECT` probes answered.
    pub probes_answered: u64,
    /// Splits performed.
    pub splits: u64,
    /// Merges performed.
    pub merges: u64,
    /// Key groups accepted from peers.
    pub groups_accepted: u64,
    /// Key groups released back to parents.
    pub groups_released: u64,
}

/// A CLASH server.
///
/// # Example
///
/// ```
/// use clash_core::config::ClashConfig;
/// use clash_core::server::ClashServer;
/// use clash_core::ServerId;
/// use clash_keyspace::prefix::Prefix;
///
/// let cfg = ClashConfig::small_test();
/// let id = ServerId::new(5, cfg.hash_space);
/// let mut server = ClashServer::new(id, cfg);
/// server.bootstrap_root(Prefix::parse("01*", 8)?)?;
/// assert_eq!(server.table().active_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClashServer {
    id: ServerId,
    config: ClashConfig,
    table: ServerTable,
    stats: ServerStats,
    /// Successor-list replication state: replicas held for ring
    /// predecessors plus the placement registry for this server's own
    /// groups. Unused (and empty) when the replication factor is 0.
    replicas: ReplicaStore,
}

impl ClashServer {
    /// Creates a server with an empty table.
    pub fn new(id: ServerId, config: ClashConfig) -> Self {
        ClashServer {
            id,
            table: ServerTable::new(id, config.key_width),
            replicas: ReplicaStore::new(config.key_width),
            config,
            stats: ServerStats::default(),
        }
    }

    /// This server's DHT identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The configuration.
    pub fn config(&self) -> &ClashConfig {
        &self.config
    }

    /// Read access to the server table.
    pub fn table(&self) -> &ServerTable {
        &self.table
    }

    /// Mutable table access for cluster-level recovery procedures.
    pub(crate) fn table_mut(&mut self) -> &mut ServerTable {
        &mut self.table
    }

    /// Read access to the replication state.
    pub fn replica_store(&self) -> &ReplicaStore {
        &self.replicas
    }

    /// Mutable replication state for the cluster's replication engine.
    pub(crate) fn replica_store_mut(&mut self) -> &mut ReplicaStore {
        &mut self.replicas
    }

    /// Protocol activity counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The key width in use.
    pub fn key_width(&self) -> KeyWidth {
        self.config.key_width
    }

    /// Installs a bootstrap root group (`ParentID = -1`).
    ///
    /// # Errors
    ///
    /// Propagates [`ClashError::WrongActivity`] on duplicates.
    pub fn bootstrap_root(&mut self, group: Prefix) -> Result<(), ClashError> {
        self.table.insert_root(group)
    }

    // ----- request handlers (§5) -------------------------------------

    /// Handles an `ACCEPT_OBJECT` probe.
    pub fn handle_accept_object(&mut self, key: Key, depth: u32) -> AcceptObjectResponse {
        self.stats.probes_answered += 1;
        self.table.classify_object(key, depth)
    }

    /// Handles `ACCEPT_KEYGROUP`: per §5 the receiver must always accept
    /// (it can shed again by splitting further).
    ///
    /// # Errors
    ///
    /// Returns an error only on a protocol invariant violation (the group
    /// is already held).
    pub fn handle_accept_keygroup(
        &mut self,
        group: Prefix,
        parent: ServerId,
        load: GroupLoad,
    ) -> Result<(), ClashError> {
        self.table.accept_group(group, parent, load)?;
        self.stats.groups_accepted += 1;
        Ok(())
    }

    /// Handles `RELEASE_KEYGROUP`: returns the group's load if it is still
    /// an active leaf here, otherwise refuses (the paper's stale-report
    /// case).
    pub fn handle_release_keygroup(&mut self, group: Prefix) -> ReleaseResponse {
        match self.table.release_group(group) {
            Some(load) => {
                self.stats.groups_released += 1;
                ReleaseResponse::Released { load }
            }
            None => ReleaseResponse::Refused,
        }
    }

    /// Handles a leaf-to-parent `LOAD_REPORT`.
    ///
    /// Only reports from the *right* child are recorded: `last_child_report`
    /// describes the remote right child, while the left child always lives
    /// on the parent-entry holder itself (same virtual key ⇒ same server)
    /// and is read from the table directly. Left-child reports would
    /// otherwise overwrite the right child's state.
    pub fn handle_load_report(&mut self, group: Prefix, load: GroupLoad, is_leaf: bool) {
        let parent = match group.parent() {
            Some(p) => p,
            None => return, // root groups have no parent entry anywhere
        };
        if group.last_bit() != Some(1) {
            return;
        }
        self.table
            .record_child_report(parent, ChildReport { load, is_leaf });
    }

    // ----- load accounting --------------------------------------------

    /// Total load across active groups under the configured model.
    pub fn current_load(&self) -> f64 {
        self.config
            .load_model
            .server_load(self.table.active_loads())
    }

    /// Position of the current load relative to the thresholds.
    pub fn load_level(&self) -> LoadLevel {
        LoadLevel::classify(
            self.current_load(),
            self.config.underload_threshold(),
            self.config.overload_threshold(),
        )
    }

    /// Replaces the load of an active group (data-plane accounting,
    /// normally driven by the cluster's per-group ledgers).
    ///
    /// # Errors
    ///
    /// Propagates table errors for unknown/inactive groups.
    pub fn set_group_load(&mut self, group: Prefix, load: GroupLoad) -> Result<(), ClashError> {
        self.table.set_load(group, load)
    }

    // ----- split/merge policy -----------------------------------------

    /// The group this server would split first under the configured
    /// [`SplitPolicy`] (paper §6: "we selected the 'hottest' key group ...
    /// for splitting during overload"). Groups with zero load are never
    /// candidates — splitting them can shed nothing, and an overloaded
    /// server whose hot groups are all at maximum depth simply cannot
    /// shed (the paper's key-granularity limit).
    pub fn hottest_splittable(&self) -> Option<Prefix> {
        let model = &self.config.load_model;
        let mut candidates = self
            .table
            .active_groups()
            .filter(|e| e.group.depth() < self.config.max_depth)
            .filter(|e| model.group_load(e.load) > 0.0);
        match self.config.split_policy {
            SplitPolicy::Hottest => candidates
                .max_by(|a, b| {
                    model
                        .group_load(a.load)
                        .total_cmp(&model.group_load(b.load))
                })
                .map(|e| e.group),
            SplitPolicy::FirstLoaded => candidates.next().map(|e| e.group),
        }
    }

    /// Splits `group` locally: the entry goes inactive, the left child
    /// becomes a local active leaf carrying the parent's load, and the
    /// right child group is returned for DHT placement.
    ///
    /// # Errors
    ///
    /// Propagates table errors (unknown group, not active, at max depth).
    pub fn split_group(&mut self, group: Prefix) -> Result<(Prefix, Prefix), ClashError> {
        let result = self.table.split(group)?;
        self.stats.splits += 1;
        Ok(result)
    }

    /// Records the server that accepted the right child of a split.
    ///
    /// # Errors
    ///
    /// Propagates table errors.
    pub fn set_right_child(&mut self, group: Prefix, server: ServerId) -> Result<(), ClashError> {
        self.table.set_right_child(group, server)
    }

    /// The best consolidation candidate: the inactive parent entry whose
    /// two children are leaves with the smallest combined load, subject to
    /// the merge headroom (paper §6: "the 'coldest' active key-group for
    /// possible consolidation during underload").
    ///
    /// Returns the parent group, the holder of the right child, and the
    /// children's combined load.
    pub fn merge_candidate(&self) -> Option<(Prefix, ServerId, GroupLoad)> {
        let model = &self.config.load_model;
        let mut best: Option<(Prefix, ServerId, GroupLoad, f64)> = None;
        for entry in self.table.entries().filter(|e| !e.active) {
            let Some((parent, right_holder, combined)) = self.mergeable_children(entry) else {
                continue;
            };
            let combined_load = model.group_load(combined);
            if combined_load > self.config.merge_headroom() {
                continue;
            }
            match &best {
                Some((_, _, _, l)) if *l <= combined_load => {}
                _ => best = Some((parent, right_holder, combined, combined_load)),
            }
        }
        best.map(|(p, s, c, _)| (p, s, c))
    }

    /// If `entry`'s two children are currently mergeable leaves, returns
    /// `(parent group, right-child holder, combined child load)`.
    fn mergeable_children(&self, entry: &TableEntry) -> Option<(Prefix, ServerId, GroupLoad)> {
        let parent = entry.group;
        let right_holder = entry.right_child?;
        let (left, right) = parent.split().ok()?;
        let left_entry = self.table.entry(left)?;
        if !left_entry.active {
            return None;
        }
        let right_load = if right_holder == self.id {
            // Self-mapped right child: inspect it directly.
            let right_entry = self.table.entry(right)?;
            if !right_entry.active {
                return None;
            }
            right_entry.load
        } else {
            let report = entry.last_child_report?;
            if !report.is_leaf {
                return None;
            }
            report.load
        };
        Some((parent, right_holder, left_entry.load.combined(right_load)))
    }

    /// Completes a merge after the right child has been reclaimed.
    ///
    /// # Errors
    ///
    /// Propagates table errors when the children stopped being leaves.
    pub fn merge_group(&mut self, parent: Prefix, right_load: GroupLoad) -> Result<(), ClashError> {
        self.table.merge(parent, right_load)?;
        self.stats.merges += 1;
        Ok(())
    }

    /// The load reports this server's entries owe their parents this
    /// period: `(destination server, child group, load, is_leaf)`.
    ///
    /// Only *right* children report: the left child always lives on the
    /// same server as its parent entry and is read from the table directly
    /// (see [`ClashServer::handle_load_report`], which enforces the same
    /// rule on the receiving side). Active entries report `is_leaf =
    /// true`; *inactive* entries report `is_leaf = false` so that a parent
    /// holding a stale "leaf" report cannot attempt a merge the child
    /// would refuse. Reports to ourselves (self-mapped right children)
    /// are included; root groups report to nobody.
    pub fn pending_reports(&self) -> Vec<(ServerId, Prefix, GroupLoad, bool)> {
        let mut reports = Vec::new();
        self.for_each_pending_report(|dest, group, load, is_leaf| {
            reports.push((dest, group, load, is_leaf));
        });
        reports
    }

    /// Visits every pending report in table order without allocating —
    /// the cluster's report-delivery path appends into a reused scratch
    /// buffer through this.
    pub fn for_each_pending_report(
        &self,
        mut visit: impl FnMut(ServerId, Prefix, GroupLoad, bool),
    ) {
        for entry in self.table.entries() {
            if let ParentRef::Server(parent_server) = entry.parent {
                if entry.group.last_bit() == Some(1) {
                    visit(parent_server, entry.group, entry.load, entry.active);
                }
            }
        }
    }

    /// True if [`ClashServer::pending_reports`] would be non-empty. The
    /// cluster maintains its reporter candidate set from this, so the
    /// per-period delivery sweep touches only servers that actually owe
    /// reports.
    pub fn owes_reports(&self) -> bool {
        self.table
            .entries()
            .any(|e| matches!(e.parent, ParentRef::Server(_)) && e.group.last_bit() == Some(1))
    }

    /// Depth statistics over this server's active groups:
    /// `(min, mean, max)`.
    pub fn depth_stats(&self) -> Option<(u32, f64, u32)> {
        let mut min = u32::MAX;
        let mut max = 0;
        let mut sum = 0u64;
        let mut n = 0u64;
        for e in self.table.active_groups() {
            let d = e.group.depth();
            min = min.min(d);
            max = max.max(d);
            sum += u64::from(d);
            n += 1;
        }
        (n > 0).then(|| (min, sum as f64 / n as f64, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clash_keyspace::key::Key;

    fn cfg() -> ClashConfig {
        ClashConfig::small_test() // 8-bit keys, capacity 100
    }

    fn sid(v: u64) -> ServerId {
        ServerId::new(v, cfg().hash_space)
    }

    fn server() -> ClashServer {
        ClashServer::new(sid(1), cfg())
    }

    fn p(s: &str) -> Prefix {
        Prefix::parse(s, 8).unwrap()
    }

    fn k(s: &str) -> Key {
        Key::parse(s, 8).unwrap()
    }

    fn rate(r: f64) -> GroupLoad {
        GroupLoad {
            data_rate: r,
            queries: 0,
        }
    }

    #[test]
    fn load_levels_follow_thresholds() {
        let mut s = server();
        s.bootstrap_root(p("01*")).unwrap();
        assert_eq!(s.load_level(), LoadLevel::Underloaded);
        s.set_group_load(p("01*"), rate(70.0)).unwrap();
        assert_eq!(s.load_level(), LoadLevel::Nominal);
        s.set_group_load(p("01*"), rate(95.0)).unwrap();
        assert_eq!(s.load_level(), LoadLevel::Overloaded);
        assert!((s.current_load() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn hottest_splittable_picks_max_load() {
        let mut s = server();
        s.bootstrap_root(p("00*")).unwrap();
        s.bootstrap_root(p("01*")).unwrap();
        s.bootstrap_root(p("10*")).unwrap();
        s.set_group_load(p("00*"), rate(10.0)).unwrap();
        s.set_group_load(p("01*"), rate(50.0)).unwrap();
        s.set_group_load(p("10*"), rate(30.0)).unwrap();
        assert_eq!(s.hottest_splittable(), Some(p("01*")));
    }

    #[test]
    fn first_loaded_policy_ignores_heat() {
        let mut config = cfg();
        config.split_policy = SplitPolicy::FirstLoaded;
        let mut s = ClashServer::new(sid(1), config);
        s.bootstrap_root(p("00*")).unwrap();
        s.bootstrap_root(p("01*")).unwrap();
        s.set_group_load(p("00*"), rate(10.0)).unwrap();
        s.set_group_load(p("01*"), rate(50.0)).unwrap();
        assert_eq!(s.hottest_splittable(), Some(p("00*")));
    }

    #[test]
    fn hottest_skips_groups_at_max_depth() {
        let mut config = cfg();
        config.max_depth = 3;
        let mut s = ClashServer::new(sid(1), config);
        s.bootstrap_root(p("010*")).unwrap(); // at max depth
        s.bootstrap_root(p("00*")).unwrap();
        s.set_group_load(p("010*"), rate(99.0)).unwrap();
        s.set_group_load(p("00*"), rate(1.0)).unwrap();
        assert_eq!(s.hottest_splittable(), Some(p("00*")));
    }

    #[test]
    fn accept_object_routes_through_table() {
        let mut s = server();
        s.bootstrap_root(p("01*")).unwrap();
        assert_eq!(
            s.handle_accept_object(k("01010101"), 2),
            AcceptObjectResponse::Ok { depth: 2 }
        );
        assert_eq!(
            s.handle_accept_object(k("01010101"), 5),
            AcceptObjectResponse::OkCorrected { depth: 2 }
        );
        assert_eq!(
            s.handle_accept_object(k("11010101"), 5),
            AcceptObjectResponse::IncorrectDepth { d_min: Some(0) }
        );
        assert_eq!(s.stats().probes_answered, 3);
    }

    #[test]
    fn split_and_report_flow() {
        let mut s = server();
        s.bootstrap_root(p("01*")).unwrap();
        s.set_group_load(p("01*"), rate(95.0)).unwrap();
        let (left, right) = s.split_group(p("01*")).unwrap();
        assert_eq!((left, right), (p("010*"), p("011*")));
        s.set_right_child(p("01*"), sid(9)).unwrap();
        // Left child carries the load until the data plane repartitions.
        assert!((s.current_load() - 95.0).abs() < 1e-9);
        assert_eq!(s.stats().splits, 1);
        // The left child does NOT report: it is co-located with its parent
        // entry, whose holder reads it from the table directly. Only right
        // children send load reports.
        assert!(s.pending_reports().is_empty());
        // A self-mapped right child, by contrast, does report (locally).
        s.handle_accept_keygroup(p("011*"), s.id(), rate(40.0))
            .unwrap();
        let reports = s.pending_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, sid(1));
        assert_eq!(reports[0].1, p("011*"));
        assert!(reports[0].3);
    }

    #[test]
    fn non_leaf_entries_report_not_leaf() {
        let mut s = server();
        // Accept a group from a remote parent, then split it: the now
        // inactive entry must report is_leaf = false to sid(2).
        s.handle_accept_keygroup(p("011*"), sid(2), rate(10.0))
            .unwrap();
        s.split_group(p("011*")).unwrap();
        s.set_right_child(p("011*"), sid(7)).unwrap();
        let reports = s.pending_reports();
        let to_remote: Vec<_> = reports.iter().filter(|r| r.0 == sid(2)).collect();
        assert_eq!(to_remote.len(), 1);
        assert_eq!(to_remote[0].1, p("011*"));
        assert!(!to_remote[0].3, "split entry must report non-leaf");
    }

    #[test]
    fn root_groups_send_no_reports() {
        let mut s = server();
        s.bootstrap_root(p("01*")).unwrap();
        assert!(s.pending_reports().is_empty());
    }

    #[test]
    fn merge_candidate_requires_leaf_children_and_headroom() {
        let mut s = server();
        s.bootstrap_root(p("01*")).unwrap();
        s.set_group_load(p("01*"), rate(40.0)).unwrap();
        let (left, _right) = s.split_group(p("01*")).unwrap();
        s.set_right_child(p("01*"), sid(9)).unwrap();
        s.set_group_load(left, rate(20.0)).unwrap();
        // No report from the right child yet → not mergeable.
        assert_eq!(s.merge_candidate(), None);
        // A non-leaf report → still not mergeable.
        s.handle_load_report(p("011*"), rate(10.0), false);
        assert_eq!(s.merge_candidate(), None);
        // A leaf report within headroom (merge headroom = 54) → mergeable.
        s.handle_load_report(p("011*"), rate(10.0), true);
        let (parent, holder, combined) = s.merge_candidate().unwrap();
        assert_eq!(parent, p("01*"));
        assert_eq!(holder, sid(9));
        assert!((combined.data_rate - 30.0).abs() < 1e-9);
        // A hot report blows the headroom → not mergeable again.
        s.handle_load_report(p("011*"), rate(90.0), true);
        assert_eq!(s.merge_candidate(), None);
    }

    #[test]
    fn merge_candidate_with_local_right_child() {
        let mut s = server();
        s.bootstrap_root(p("01*")).unwrap();
        let (left, right) = s.split_group(p("01*")).unwrap();
        s.set_right_child(p("01*"), s.id()).unwrap(); // self-mapped
        s.handle_accept_keygroup(right, s.id(), rate(5.0)).unwrap();
        s.set_group_load(left, rate(3.0)).unwrap();
        let (parent, holder, combined) = s.merge_candidate().unwrap();
        assert_eq!(parent, p("01*"));
        assert_eq!(holder, s.id());
        assert!((combined.data_rate - 8.0).abs() < 1e-9);
        s.merge_group(parent, GroupLoad::zero()).unwrap();
        assert_eq!(s.table().active_count(), 1);
        assert_eq!(s.stats().merges, 1);
        s.table().check_invariants().unwrap();
    }

    #[test]
    fn merge_candidate_picks_coldest() {
        let mut s = server();
        s.bootstrap_root(p("00*")).unwrap();
        s.bootstrap_root(p("01*")).unwrap();
        for g in ["00*", "01*"] {
            s.split_group(p(g)).unwrap();
            s.set_right_child(p(g), sid(9)).unwrap();
        }
        s.set_group_load(p("000*"), rate(10.0)).unwrap();
        s.set_group_load(p("010*"), rate(2.0)).unwrap();
        s.handle_load_report(p("001*"), rate(10.0), true);
        s.handle_load_report(p("011*"), rate(2.0), true);
        let (parent, _, _) = s.merge_candidate().unwrap();
        assert_eq!(parent, p("01*"), "colder pair should win");
    }

    #[test]
    fn release_keygroup_responses() {
        let mut s = server();
        s.handle_accept_keygroup(p("011*"), sid(2), rate(4.0))
            .unwrap();
        assert_eq!(
            s.handle_release_keygroup(p("011*")),
            ReleaseResponse::Released { load: rate(4.0) }
        );
        assert_eq!(
            s.handle_release_keygroup(p("011*")),
            ReleaseResponse::Refused
        );
        assert_eq!(s.stats().groups_released, 1);
    }

    #[test]
    fn depth_stats_cover_active_groups() {
        let mut s = server();
        s.bootstrap_root(p("01*")).unwrap();
        s.bootstrap_root(p("1*")).unwrap();
        let (_l, _r) = s.split_group(p("01*")).unwrap();
        s.set_right_child(p("01*"), sid(3)).unwrap();
        // Active: 010* (depth 3) and 1* (depth 1).
        let (min, mean, max) = s.depth_stats().unwrap();
        assert_eq!(min, 1);
        assert_eq!(max, 3);
        assert!((mean - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_server_has_no_stats() {
        let s = server();
        assert_eq!(s.depth_stats(), None);
        assert_eq!(s.hottest_splittable(), None);
        assert_eq!(s.merge_candidate(), None);
        assert_eq!(s.current_load(), 0.0);
    }
}
