//! CLASH protocol configuration.

use clash_keyspace::hash::HashSpace;
use clash_keyspace::key::KeyWidth;

use crate::error::ClashError;
use crate::load::QueryStreamLoadModel;

/// Which active group an overloaded server sheds first.
///
/// The paper's simulations split the *hottest* group (§6); the
/// alternatives exist for the ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Split the group with the highest load (the paper's choice).
    #[default]
    Hottest,
    /// Split the first loaded group in binary-string order (a naive
    /// baseline showing why load-awareness matters).
    FirstLoaded,
}

/// Configuration of a CLASH deployment.
///
/// The defaults reproduce the paper's simulation parameters (§6.1):
/// 24-bit keys, 24-bit hash space, initial depth 6, overload at 90% and
/// underload at 54% of server capacity.
///
/// # Example
///
/// ```
/// use clash_core::config::ClashConfig;
///
/// let cfg = ClashConfig::paper();
/// assert_eq!(cfg.key_width.get(), 24);
/// assert_eq!(cfg.initial_depth, 6);
///
/// // The non-adaptive baseline DHT(12) of Figure 4:
/// let dht = ClashConfig::dht_baseline(12);
/// assert!(!dht.splitting_enabled);
/// assert_eq!(dht.initial_depth, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClashConfig {
    /// Identifier key width N.
    pub key_width: KeyWidth,
    /// Hash space M for the underlying DHT.
    pub hash_space: HashSpace,
    /// Depth of the initial uniform key groups (paper: 6). These groups
    /// are *roots* (`ParentID = -1`): consolidation never collapses above
    /// them.
    pub initial_depth: u32,
    /// Server capacity in load units.
    pub capacity: f64,
    /// Overload threshold as a fraction of capacity (paper: 0.90).
    pub overload_fraction: f64,
    /// Underload threshold as a fraction of capacity (paper: 0.54).
    pub underload_fraction: f64,
    /// A merge only proceeds if the combined child load stays below this
    /// fraction of capacity (hysteresis against split/merge thrash).
    pub merge_headroom_fraction: f64,
    /// Hard depth cap (defaults to the key width).
    pub max_depth: u32,
    /// Whether binary splitting/merging is enabled. Disabled = the
    /// paper's non-adaptive `DHT(x)` baseline with fixed depth
    /// `initial_depth`.
    pub splitting_enabled: bool,
    /// Seed for the key → hash-space function `f()`.
    pub hash_seed: u64,
    /// Load model calibration.
    pub load_model: QueryStreamLoadModel,
    /// Which group an overloaded server splits first.
    pub split_policy: SplitPolicy,
    /// Successor-list replication factor `r`: each active key-group entry
    /// (with its ledger) is replicated on its owner's first `r` alive ring
    /// successors, and crash recovery promotes the first live replica
    /// instead of reading the simulation oracle. `0` (the default, and the
    /// paper's implicit setting — it delegates fault handling to the DHT)
    /// disables replication entirely and preserves the pre-replication
    /// behavior bit for bit.
    pub replication_factor: usize,
    /// Ring-arc shard count for the batched locate path. `0` (the
    /// default) keeps every client operation fully synchronous — the
    /// historical sequential semantics. `n ≥ 1` partitions the hash
    /// space into `n` contiguous arcs: client locates are *planned*
    /// synchronously (preserving every RNG draw and ledger mutation in
    /// op order), their DHT routing is resolved per-arc against a frozen
    /// routing snapshot (on worker threads when `n > 1`), and the
    /// results are charged through a deterministic merge queue. The
    /// outcome is bit-for-bit identical for every `n`, including `0` —
    /// pinned by `tests/shard_equivalence.rs`.
    pub shards: u32,
}

impl ClashConfig {
    /// The paper's simulation configuration (§6.1), with the capacity
    /// calibration documented in `DESIGN.md` §5.
    pub fn paper() -> Self {
        ClashConfig {
            key_width: KeyWidth::PAPER,
            hash_space: HashSpace::PAPER,
            initial_depth: 6,
            capacity: 2500.0,
            overload_fraction: 0.90,
            underload_fraction: 0.54,
            merge_headroom_fraction: 0.54,
            max_depth: KeyWidth::PAPER.get(),
            splitting_enabled: true,
            hash_seed: 0xC1A5_4001,
            load_model: QueryStreamLoadModel::paper_calibration(),
            split_policy: SplitPolicy::Hottest,
            replication_factor: 0,
            shards: 0,
        }
    }

    /// The non-adaptive baseline `DHT(x)`: identifier keys truncated to a
    /// fixed length `x`, no splitting, no merging (§6.1: "we also simulated
    /// the base Chord protocol, where … the length of the identifier key N
    /// is always fixed").
    pub fn dht_baseline(fixed_depth: u32) -> Self {
        ClashConfig {
            initial_depth: fixed_depth,
            splitting_enabled: false,
            max_depth: fixed_depth,
            ..ClashConfig::paper()
        }
    }

    /// A small configuration for unit tests and examples: 8-bit keys,
    /// 16-bit hash space, initial depth 2, capacity 100.
    pub fn small_test() -> Self {
        ClashConfig {
            key_width: KeyWidth::new(8).expect("8 is a valid width"),
            hash_space: HashSpace::new(16).expect("16 is a valid space"),
            initial_depth: 2,
            capacity: 100.0,
            overload_fraction: 0.90,
            underload_fraction: 0.54,
            merge_headroom_fraction: 0.54,
            max_depth: 8,
            splitting_enabled: true,
            hash_seed: 7,
            load_model: QueryStreamLoadModel::paper_calibration(),
            split_policy: SplitPolicy::Hottest,
            replication_factor: 0,
            shards: 0,
        }
    }

    /// A copy with the given successor-list replication factor.
    pub fn with_replication(self, replication_factor: usize) -> Self {
        ClashConfig {
            replication_factor,
            ..self
        }
    }

    /// The replication factor named by the `CLASH_REPLICATION` environment
    /// variable, or 0 when unset/unparsable. The repo-level test suites
    /// read this so CI can run the same scenarios with replication off
    /// (the historical behavior) and on.
    pub fn replication_factor_from_env() -> usize {
        std::env::var("CLASH_REPLICATION")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// The debug-build `verify_consistency` sampling period named by the
    /// `CLASH_VERIFY_EVERY` environment variable, or 1 (verify after every
    /// load check — the historical behavior) when unset/unparsable. 0
    /// disables the sweep entirely.
    pub fn verify_every_from_env() -> u32 {
        std::env::var("CLASH_VERIFY_EVERY")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(1)
    }

    /// A copy with the given ring-arc shard count for batched locates.
    pub fn with_shards(self, shards: u32) -> Self {
        ClashConfig { shards, ..self }
    }

    /// The shard count named by the `CLASH_SHARDS` environment variable,
    /// or 0 (sequential) when unset/unparsable. The shard-equivalence
    /// suite reads this so CI can run the same scenarios sequentially
    /// and at several shard counts.
    pub fn shards_from_env() -> u32 {
        std::env::var("CLASH_SHARDS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    /// Overload threshold in absolute load units.
    pub fn overload_threshold(&self) -> f64 {
        self.capacity * self.overload_fraction
    }

    /// Underload threshold in absolute load units.
    pub fn underload_threshold(&self) -> f64 {
        self.capacity * self.underload_fraction
    }

    /// Merge headroom in absolute load units.
    pub fn merge_headroom(&self) -> f64 {
        self.capacity * self.merge_headroom_fraction
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ClashError::InvalidConfig`] when thresholds are
    /// inconsistent, depths exceed the key width, or the capacity is not
    /// positive.
    pub fn validate(&self) -> Result<(), ClashError> {
        if self.initial_depth > self.key_width.get() {
            return Err(ClashError::InvalidConfig {
                reason: "initial depth exceeds key width",
            });
        }
        if self.max_depth > self.key_width.get() {
            return Err(ClashError::InvalidConfig {
                reason: "max depth exceeds key width",
            });
        }
        if self.max_depth < self.initial_depth {
            return Err(ClashError::InvalidConfig {
                reason: "max depth is below the initial depth",
            });
        }
        if self.initial_depth > 24 {
            return Err(ClashError::InvalidConfig {
                reason: "initial depth above 24 would allocate 2^d bootstrap groups",
            });
        }
        if self.capacity <= 0.0 || self.capacity.is_nan() {
            return Err(ClashError::InvalidConfig {
                reason: "capacity must be positive",
            });
        }
        let fractions = [
            self.overload_fraction,
            self.underload_fraction,
            self.merge_headroom_fraction,
        ];
        if fractions.iter().any(|f| !f.is_finite() || *f <= 0.0) {
            return Err(ClashError::InvalidConfig {
                reason: "threshold fractions must be positive and finite",
            });
        }
        if self.underload_fraction >= self.overload_fraction {
            return Err(ClashError::InvalidConfig {
                reason: "underload fraction must be below overload fraction",
            });
        }
        Ok(())
    }
}

impl Default for ClashConfig {
    fn default() -> Self {
        ClashConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let cfg = ClashConfig::paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.overload_threshold(), 2250.0);
        assert_eq!(cfg.underload_threshold(), 1350.0);
    }

    #[test]
    fn dht_baseline_disables_splitting() {
        for x in [2u32, 6, 12, 24] {
            let cfg = ClashConfig::dht_baseline(x);
            cfg.validate().unwrap();
            assert!(!cfg.splitting_enabled);
            assert_eq!(cfg.initial_depth, x);
            assert_eq!(cfg.max_depth, x);
        }
    }

    #[test]
    fn small_test_config_is_valid() {
        ClashConfig::small_test().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_depths() {
        let mut cfg = ClashConfig::small_test();
        cfg.initial_depth = 9;
        assert!(cfg.validate().is_err());

        let mut cfg = ClashConfig::small_test();
        cfg.max_depth = 1; // below initial depth 2
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_thresholds() {
        let mut cfg = ClashConfig::small_test();
        cfg.underload_fraction = 0.95;
        assert!(cfg.validate().is_err());

        let mut cfg = ClashConfig::small_test();
        cfg.capacity = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = ClashConfig::small_test();
        cfg.overload_fraction = f64::NAN;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(ClashConfig::default(), ClashConfig::paper());
    }

    #[test]
    fn replication_defaults_off_and_builder_sets_it() {
        assert_eq!(ClashConfig::paper().replication_factor, 0);
        assert_eq!(ClashConfig::small_test().replication_factor, 0);
        let cfg = ClashConfig::small_test().with_replication(3);
        assert_eq!(cfg.replication_factor, 3);
        cfg.validate().unwrap();
    }

    #[test]
    fn shards_default_off_and_builder_sets_them() {
        assert_eq!(ClashConfig::paper().shards, 0);
        assert_eq!(ClashConfig::small_test().shards, 0);
        let cfg = ClashConfig::small_test().with_shards(4);
        assert_eq!(cfg.shards, 4);
        cfg.validate().unwrap();
    }
}
