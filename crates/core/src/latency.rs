//! End-to-end virtual-time latency recorders for the protocol operations.
//!
//! Each histogram records *milliseconds* of virtual time charged by the
//! cluster's [`clash_transport::Transport`] for one complete protocol
//! operation (all hops and responses), not per-message link delays. With
//! the zero-latency [`clash_transport::InstantTransport`] every
//! observation is 0 — the recorders exist so latency-model experiments
//! (the `netfault` experiment in `clash-sim`) can report locate CDFs and
//! percentiles without touching the protocol code.

use clash_simkernel::metrics::Histogram;
use clash_simkernel::time::SimDuration;

/// Histogram range: `[0, 20s)` in 1 ms buckets — wide enough for
/// multi-probe locates over a lossy WAN (each retry charges a timeout)
/// while keeping quantiles meaningful at LAN scale (quantiles report
/// bucket lower edges, so resolution equals the bucket width).
const RANGE_MS: f64 = 20_000.0;
const BUCKETS: usize = 20_000;

/// Per-operation latency histograms (virtual milliseconds).
#[derive(Debug, Clone)]
pub struct LatencyMetrics {
    /// Completed locate operations: every depth-search probe's routing
    /// hops plus its response, summed end-to-end.
    pub locate: Histogram,
    /// Remote leaf→parent `LOAD_REPORT` deliveries.
    pub report: Histogram,
    /// Right-child placements: DHT routing plus the `ACCEPT_KEYGROUP`
    /// delivery.
    pub split: Histogram,
    /// `RELEASE_KEYGROUP` request/response round trips.
    pub merge: Histogram,
    /// Membership handoff transfers (one per migrated table entry).
    pub handoff: Histogram,
    /// Replica maintenance and recovery round trips:
    /// `REPLICATE_KEYGROUP`/`ACK_REPLICA` seeds, and the per-group state
    /// fetch a crash recovery pays to promote a successor replica.
    pub replication: Histogram,
}

impl LatencyMetrics {
    /// Creates empty recorders.
    pub fn new() -> Self {
        let h = || Histogram::new(0.0, RANGE_MS, BUCKETS);
        LatencyMetrics {
            locate: h(),
            report: h(),
            split: h(),
            merge: h(),
            handoff: h(),
            replication: h(),
        }
    }
}

impl Default for LatencyMetrics {
    fn default() -> Self {
        Self::new()
    }
}

/// Converts a virtual duration to the milliseconds the histograms record.
pub fn ms(d: SimDuration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports_quantiles() {
        let mut m = LatencyMetrics::new();
        for i in 0..100 {
            m.locate.observe(f64::from(i));
        }
        let p50 = m.locate.quantile(0.5).unwrap();
        assert!((p50 - 50.0).abs() < 5.0, "p50 {p50}");
        assert_eq!(m.report.quantile(0.5), None, "untouched recorder is empty");
    }

    #[test]
    fn ms_converts() {
        assert!((ms(SimDuration::from_millis(250)) - 250.0).abs() < 1e-9);
        assert_eq!(ms(SimDuration::ZERO), 0.0);
    }
}
